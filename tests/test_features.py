"""Unit + property tests for feature extraction and reduction (§3.4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.datagen.frames import FrameConfig, generate_frame_clip
from repro.features.extraction import (
    color_histogram_sequence,
    frame_color_histogram,
    frame_mean_color,
    mean_color_sequence,
)
from repro.features.reduction import ReducedSpace, dft_reduce, fit_pca, haar_reduce


class TestFrameGenerator:
    def test_shape_and_bounds(self):
        clip = generate_frame_clip(30, seed=1)
        assert clip.shape == (30, 16, 16, 3)
        assert clip.min() >= 0.0 and clip.max() <= 1.0

    def test_deterministic(self):
        a = generate_frame_clip(10, seed=2)
        b = generate_frame_clip(10, seed=2)
        np.testing.assert_array_equal(a, b)

    def test_shot_structure_in_features(self):
        """Within-shot frames share a base colour: feature jumps bimodal."""
        config = FrameConfig(pixel_noise=0.005)
        clip = generate_frame_clip(120, config, seed=3)
        features = mean_color_sequence(clip).points
        jumps = np.linalg.norm(np.diff(features, axis=0), axis=1)
        assert np.sum(jumps < 0.05) > 90
        assert np.sum(jumps > 0.08) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_frame_clip(0)
        with pytest.raises(ValueError):
            FrameConfig(height=1).validate()
        with pytest.raises(ValueError):
            FrameConfig(shot_length_range=(5, 2)).validate()
        with pytest.raises(ValueError):
            FrameConfig(pixel_noise=-1).validate()
        with pytest.raises(ValueError):
            FrameConfig(subject_radius=0).validate()


class TestExtraction:
    def test_mean_color_constant_frame(self):
        frame = np.full((4, 4, 3), 0.3)
        np.testing.assert_allclose(frame_mean_color(frame), [0.3, 0.3, 0.3])

    def test_mean_color_sequence(self):
        clip = generate_frame_clip(12, seed=4)
        seq = mean_color_sequence(clip, sequence_id="clip")
        assert len(seq) == 12
        assert seq.dimension == 3
        assert seq.sequence_id == "clip"

    def test_histogram_normalised(self):
        frame = np.random.default_rng(5).random((8, 8, 3))
        histogram = frame_color_histogram(frame, bins=4)
        assert histogram.shape == (12,)
        assert histogram.sum() == pytest.approx(1.0)
        assert histogram.min() >= 0.0

    def test_histogram_localises_mass(self):
        frame = np.full((4, 4, 3), 0.05)  # everything in the lowest bin
        histogram = frame_color_histogram(frame, bins=4)
        assert histogram[0] == pytest.approx(1 / 3)
        assert histogram[4] == pytest.approx(1 / 3)

    def test_histogram_sequence_dimension(self):
        clip = generate_frame_clip(6, seed=6)
        seq = color_histogram_sequence(clip, bins=8)
        assert seq.dimension == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            frame_mean_color(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            frame_mean_color(np.full((2, 2, 3), 1.5))
        with pytest.raises(ValueError):
            frame_color_histogram(np.zeros((2, 2, 3)), bins=0)
        with pytest.raises(ValueError):
            mean_color_sequence(np.zeros((4, 4, 3)))  # missing frame axis


VECTOR_PAIRS = st.integers(2, 24).flatmap(
    lambda d: st.tuples(
        arrays(np.float64, (1, d),
               elements=st.floats(0.0, 1.0, allow_nan=False, width=64)),
        arrays(np.float64, (1, d),
               elements=st.floats(0.0, 1.0, allow_nan=False, width=64)),
        st.integers(1, d),
    )
)


class TestReductions:
    @given(VECTOR_PAIRS)
    @settings(max_examples=100, deadline=None)
    def test_dft_reduce_lower_bounds(self, case):
        a, b, k = case
        reduced_a = dft_reduce(a, k)
        reduced_b = dft_reduce(b, k)
        assert np.linalg.norm(reduced_a - reduced_b) <= (
            np.linalg.norm(a - b) + 1e-9
        )

    @given(VECTOR_PAIRS)
    @settings(max_examples=100, deadline=None)
    def test_haar_reduce_lower_bounds(self, case):
        a, b, k = case
        reduced_a = haar_reduce(a, k)
        reduced_b = haar_reduce(b, k)
        assert np.linalg.norm(reduced_a - reduced_b) <= (
            np.linalg.norm(a - b) + 1e-9
        )

    def test_haar_full_transform_is_isometry(self):
        rng = np.random.default_rng(7)
        a = rng.random((1, 16))
        b = rng.random((1, 16))
        full_a = haar_reduce(a, 16)
        full_b = haar_reduce(b, 16)
        assert np.linalg.norm(full_a - full_b) == pytest.approx(
            np.linalg.norm(a - b)
        )

    def test_haar_first_coefficient_is_scaled_mean(self):
        vector = np.arange(8.0).reshape(1, -1)
        coarse = haar_reduce(vector, 1)
        assert coarse[0, 0] == pytest.approx(vector.sum() / np.sqrt(8))

    def test_pca_lower_bounds(self):
        rng = np.random.default_rng(8)
        sample = rng.random((50, 12))
        space = fit_pca(sample, 4)
        a = rng.random((1, 12))
        b = rng.random((1, 12))
        projected = np.linalg.norm(space.transform(a) - space.transform(b))
        assert projected <= np.linalg.norm(a - b) + 1e-9

    def test_pca_components_orthonormal(self):
        rng = np.random.default_rng(9)
        space = fit_pca(rng.random((40, 10)), 5)
        gram = space.components @ space.components.T
        np.testing.assert_allclose(gram, np.eye(5), atol=1e-9)

    def test_pca_captures_dominant_direction(self):
        rng = np.random.default_rng(10)
        t = rng.random(200)
        sample = np.column_stack([t, 2 * t, 0.5 * t]) + rng.normal(
            0, 0.01, (200, 3)
        )
        space = fit_pca(sample, 1)
        direction = np.abs(space.components[0])
        expected = np.array([1.0, 2.0, 0.5]) / np.linalg.norm([1, 2, 0.5])
        np.testing.assert_allclose(direction, expected, atol=0.05)

    def test_rescale_into_unit_cube(self):
        rng = np.random.default_rng(11)
        sample = rng.random((30, 6))
        space = fit_pca(sample, 2)
        rescaled = space.rescale(space.transform(sample))
        assert rescaled.min() >= 0.0 and rescaled.max() <= 1.0

    def test_safe_epsilon_scales(self):
        rng = np.random.default_rng(12)
        space = fit_pca(rng.random((30, 6)), 2)
        assert space.safe_epsilon(0.1) == pytest.approx(
            0.1 / space.span.min()
        )
        with pytest.raises(ValueError):
            space.safe_epsilon(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            dft_reduce(np.zeros((2, 4)), 0)
        with pytest.raises(ValueError):
            dft_reduce(np.zeros((2, 4)), 5)
        with pytest.raises(ValueError):
            haar_reduce(np.zeros((2, 4)), 5)
        with pytest.raises(ValueError):
            fit_pca(np.zeros((3, 4)), 0)
        space = fit_pca(np.random.default_rng(0).random((5, 4)), 2)
        with pytest.raises(ValueError):
            space.transform(np.zeros((1, 7)))


class TestEndToEndPipeline:
    def test_raw_frames_to_search(self):
        """The full §3.4.1 pipeline: render, extract, reduce, index, search."""
        from repro.core.database import SequenceDatabase
        from repro.core.search import SimilaritySearch
        from repro.core.sequence import MultidimensionalSequence

        clips = {
            f"clip-{i}": generate_frame_clip(60, seed=100 + i)
            for i in range(5)
        }
        histogram_sequences = {
            name: color_histogram_sequence(clip, bins=8)
            for name, clip in clips.items()
        }  # 24-d — too high to index directly
        sample = np.vstack(
            [seq.points for seq in histogram_sequences.values()]
        )
        space = fit_pca(sample, 3)

        db = SequenceDatabase(dimension=3)
        for name, seq in histogram_sequences.items():
            reduced = space.rescale(space.transform(seq.points))
            db.add(MultidimensionalSequence(reduced, sequence_id=name))

        query_clip = clips["clip-2"][10:30]
        query = space.rescale(
            space.transform(color_histogram_sequence(query_clip).points)
        )
        result = SimilaritySearch(db).search(query, 0.05)
        assert "clip-2" in result.answers
