"""Unit tests for MCOST partitioning (Section 3.4.3)."""

import numpy as np
import pytest

from repro.core.mbr import MBR
from repro.core.partitioning import (
    DEFAULT_COST_CONSTANT,
    PartitionedSequence,
    SequenceSegment,
    marginal_cost,
    partition_sequence,
)
from repro.core.sequence import MultidimensionalSequence


class TestMarginalCost:
    def test_formula(self):
        """MCOST = prod(L_k + c) / m."""
        cost = marginal_cost([0.2, 0.1], 4, 0.3)
        assert cost == pytest.approx((0.5 * 0.4) / 4)

    def test_point_mbr(self):
        cost = marginal_cost([0.0, 0.0, 0.0], 1, 0.3)
        assert cost == pytest.approx(0.3**3)

    def test_default_constant_is_paper_value(self):
        assert DEFAULT_COST_CONSTANT == pytest.approx(0.3)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            marginal_cost([0.1], 0)
        with pytest.raises(ValueError):
            marginal_cost([0.1], 1, 0.0)
        with pytest.raises(ValueError):
            marginal_cost([-0.1], 1)


class TestPartitionStructure:
    def test_exact_cover(self):
        """Segments tile the sequence: contiguous, ordered, complete."""
        rng = np.random.default_rng(5)
        seq = MultidimensionalSequence(rng.random((100, 3)))
        partition = partition_sequence(seq)
        offset = 0
        for index, segment in enumerate(partition):
            assert segment.index == index
            assert segment.start == offset
            assert segment.count >= 1
            offset = segment.stop
        assert offset == len(seq)

    def test_mbrs_are_tight(self):
        rng = np.random.default_rng(6)
        seq = MultidimensionalSequence(rng.random((80, 2)))
        partition = partition_sequence(seq)
        for segment in partition:
            block = partition.segment_points(segment.index)
            expected = MBR.of_points(block)
            assert segment.mbr == expected

    def test_single_point_sequence(self):
        partition = partition_sequence([[0.5, 0.5]])
        assert len(partition) == 1
        assert partition[0].count == 1

    def test_clustered_points_share_an_mbr(self):
        """A tight cluster is cheaper as one MBR: no split inside it."""
        cluster = np.full((20, 2), 0.5) + np.linspace(0, 1e-4, 20)[:, None]
        partition = partition_sequence(cluster)
        assert len(partition) == 1

    def test_distant_jump_starts_new_mbr(self):
        """A shot-cut-sized jump must break the MBR."""
        points = np.vstack(
            [np.full((10, 2), 0.1), np.full((10, 2), 0.9)]
        ) + np.linspace(0, 1e-5, 20)[:, None]
        partition = partition_sequence(points)
        assert len(partition) >= 2
        boundary = partition.segment_of_point(9)
        assert boundary.stop == 10  # the split falls exactly at the jump

    def test_max_points_cap(self):
        cluster = np.full((50, 2), 0.5)
        partition = partition_sequence(cluster, max_points=8)
        assert all(segment.count <= 8 for segment in partition)
        assert len(partition) == pytest.approx(np.ceil(50 / 8))

    def test_no_cap_when_none(self):
        cluster = np.full((50, 2), 0.5)
        partition = partition_sequence(cluster, max_points=None)
        assert len(partition) == 1

    def test_cost_constant_controls_granularity(self):
        """A larger constant tolerates larger MBRs (fewer segments)."""
        rng = np.random.default_rng(8)
        walk = np.cumsum(rng.normal(0, 0.01, size=(300, 2)), axis=0)
        walk = (walk - walk.min()) / (walk.max() - walk.min() + 1e-12)
        fine = partition_sequence(walk, cost_constant=0.05, max_points=None)
        coarse = partition_sequence(walk, cost_constant=0.8, max_points=None)
        assert len(coarse) <= len(fine)

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_sequence([[0.1]], cost_constant=0.0)
        with pytest.raises(ValueError):
            partition_sequence([[0.1]], max_points=0)


class TestPartitionedSequenceApi:
    def _partition(self):
        rng = np.random.default_rng(9)
        seq = MultidimensionalSequence(rng.random((60, 3)))
        return partition_sequence(seq)

    def test_counts_match_segments(self):
        partition = self._partition()
        np.testing.assert_array_equal(
            partition.counts, [s.count for s in partition.segments]
        )

    def test_mbrs_property(self):
        partition = self._partition()
        assert partition.mbrs == [s.mbr for s in partition.segments]

    def test_segment_of_point(self):
        partition = self._partition()
        for offset in (0, 17, len(partition.sequence) - 1):
            segment = partition.segment_of_point(offset)
            assert segment.start <= offset < segment.stop

    def test_segment_of_point_bounds(self):
        partition = self._partition()
        with pytest.raises(IndexError):
            partition.segment_of_point(-1)
        with pytest.raises(IndexError):
            partition.segment_of_point(len(partition.sequence))

    def test_mbr_distance_row_matches_scalar(self):
        partition = self._partition()
        query = MBR([0.2, 0.2, 0.2], [0.4, 0.4, 0.4])
        row = partition.mbr_distance_row(query)
        for t, segment in enumerate(partition):
            assert row[t] == pytest.approx(query.min_distance(segment.mbr))

    def test_total_cost_positive(self):
        assert self._partition().total_cost() > 0

    def test_constructor_rejects_gaps(self):
        seq = MultidimensionalSequence([[0.1], [0.2], [0.3]])
        bad = [
            SequenceSegment(0, 0, 1, MBR([0.1], [0.1])),
            SequenceSegment(1, 2, 1, MBR([0.3], [0.3])),  # gap at offset 1
        ]
        with pytest.raises(ValueError, match="tile"):
            PartitionedSequence(seq, bad)

    def test_constructor_rejects_short_cover(self):
        seq = MultidimensionalSequence([[0.1], [0.2]])
        bad = [SequenceSegment(0, 0, 1, MBR([0.1], [0.1]))]
        with pytest.raises(ValueError, match="cover"):
            PartitionedSequence(seq, bad)

    def test_constructor_rejects_misnumbered(self):
        seq = MultidimensionalSequence([[0.1]])
        bad = [SequenceSegment(3, 0, 1, MBR([0.1], [0.1]))]
        with pytest.raises(ValueError, match="index"):
            PartitionedSequence(seq, bad)

    def test_constructor_rejects_empty(self):
        seq = MultidimensionalSequence([[0.1]])
        with pytest.raises(ValueError, match="at least one segment"):
            PartitionedSequence(seq, [])


class TestGreedyBehaviour:
    def test_partition_decision_follows_mcost(self):
        """Replay the greedy rule manually and compare the boundaries."""
        rng = np.random.default_rng(10)
        points = rng.random((40, 2))
        partition = partition_sequence(points, max_points=None)

        boundaries = []
        low = points[0].copy()
        high = points[0].copy()
        count = 1
        current = marginal_cost(high - low, count)
        for offset in range(1, len(points)):
            new_low = np.minimum(low, points[offset])
            new_high = np.maximum(high, points[offset])
            new_cost = marginal_cost(new_high - new_low, count + 1)
            if new_cost > current:
                boundaries.append(offset)
                low = points[offset].copy()
                high = points[offset].copy()
                count = 1
                current = marginal_cost(high - low, count)
            else:
                low, high, count, current = new_low, new_high, count + 1, new_cost
        starts = [segment.start for segment in partition]
        assert starts == [0] + boundaries
