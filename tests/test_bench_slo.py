"""SLO rules: parsing, evaluation, typed violations, suite skipping."""

import pytest

from repro.bench import (
    DEFAULT_SLO_RULES,
    BenchResult,
    SloRule,
    SloViolation,
    assert_slos,
    check_slos,
    parse_slo,
)


def result(suite="service", scenario="end_to_end", **metrics):
    return BenchResult(
        suite=suite, scenario=scenario, metrics=dict(metrics)
    )


class TestParse:
    def test_floor_syntax(self):
        rule = parse_slo("service/end_to_end:qps>=5")
        assert rule == SloRule("service", "end_to_end", "qps", floor=5.0)

    def test_ceiling_syntax(self):
        rule = parse_slo("cluster/scatter_gather:killed_p95_ms<=250.5")
        assert rule.ceiling == 250.5
        assert rule.floor is None

    def test_scientific_notation(self):
        assert parse_slo("engine/single_query:qps>=1e3").floor == 1000.0

    def test_whitespace_tolerated(self):
        assert parse_slo("  engine/single_query:qps>=1  ").floor == 1.0

    @pytest.mark.parametrize(
        "expression",
        [
            "no-slash:qps>=1",
            "suite/scenario:qps>1",
            "suite/scenario:qps==1",
            "suite/scenario:qps>=",
            "suite/scenario>=3",
            "suite/scenario:qps>=abc",
            "",
        ],
    )
    def test_invalid_expressions_rejected(self, expression):
        with pytest.raises(ValueError, match="invalid SLO|could not convert"):
            parse_slo(expression)

    def test_describe_round_trips(self):
        rule = parse_slo("service/end_to_end:qps>=5")
        assert parse_slo(rule.describe()) == rule


class TestRule:
    def test_requires_a_bound(self):
        with pytest.raises(ValueError, match="floor or a ceiling"):
            SloRule("s", "x", "qps")


class TestCheck:
    def test_passing_results_no_violations(self):
        rules = (SloRule("service", "end_to_end", "qps", floor=10.0),)
        assert check_slos([result(qps=50.0)], rules) == []

    def test_floor_breach_is_typed(self):
        rules = (SloRule("service", "end_to_end", "qps", floor=100.0),)
        (violation,) = check_slos([result(qps=50.0)], rules)
        assert isinstance(violation, SloViolation)
        assert violation.rule == rules[0]
        assert violation.actual == 50.0
        assert "below floor" in str(violation)

    def test_ceiling_breach(self):
        rules = (
            SloRule("service", "end_to_end", "p99_ms", ceiling=100.0),
        )
        (violation,) = check_slos([result(p99_ms=500.0)], rules)
        assert violation.actual == 500.0
        assert "above ceiling" in str(violation)

    def test_unmeasured_suite_is_skipped(self):
        """--suite engine must not trip the service floors."""
        rules = (
            SloRule("engine", "single_query", "qps", floor=1.0),
            SloRule("service", "end_to_end", "qps", floor=1e12),
        )
        engine_only = [result(suite="engine", scenario="single_query", qps=5.0)]
        assert check_slos(engine_only, rules) == []

    def test_missing_scenario_in_measured_suite_is_a_violation(self):
        rules = (SloRule("service", "wal_recovery", "recovery_ms", ceiling=1.0),)
        (violation,) = check_slos([result(qps=1.0)], rules)
        assert violation.actual is None
        assert "no measurement" in str(violation)

    def test_missing_metric_in_measured_scenario_is_a_violation(self):
        rules = (SloRule("service", "end_to_end", "p99_ms", ceiling=1.0),)
        (violation,) = check_slos([result(qps=1.0)], rules)
        assert violation.actual is None

    def test_exact_boundary_passes(self):
        rules = (
            SloRule("service", "end_to_end", "qps", floor=10.0),
            SloRule("service", "end_to_end", "p99_ms", ceiling=20.0),
        )
        assert check_slos([result(qps=10.0, p99_ms=20.0)], rules) == []


class TestAssert:
    def test_raises_first_violation(self):
        rules = (SloRule("service", "end_to_end", "qps", floor=1e12),)
        with pytest.raises(SloViolation, match="below floor"):
            assert_slos([result(qps=5.0)], rules)

    def test_passes_quietly(self):
        assert_slos([result(qps=5.0)], ())


class TestDefaults:
    def test_every_default_rule_is_well_formed(self):
        for rule in DEFAULT_SLO_RULES:
            assert rule.floor is not None or rule.ceiling is not None
            assert parse_slo(rule.describe().split(" and ")[0]).suite == rule.suite
