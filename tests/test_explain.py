"""Unit tests for the match-explanation API."""

import pytest

from repro.core.database import SequenceDatabase
from repro.core.search import MatchExplanation, SimilaritySearch
from repro.core.sequence import MultidimensionalSequence
from tests.test_search import smooth_walk


@pytest.fixture
def setup(rng):
    db = SequenceDatabase(dimension=3, max_points=16)
    for i in range(10):
        db.add(
            MultidimensionalSequence(smooth_walk(rng, 60), sequence_id=i)
        )
    return db, SimilaritySearch(db)


class TestExplain:
    def test_bound_chain_always_ordered(self, setup, rng):
        db, engine = setup
        query = smooth_walk(rng, 20)
        for sequence_id in db.ids():
            explanation = engine.explain(query, 0.2, sequence_id)
            assert (
                explanation.min_dmbr
                <= explanation.min_dnorm + 1e-9
            )
            assert (
                explanation.min_dnorm
                <= explanation.exact_distance + 1e-9
            )

    def test_phase_flags_consistent_with_bounds(self, setup, rng):
        db, engine = setup
        query = smooth_walk(rng, 20)
        for sequence_id in db.ids():
            for epsilon in (0.05, 0.2, 0.5):
                explanation = engine.explain(query, epsilon, sequence_id)
                assert explanation.survives_phase2 == (
                    explanation.min_dmbr <= epsilon
                )
                assert explanation.survives_phase3 == (
                    explanation.min_dnorm <= epsilon
                )
                assert explanation.truly_relevant == (
                    explanation.exact_distance <= epsilon
                )
                # No false dismissals: relevant implies surviving.
                if explanation.truly_relevant:
                    assert explanation.survives_phase3

    def test_explanation_agrees_with_search(self, setup, rng):
        db, engine = setup
        query = db.sequence(4).points[10:30]
        epsilon = 0.1
        result = engine.search(query, epsilon, find_intervals=False)
        for sequence_id in db.ids():
            explanation = engine.explain(query, epsilon, sequence_id)
            assert explanation.survives_phase3 == (
                sequence_id in result.answers
            )
            assert explanation.survives_phase2 == (
                sequence_id in result.candidates
            )

    def test_self_match_verdict(self, setup):
        db, engine = setup
        query = db.sequence(2).points[5:25]
        explanation = engine.explain(query, 0.05, 2)
        assert explanation.truly_relevant
        assert explanation.exact_distance == pytest.approx(0.0)
        assert "relevant, retrieved" in explanation.verdict()

    def test_pruned_verdicts(self, setup, rng):
        db, engine = setup
        query = db.sequence(0).points[0:15]
        seen_statuses = set()
        for sequence_id in db.ids():
            explanation = engine.explain(query, 0.02, sequence_id)
            seen_statuses.add(explanation.verdict().split(": ")[1].split(" [")[0])
        assert any("pruned" in status for status in seen_statuses) or len(
            seen_statuses
        ) >= 1

    def test_long_query_direction_reported(self, setup, rng):
        db, engine = setup
        long_query = smooth_walk(rng, 200)
        explanation = engine.explain(long_query, 0.3, 0)
        assert explanation.long_query
        assert explanation.min_dnorm <= explanation.exact_distance + 1e-9

    def test_type_and_fields(self, setup, rng):
        db, engine = setup
        explanation = engine.explain(smooth_walk(rng, 10), 0.1, 5)
        assert isinstance(explanation, MatchExplanation)
        assert explanation.sequence_id == 5
        assert explanation.query_segments >= 1
        assert explanation.data_segments >= 1
        first, last = explanation.best_window
        assert 0 <= first <= last

    def test_validation(self, setup, rng):
        db, engine = setup
        with pytest.raises(ValueError):
            engine.explain(smooth_walk(rng, 10), -0.1, 0)
        with pytest.raises(KeyError):
            engine.explain(smooth_walk(rng, 10), 0.1, "missing")
        with pytest.raises(ValueError, match="dimension"):
            engine.explain(rng.random((5, 2)), 0.1, 0)
