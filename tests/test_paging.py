"""Unit tests for the simulated page store / buffer pool."""

import pytest

from repro.core.mbr import MBR
from repro.index.paging import PageStore, attach_page_store, detach_page_store
from repro.index.rtree import RTree
from tests.test_rtree import random_boxes


class TestPageStore:
    def test_validation(self):
        with pytest.raises(ValueError):
            PageStore(buffer_pages=0)

    def test_cold_then_warm(self):
        store = PageStore(buffer_pages=4)
        node = object()
        assert store.access(node) is False  # cold miss
        assert store.access(node) is True  # warm hit
        assert store.stats.logical_reads == 2
        assert store.stats.physical_reads == 1
        assert store.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self):
        store = PageStore(buffer_pages=2)
        a, b, c = object(), object(), object()
        store.access(a)
        store.access(b)
        store.access(c)  # evicts a (LRU)
        assert store.stats.evictions == 1
        assert store.access(b) is True  # still resident
        assert store.access(a) is False  # was evicted

    def test_access_refreshes_recency(self):
        store = PageStore(buffer_pages=2)
        a, b, c = object(), object(), object()
        store.access(a)
        store.access(b)
        store.access(a)  # a is now most recent
        store.access(c)  # evicts b
        assert store.access(a) is True
        assert store.access(b) is False

    def test_clear_and_reset(self):
        store = PageStore(buffer_pages=2)
        store.access(object())
        store.clear()
        assert store.resident_pages == 0
        assert store.stats.physical_reads == 1
        store.stats.reset()
        assert store.stats.logical_reads == 0
        assert store.stats.hit_rate == 1.0


class TestAttachedTree:
    def _tree(self, rng, count=120):
        tree = RTree(dimension=2, max_entries=4)
        items = random_boxes(rng, count)
        tree.extend(items)
        return tree, items

    def test_results_unchanged_by_paging(self, rng):
        tree, items = self._tree(rng)
        probe = MBR([0.3, 0.3], [0.4, 0.4])
        before = {e.payload for e in tree.search_within(probe, 0.1)}
        store = PageStore(buffer_pages=8)
        attach_page_store(tree, store)
        after = {e.payload for e in tree.search_within(probe, 0.1)}
        assert after == before
        assert store.stats.logical_reads > 0

    def test_physical_reads_bounded_by_logical(self, rng):
        tree, _ = self._tree(rng)
        store = PageStore(buffer_pages=4)
        attach_page_store(tree, store)
        for _ in range(5):
            tree.search_within(MBR([0.2, 0.2], [0.6, 0.6]), 0.05)
        assert store.stats.physical_reads <= store.stats.logical_reads

    def test_bigger_buffer_never_more_misses(self, rng):
        """LRU with more pages can only reduce physical reads (inclusion
        property of LRU stacks)."""
        tree, _ = self._tree(rng, count=200)
        probes = [
            MBR(rng.random(2) * 0.7, rng.random(2) * 0.3 + 0.7)
            for _ in range(10)
        ]
        misses = {}
        for pages in (2, 16, 256):
            store = PageStore(buffer_pages=pages)
            attach_page_store(tree, store)
            for probe in probes:
                tree.search_within(probe, 0.05)
            misses[pages] = store.stats.physical_reads
            detach_page_store(tree)
        assert misses[256] <= misses[16] <= misses[2]

    def test_warm_repeat_query_hits(self, rng):
        tree, _ = self._tree(rng, count=60)
        store = PageStore(buffer_pages=1024)  # everything fits
        attach_page_store(tree, store)
        probe = MBR([0.4, 0.4], [0.5, 0.5])
        tree.search_within(probe, 0.1)
        cold = store.stats.physical_reads
        tree.search_within(probe, 0.1)
        assert store.stats.physical_reads == cold  # fully buffered

    def test_double_attach_rejected(self, rng):
        tree, _ = self._tree(rng, count=10)
        attach_page_store(tree, PageStore())
        with pytest.raises(RuntimeError):
            attach_page_store(tree, PageStore())

    def test_detach_restores(self, rng):
        tree, _ = self._tree(rng, count=30)
        store = PageStore()
        attach_page_store(tree, store)
        detach_page_store(tree)
        before = store.stats.logical_reads
        tree.search_within(MBR([0.1, 0.1], [0.9, 0.9]), 0.1)
        assert store.stats.logical_reads == before
        with pytest.raises(RuntimeError):
            detach_page_store(tree)

    def test_node_access_counters_still_track(self, rng):
        tree, _ = self._tree(rng, count=80)
        store = PageStore()
        attach_page_store(tree, store)
        tree.stats.reset_query_counters()
        tree.search_within(MBR([0.0, 0.0], [1.0, 1.0]), 1.0)
        assert tree.stats.node_accesses == store.stats.logical_reads
