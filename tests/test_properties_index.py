"""Property-based tests for the R-tree family: exactness vs brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mbr import MBR
from repro.index.bulk import bulk_load_str
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree


def boxes_strategy(dimension=2, max_count=60):
    coordinate = st.floats(0.0, 1.0, allow_nan=False, width=64)
    corner = st.tuples(*([coordinate] * dimension))

    def make(corners):
        a, b = corners
        low = np.minimum(a, b)
        high = np.maximum(a, b)
        return MBR(low, high)

    box = st.tuples(corner, corner).map(make)
    return st.lists(box, min_size=1, max_size=max_count)


def build(kind, items, dimension=2, max_entries=4):
    pairs = list(enumerate(items))
    if kind == "str":
        return bulk_load_str(
            [(mbr, i) for i, mbr in pairs], dimension, max_entries=max_entries
        )
    cls = RStarTree if kind == "rstar" else RTree
    tree = cls(dimension, max_entries=max_entries)
    for i, mbr in pairs:
        tree.insert(mbr, i)
    return tree


@pytest.mark.parametrize("kind", ["rtree", "rstar", "str"])
class TestExactness:
    @given(
        items=boxes_strategy(),
        query=boxes_strategy(max_count=1),
        epsilon=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_within_equals_brute_force(self, kind, items, query, epsilon):
        tree = build(kind, items)
        probe = query[0]
        expected = {
            i for i, mbr in enumerate(items)
            if mbr.min_distance(probe) <= epsilon
        }
        got = {e.payload for e in tree.search_within(probe, epsilon)}
        assert got == expected

    @given(items=boxes_strategy(), query=boxes_strategy(max_count=1))
    @settings(max_examples=60, deadline=None)
    def test_intersect_equals_brute_force(self, kind, items, query):
        tree = build(kind, items)
        probe = query[0]
        expected = {i for i, mbr in enumerate(items) if mbr.intersects(probe)}
        got = {e.payload for e in tree.search_intersect(probe)}
        assert got == expected

    @given(items=boxes_strategy(), query=boxes_strategy(max_count=1))
    @settings(max_examples=40, deadline=None)
    def test_nearest_matches_sorted_brute_force(self, kind, items, query):
        tree = build(kind, items)
        probe = query[0]
        k = min(5, len(items))
        got = [d for d, _ in tree.nearest(probe, k)]
        brute = sorted(mbr.min_distance(probe) for mbr in items)[:k]
        np.testing.assert_allclose(got, brute, atol=1e-12)

    @given(items=boxes_strategy())
    @settings(max_examples=40, deadline=None)
    def test_structure_and_size(self, kind, items):
        tree = build(kind, items)
        assert len(tree) == len(items)
        tree.check_invariants(check_min_fill=(kind != "str"))
        assert {e.payload for e in tree.entries()} == set(range(len(items)))
