"""Unit tests for the simulated video-stream generator."""

import numpy as np
import pytest

from repro.datagen.video import VideoConfig, generate_video_corpus, generate_video_sequence


class TestConfig:
    def test_defaults_valid(self):
        VideoConfig().validate()

    def test_validation(self):
        with pytest.raises(ValueError):
            VideoConfig(dimension=0).validate()
        with pytest.raises(ValueError):
            VideoConfig(shot_length_range=(5, 2)).validate()
        with pytest.raises(ValueError):
            VideoConfig(fade_length_range=(0, 3)).validate()
        with pytest.raises(ValueError):
            VideoConfig(jitter=-0.1).validate()
        with pytest.raises(ValueError):
            VideoConfig(fade_probability=1.5).validate()
        with pytest.raises(ValueError):
            VideoConfig(theme_spread=0.0).validate()


class TestStream:
    def test_shape_and_bounds(self):
        seq = generate_video_sequence(300, seed=1)
        assert len(seq) == 300
        assert seq.dimension == 3
        assert seq.points.min() >= 0.0
        assert seq.points.max() <= 1.0

    def test_single_frame(self):
        assert len(generate_video_sequence(1, seed=1)) == 1

    def test_deterministic(self):
        a = generate_video_sequence(120, seed=5)
        b = generate_video_sequence(120, seed=5)
        assert a == b

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            generate_video_sequence(0)

    def test_shot_structure_visible(self):
        """Consecutive-frame jumps must be bimodal: tiny inside shots, big
        at cuts — the property the paper's video evaluation relies on."""
        config = VideoConfig(jitter=0.005, drift=0.002, fade_probability=0.0)
        seq = generate_video_sequence(400, config, seed=7)
        jumps = np.linalg.norm(np.diff(seq.points, axis=0), axis=1)
        small = np.sum(jumps < 0.05)
        large = np.sum(jumps > 0.1)
        assert small > 300  # most transitions are intra-shot
        assert large >= 3  # but cuts exist

    def test_theme_localizes_stream(self):
        """With a tight theme the stream's footprint is much smaller than
        a theme-free stream's."""
        tight = VideoConfig(theme_spread=0.02)
        loose = VideoConfig(theme_spread=None)

        def footprint(config, seed):
            seq = generate_video_sequence(400, config, seed=seed)
            return float(
                np.linalg.norm(seq.points.max(axis=0) - seq.points.min(axis=0))
            )

        tight_footprints = [footprint(tight, s) for s in range(5)]
        loose_footprints = [footprint(loose, s) for s in range(5)]
        assert np.mean(tight_footprints) < np.mean(loose_footprints)

    def test_frames_cluster_within_shots(self):
        """Paper: 'the frames in the same shot have very similar feature
        values' — the mean intra-shot variance must be far below the
        global variance."""
        config = VideoConfig(jitter=0.004, drift=0.001, fade_probability=0.0)
        seq = generate_video_sequence(500, config, seed=11)
        points = seq.points
        jumps = np.linalg.norm(np.diff(points, axis=0), axis=1)
        boundaries = [0, *np.nonzero(jumps > 0.08)[0] + 1, len(points)]
        intra = []
        for a, b in zip(boundaries, boundaries[1:]):
            if b - a >= 3:
                intra.append(points[a:b].var(axis=0).mean())
        assert np.mean(intra) < 0.2 * points.var(axis=0).mean()


class TestCorpus:
    def test_count_ids_lengths(self):
        corpus = generate_video_corpus(8, length_range=(56, 128), seed=2)
        assert len(corpus) == 8
        assert [s.sequence_id for s in corpus] == [
            f"video-{i}" for i in range(8)
        ]
        assert all(56 <= len(s) <= 128 for s in corpus)

    def test_reproducible(self):
        a = generate_video_corpus(4, seed=3)
        b = generate_video_corpus(4, seed=3)
        assert all(x == y for x, y in zip(a, b))

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_video_corpus(0)
        with pytest.raises(ValueError):
            generate_video_corpus(3, length_range=(0, 5))
