"""Unit tests for the sequence database (Section 3.4.1 pre-processing)."""

import numpy as np
import pytest

from repro.core.database import SegmentKey, SequenceDatabase
from repro.core.sequence import MultidimensionalSequence


class TestPopulation:
    def test_add_returns_id(self, rng):
        db = SequenceDatabase(dimension=3)
        assert db.add(rng.random((30, 3)), sequence_id="a") == "a"
        assert "a" in db
        assert len(db) == 1

    def test_auto_ids_are_ordinals(self, rng):
        db = SequenceDatabase(dimension=2)
        ids = [db.add(rng.random((10, 2))) for _ in range(3)]
        assert ids == [0, 1, 2]

    def test_id_from_sequence_object(self, rng):
        db = SequenceDatabase(dimension=2)
        seq = MultidimensionalSequence(rng.random((10, 2)), sequence_id="named")
        assert db.add(seq) == "named"

    def test_duplicate_id_rejected(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((10, 2)), sequence_id="x")
        with pytest.raises(KeyError, match="already stored"):
            db.add(rng.random((10, 2)), sequence_id="x")

    def test_dimension_mismatch_rejected(self, rng):
        db = SequenceDatabase(dimension=3)
        with pytest.raises(ValueError, match="dimension"):
            db.add(rng.random((10, 2)))

    def test_add_all(self, rng):
        db = SequenceDatabase(dimension=2)
        ids = db.add_all(rng.random((8, 2)) for _ in range(4))
        assert ids == [0, 1, 2, 3]
        assert db.ids() == ids

    def test_counts(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((25, 2)))
        db.add(rng.random((35, 2)))
        assert db.point_count == 60
        assert db.segment_count == sum(len(p) for _, p in db.partitions())

    def test_unknown_id_raises(self):
        db = SequenceDatabase(dimension=2)
        with pytest.raises(KeyError, match="unknown sequence id"):
            db.partition("nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            SequenceDatabase(dimension=0)
        with pytest.raises(ValueError, match="index_kind"):
            SequenceDatabase(dimension=2, index_kind="btree")


class TestIndexKinds:
    @pytest.mark.parametrize("kind", ["rtree", "rstar", "str"])
    def test_index_holds_every_segment(self, rng, kind):
        db = SequenceDatabase(dimension=2, index_kind=kind)
        for i in range(6):
            db.add(rng.random((int(rng.integers(20, 50)), 2)), sequence_id=i)
        index = db.index
        assert len(index) == db.segment_count
        keys = {(e.payload.sequence_id, e.payload.segment_index)
                for e in index.entries()}
        expected = {
            (sid, segment.index)
            for sid, partition in db.partitions()
            for segment in partition
        }
        assert keys == expected

    def test_str_index_rebuilt_after_late_insert(self, rng):
        db = SequenceDatabase(dimension=2, index_kind="str")
        db.add(rng.random((20, 2)), sequence_id=0)
        first = db.index
        assert len(first) == db.segment_count
        db.add(rng.random((20, 2)), sequence_id=1)
        second = db.index
        assert len(second) == db.segment_count
        assert second is not first

    def test_payloads_are_segment_keys(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((30, 2)), sequence_id="s")
        entry = next(iter(db.index.entries()))
        assert isinstance(entry.payload, SegmentKey)
        assert entry.payload.sequence_id == "s"

    def test_index_mbrs_match_partition(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((40, 2)), sequence_id="s")
        partition = db.partition("s")
        for entry in db.index.entries():
            segment = partition[entry.payload.segment_index]
            assert entry.mbr == segment.mbr

    def test_partition_parameters_forwarded(self, rng):
        db = SequenceDatabase(dimension=2, cost_constant=0.5, max_points=5)
        db.add(rng.random((40, 2)), sequence_id="s")
        partition = db.partition("s")
        assert partition.cost_constant == 0.5
        assert max(partition.counts) <= 5

    def test_repr(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((10, 2)))
        assert "sequences=1" in repr(db)
