"""The repository linter: one positive and one negative case per rule.

Fixture modules are written under a temporary ``src/repro/<layer>/`` tree so
the engine classifies them as library code; non-library fixtures go under a
``tests/`` directory of the same temporary root.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from tools.repro_lint.engine import lint_file, lint_paths, main
from tools.repro_lint.rules import (
    ALL_RULES,
    LAYER_ALLOWED_IMPORTS,
    VALIDATION_HELPERS,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def write_module(root: Path, relpath: str, source: str) -> Path:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def codes_in(path: Path) -> set:
    return {violation.rule for violation in lint_file(path)}


# ----------------------------------------------------------------------
# REP100 — syntax errors
# ----------------------------------------------------------------------
def test_rep100_syntax_error(tmp_path):
    path = write_module(tmp_path, "src/repro/core/broken.py", "def f(:\n")
    violations = lint_file(path)
    assert [v.rule for v in violations] == ["REP100"]
    assert "syntax error" in violations[0].message


# ----------------------------------------------------------------------
# REP101 — bare assert in library code
# ----------------------------------------------------------------------
def test_rep101_flags_bare_assert_in_library(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/asserts.py",
        '''
        """Doc."""
        __all__ = []


        def f(x: int) -> int:
            assert x > 0
            return x
        ''',
    )
    assert "REP101" in codes_in(path)


def test_rep101_ignores_test_code_and_raises(tmp_path):
    test_path = write_module(
        tmp_path,
        "tests/test_something.py",
        "def test_x():\n    assert 1 + 1 == 2\n",
    )
    assert "REP101" not in codes_in(test_path)

    raising = write_module(
        tmp_path,
        "src/repro/core/raises.py",
        '''
        """Doc."""
        __all__ = []


        def f(x: int) -> int:
            if x <= 0:
                raise ValueError("x must be positive")
            return x
        ''',
    )
    assert "REP101" not in codes_in(raising)


# ----------------------------------------------------------------------
# REP102 — mutable default arguments
# ----------------------------------------------------------------------
@pytest.mark.parametrize("default", ["[]", "{}", "set()", "dict()", "[x for x in ()]"])
def test_rep102_flags_mutable_defaults(tmp_path, default):
    path = write_module(
        tmp_path,
        "src/repro/core/defaults.py",
        f'''
        """Doc."""
        __all__ = []


        def f(items: object = {default}) -> object:
            return items
        ''',
    )
    assert "REP102" in codes_in(path)


def test_rep102_applies_outside_library_and_accepts_none(tmp_path):
    # The rule is not library-only: helper code in tests is covered too.
    in_tests = write_module(
        tmp_path,
        "tests/helper.py",
        "def make(acc=[]):\n    return acc\n",
    )
    assert "REP102" in codes_in(in_tests)

    clean = write_module(
        tmp_path,
        "src/repro/core/none_default.py",
        '''
        """Doc."""
        __all__ = []


        def f(items: "list | None" = None, *, tag: str = "x") -> list:
            return [] if items is None else items
        ''',
    )
    assert "REP102" not in codes_in(clean)


# ----------------------------------------------------------------------
# REP103 — __all__ required in library modules
# ----------------------------------------------------------------------
def test_rep103_requires_module_all(tmp_path):
    missing = write_module(
        tmp_path,
        "src/repro/util/surface.py",
        '"""Doc."""\n\nVALUE = 1\n',
    )
    assert "REP103" in codes_in(missing)

    declared = write_module(
        tmp_path,
        "src/repro/util/surface_ok.py",
        '"""Doc."""\n\n__all__ = ["VALUE"]\n\nVALUE = 1\n',
    )
    assert "REP103" not in codes_in(declared)

    non_library = write_module(tmp_path, "tests/no_all.py", "VALUE = 1\n")
    assert "REP103" not in codes_in(non_library)


# ----------------------------------------------------------------------
# REP104 — float equality on distance-like values
# ----------------------------------------------------------------------
def test_rep104_flags_distance_equality(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/eq.py",
        '''
        """Doc."""
        __all__ = []


        def f(dist: float, dnorm_value: float) -> bool:
            return dist == 0.25 or dnorm_value != 0.5
        ''',
    )
    assert "REP104" in codes_in(path)


def test_rep104_allows_ordering_and_non_distance_ints(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/ordering.py",
        '''
        """Doc."""
        __all__ = []


        def f(dist: float, epsilon: float, count: int) -> bool:
            return dist <= epsilon and count == 3
        ''',
    )
    assert "REP104" not in codes_in(path)


# ----------------------------------------------------------------------
# REP105 — layered architecture
# ----------------------------------------------------------------------
def test_rep105_core_must_not_import_index(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/uses_index.py",
        '''
        """Doc."""
        from repro.index.rtree import RTree

        __all__ = []
        ''',
    )
    violations = [v for v in lint_file(path) if v.rule == "REP105"]
    assert len(violations) == 1
    assert "'core' may not import" in violations[0].message


def test_rep105_util_must_not_import_core(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/util/uses_core.py",
        '''
        """Doc."""
        import repro.core.mbr

        __all__ = []
        ''',
    )
    assert "REP105" in codes_in(path)


def test_rep105_relative_imports_resolve_to_layers(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/util/relative.py",
        '''
        """Doc."""
        from ..core import mbr

        __all__ = []
        ''',
    )
    assert "REP105" in codes_in(path)


def test_rep105_layer_may_not_import_composition_root(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/uses_top.py",
        '''
        """Doc."""
        from repro import cli

        __all__ = []
        ''',
    )
    violations = [v for v in lint_file(path) if v.rule == "REP105"]
    assert violations and "top-level" in violations[0].message


def test_rep105_allowed_imports_stay_clean(tmp_path):
    analysis = write_module(
        tmp_path,
        "src/repro/analysis/ok.py",
        '''
        """Doc."""
        from repro.baselines.sequential import SequentialScan
        from repro.core.mbr import MBR
        from repro.util.rng import ensure_rng

        __all__ = []
        ''',
    )
    assert "REP105" not in codes_in(analysis)

    top = write_module(
        tmp_path,
        "src/repro/cli.py",
        '''
        """Doc."""
        from repro.analysis.experiment import ExperimentRunner
        from repro.index.rtree import RTree

        __all__ = []
        ''',
    )
    assert "REP105" not in codes_in(top)


def test_rep105_layer_map_matches_architecture():
    # Every layer may import itself and util; the map is acyclic.
    for layer, allowed in LAYER_ALLOWED_IMPORTS.items():
        assert layer in allowed
        assert "util" in allowed
    assert "index" not in LAYER_ALLOWED_IMPORTS["core"]


# ----------------------------------------------------------------------
# REP106 — epsilon parameters must be validated
# ----------------------------------------------------------------------
def test_rep106_flags_unvalidated_epsilon(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/eps.py",
        '''
        """Doc."""
        __all__ = []


        def search(query: object, epsilon: float) -> float:
            return epsilon * 2.0
        ''',
    )
    violations = [v for v in lint_file(path) if v.rule == "REP106"]
    assert violations and "search()" in violations[0].message


def test_rep106_accepts_validation_helpers(tmp_path):
    assert "check_threshold" in VALIDATION_HELPERS
    path = write_module(
        tmp_path,
        "src/repro/core/eps_ok.py",
        '''
        """Doc."""
        from repro.util.validation import check_threshold

        __all__ = []


        def search(query: object, epsilon: float) -> float:
            epsilon = check_threshold(epsilon)
            return epsilon * 2.0
        ''',
    )
    assert "REP106" not in codes_in(path)


def test_rep106_exempts_private_functions_and_stubs(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/eps_exempt.py",
        '''
        """Doc."""
        from typing import Protocol

        __all__ = []


        def _inner(epsilon: float) -> float:
            return epsilon


        class Searcher(Protocol):
            def search_within(self, query: object, epsilon: float) -> set:
                """Interface only."""
                ...
        ''',
    )
    assert "REP106" not in codes_in(path)


# ----------------------------------------------------------------------
# REP107 — full annotations in library code
# ----------------------------------------------------------------------
def test_rep107_flags_missing_annotations(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/anno.py",
        '''
        """Doc."""
        __all__ = []


        def f(x, y: int):
            return x + y
        ''',
    )
    messages = [v.message for v in lint_file(path) if v.rule == "REP107"]
    assert any("unannotated parameter(s): x" in m for m in messages)
    assert any("no return annotation" in m for m in messages)


def test_rep107_self_and_cls_are_exempt(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/anno_ok.py",
        '''
        """Doc."""
        __all__ = []


        class Box:
            def __init__(self, value: int) -> None:
                self.value = value

            @classmethod
            def empty(cls) -> "Box":
                return cls(0)
        ''',
    )
    assert "REP107" not in codes_in(path)


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
def test_disable_comment_suppresses_one_rule_on_one_line(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/suppressed.py",
        '''
        """Doc."""
        __all__ = []


        def f(x: int) -> int:
            assert x > 0  # repro-lint: disable=REP101
            assert x < 10
            return x
        ''',
    )
    violations = [v for v in lint_file(path) if v.rule == "REP101"]
    assert len(violations) == 1  # only the un-suppressed assert remains


def test_disable_comment_accepts_multiple_codes(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/multi_suppress.py",
        '''
        """Doc."""
        __all__ = []


        def f(acc: list = []) -> list:  # repro-lint: disable=REP102, REP107
            return acc
        ''',
    )
    assert codes_in(path) == set()


# ----------------------------------------------------------------------
# Engine and CLI
# ----------------------------------------------------------------------
def test_lint_paths_sorts_and_recurses(tmp_path):
    write_module(tmp_path, "src/repro/core/zz.py", "assert True\n")
    write_module(tmp_path, "src/repro/core/aa.py", "assert True\n")
    violations = lint_paths([tmp_path / "src"])
    files = [v.path.name for v in violations if v.rule == "REP101"]
    assert files == sorted(files)


def test_main_exit_codes(tmp_path, capsys):
    clean = write_module(
        tmp_path, "src/repro/core/ok.py", '"""Doc."""\n\n__all__ = []\n'
    )
    dirty = write_module(tmp_path, "src/repro/core/bad.py", "assert True\n")

    assert main([str(clean)]) == 0
    assert main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "REP101" in out and "bad.py" in out

    # --select runs only the chosen rules; unknown codes are a usage error.
    assert main(["--select", "REP103", str(dirty)]) == 1
    assert main(["--select", "REP101", str(clean)]) == 0
    assert main(["--select", "REP999", str(clean)]) == 2

    # a missing path is a usage error, not a clean run
    assert main([str(tmp_path / "no_such_dir")]) == 2


def test_main_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.code in out


def test_violation_render_is_location_prefixed(tmp_path):
    path = write_module(tmp_path, "src/repro/core/loc.py", "assert True\n")
    rendered = lint_file(path)[0].render()
    assert rendered.startswith(f"{path}:1:")
    assert "REP101" in rendered


# ----------------------------------------------------------------------
# REP200 — shared attributes mutated under the owning class's lock
# ----------------------------------------------------------------------
LOCKED_CLASS_HEADER = '''
    """Doc."""
    from repro.util.sync import TracedLock

    __all__ = []


    class Widget:
        def __init__(self) -> None:
            self._lock = TracedLock("widget.lock")
            self._count = 0
'''


def test_rep200_seeded_unguarded_write_is_caught(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/widget.py",
        LOCKED_CLASS_HEADER
        + '''
        def bump(self) -> None:
            self._count += 1
        ''',
    )
    assert "REP200" in codes_in(path)


def test_rep200_guarded_write_is_clean(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/widget.py",
        LOCKED_CLASS_HEADER
        + '''
        def bump(self) -> None:
            with self._lock:
                self._count += 1
        ''',
    )
    assert "REP200" not in codes_in(path)


def test_rep200_locked_suffix_and_waiver_are_exempt(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/widget.py",
        LOCKED_CLASS_HEADER
        + '''
        def _bump_locked(self) -> None:
            self._count += 1

        def close(self) -> None:
            self._count = -1  # thread-safe: monotonic latch
        ''',
    )
    assert "REP200" not in codes_in(path)


def test_rep200_lockless_class_is_externally_synchronised(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/window.py",
        '''
        """Doc."""

        __all__ = []


        class Window:
            def __init__(self) -> None:
                self._count = 0

            def bump(self) -> None:
                self._count += 1
        ''',
    )
    assert "REP200" not in codes_in(path)


def test_rep200_does_not_apply_outside_concurrent_layers(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/widget.py",
        '''
        """Doc."""
        import threading

        __all__ = []


        class Widget:
            def __init__(self) -> None:
                self._lock = threading.Lock()
                self._count = 0

            def bump(self) -> None:
                self._count += 1
        ''',
    )
    assert codes_in(path) & {"REP200", "REP203"} == set()


# ----------------------------------------------------------------------
# REP201 — declared module lock order
# ----------------------------------------------------------------------
def test_rep201_flags_inverted_declared_order(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/engine.py",
        '''
        """Doc."""
        from repro.util.sync import TracedLock

        __all__ = []


        class Engine:
            def __init__(self) -> None:
                self._write_lock = TracedLock("engine.write")
                self._trace_lock = TracedLock("engine.trace")

            def bad(self) -> None:
                with self._trace_lock:
                    with self._write_lock:
                        pass

            def good(self) -> None:
                with self._write_lock:
                    with self._trace_lock:
                        pass
        ''',
    )
    violations = [v for v in lint_file(path) if v.rule == "REP201"]
    assert len(violations) == 1
    assert "self._write_lock" in violations[0].message


def test_rep201_flags_undeclared_nesting(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/undeclared.py",
        '''
        """Doc."""
        from repro.util.sync import TracedLock

        __all__ = []


        class Thing:
            def __init__(self) -> None:
                self._a_lock = TracedLock("thing.a")
                self._b_lock = TracedLock("thing.b")

            def nest(self) -> None:
                with self._a_lock:
                    with self._b_lock:
                        pass
        ''',
    )
    violations = [v for v in lint_file(path) if v.rule == "REP201"]
    assert len(violations) == 1
    assert "MODULE_LOCK_ORDER" in violations[0].message


# ----------------------------------------------------------------------
# REP202 — blocking calls under a lock
# ----------------------------------------------------------------------
def test_rep202_flags_sleep_under_lock(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/sleepy.py",
        '''
        """Doc."""
        import time

        from repro.util.sync import TracedLock

        __all__ = []


        class Sleepy:
            def __init__(self) -> None:
                self._lock = TracedLock("sleepy.lock")

            def nap(self) -> None:
                with self._lock:
                    time.sleep(0.5)

            def fine(self) -> None:
                with self._lock:
                    pass
                time.sleep(0.5)
        ''',
    )
    violations = [v for v in lint_file(path) if v.rule == "REP202"]
    assert len(violations) == 1
    assert "time.sleep" in violations[0].message


# ----------------------------------------------------------------------
# REP203 — raw threading primitives in service/cluster
# ----------------------------------------------------------------------
def test_rep203_flags_raw_lock_and_allows_semaphore(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/cluster/raw.py",
        '''
        """Doc."""
        import threading

        __all__ = []


        class Raw:
            def __init__(self) -> None:
                self._lock = threading.Lock()
                self._cond = threading.Condition()
                self._slots = threading.Semaphore(4)
                self._flag = threading.Event()
        ''',
    )
    violations = [v for v in lint_file(path) if v.rule == "REP203"]
    assert len(violations) == 2  # Lock + Condition; Semaphore/Event exempt


def test_rep203_counts_from_threading_imports(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/bare.py",
        '''
        """Doc."""
        from threading import Lock

        __all__ = []


        def make() -> Lock:
            return Lock()
        ''',
    )
    assert "REP203" in codes_in(path)


# ----------------------------------------------------------------------
# REP204 — condition discipline
# ----------------------------------------------------------------------
def test_rep204_flags_notify_without_lock(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/condy.py",
        '''
        """Doc."""
        from repro.util.sync import TracedCondition

        __all__ = []


        class Condy:
            def __init__(self) -> None:
                self._cond = TracedCondition(name="condy.cond")

            def bad(self) -> None:
                self._cond.notify()

            def good(self) -> None:
                with self._cond:
                    self._cond.notify_all()
        ''',
    )
    violations = [v for v in lint_file(path) if v.rule == "REP204"]
    assert len(violations) == 1
    assert "notify" in violations[0].message


# ----------------------------------------------------------------------
# REP205 — lexical self-deadlock
# ----------------------------------------------------------------------
def test_rep205_flags_reentered_lock(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/reenter.py",
        LOCKED_CLASS_HEADER
        + '''
        def bad(self) -> None:
            with self._lock:
                with self._lock:
                    pass
        ''',
    )
    assert "REP205" in codes_in(path)


# ----------------------------------------------------------------------
# REP206 — manual acquire without finally release
# ----------------------------------------------------------------------
def test_rep206_requires_finally_release(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/manual.py",
        LOCKED_CLASS_HEADER
        + '''
        def leak(self) -> bool:
            if not self._lock.acquire(blocking=False):
                return False
            self._count += 1  # thread-safe: lock held via manual acquire
            self._lock.release()
            return True

        def safe(self) -> bool:
            if not self._lock.acquire(blocking=False):
                return False
            try:
                return True
            finally:
                self._lock.release()
        ''',
    )
    violations = [v for v in lint_file(path) if v.rule == "REP206"]
    assert [v.line for v in violations] == [
        min(v.line for v in violations)
    ]  # only leak() is flagged, not safe()


# ----------------------------------------------------------------------
# --format json (CI problem-matcher input)
# ----------------------------------------------------------------------
def test_main_format_json_emits_json_lines(tmp_path, capsys):
    import json as json_module

    dirty = write_module(
        tmp_path, "src/repro/core/bad.py", "assert True\n"
    )
    assert main(["--format", "json", str(dirty)]) == 1
    out = capsys.readouterr().out
    records = [
        json_module.loads(line) for line in out.splitlines() if line.strip()
    ]
    assert records, "expected at least one JSON record"
    for record in records:
        assert list(record) == ["file", "line", "col", "code", "summary"]
    assert records[0]["code"] == "REP101"
    assert records[0]["file"].endswith("bad.py")
    assert records[0]["line"] == 1


# ----------------------------------------------------------------------
# The repository itself passes its own gate
# ----------------------------------------------------------------------
def test_repository_is_lint_clean():
    violations = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
    assert violations == [], "\n".join(v.render() for v in violations)


# ----------------------------------------------------------------------
# REP300 — in-place writes to snapshot-derived values
# ----------------------------------------------------------------------
def test_rep300_seeded_partition_matrix_write_is_caught(tmp_path):
    # The real-shape regression: before the freeze fix, nothing stopped
    # an in-place accumulation on the shared partition matrices.
    path = write_module(
        tmp_path,
        "src/repro/core/partitioning.py",
        '''
        """Doc."""
        __all__ = []


        class PartitionedSequence:
            def rescale(self, factor: float) -> None:
                self._low_matrix *= factor
                self._counts[0] += 1
        ''',
    )
    violations = [v for v in lint_file(path) if v.rule == "REP300"]
    assert len(violations) == 2


def test_rep300_item_write_through_parameter(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/boxes.py",
        '''
        """Doc."""
        from repro.core.mbr import MBR

        __all__ = []


        def widen(box: MBR, amount: float) -> None:
            box.low[0] -= amount
        ''',
    )
    assert "REP300" in codes_in(path)


def test_rep300_copies_are_clean(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/clean300.py",
        '''
        """Doc."""
        import numpy as np

        from repro.core.mbr import MBR

        __all__ = []


        def widen(box: MBR, amount: float) -> np.ndarray:
            low = np.array(box.low)
            low[0] -= amount
            return low
        ''',
    )
    assert "REP300" not in codes_in(path)


# ----------------------------------------------------------------------
# REP301 — mutating methods on tracked values
# ----------------------------------------------------------------------
def test_rep301_seeded_cache_patch_shape_is_caught(tmp_path):
    # The real-shape bug apply_write exists to avoid: patching a shared
    # entry's sets in place instead of publishing a patched copy.
    path = write_module(
        tmp_path,
        "src/repro/service/cache.py",
        '''
        """Doc."""
        __all__ = []


        class EpsilonCache:
            def apply_write(self, sequence_id: object, entry: object) -> None:
                entry.candidates.discard(sequence_id)
                entry.intervals.pop(sequence_id, None)
        ''',
    )
    violations = [v for v in lint_file(path) if v.rule == "REP301"]
    assert len(violations) == 2


def test_rep301_copy_then_mutate_is_clean(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/cache.py",
        '''
        """Doc."""
        __all__ = []


        class EpsilonCache:
            def apply_write(self, sequence_id: object, entry: object) -> set:
                candidates = set(entry.candidates)
                candidates.discard(sequence_id)
                return candidates
        ''',
    )
    assert "REP301" not in codes_in(path)


# ----------------------------------------------------------------------
# REP302 — tracked containers returned across public boundaries
# ----------------------------------------------------------------------
def test_rep302_public_return_of_registered_container(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/partitioning.py",
        '''
        """Doc."""
        __all__ = []


        class PartitionedSequence:
            def segments(self) -> list:
                return self._segments

            def _segments_internal(self) -> list:
                return self._segments
        ''',
    )
    violations = [v for v in lint_file(path) if v.rule == "REP302"]
    assert len(violations) == 1  # the private accessor is exempt


def test_rep302_copied_return_is_clean(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/partitioning.py",
        '''
        """Doc."""
        __all__ = []


        class PartitionedSequence:
            def segments(self) -> list:
                return list(self._segments)
        ''',
    )
    assert "REP302" not in codes_in(path)


# ----------------------------------------------------------------------
# REP303 — aliases escaping into self state
# ----------------------------------------------------------------------
def test_rep303_asarray_alias_stored_on_self(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/index/cacheing.py",
        '''
        """Doc."""
        import numpy as np

        from repro.core.mbr import MBR

        __all__ = []


        class RowCache:
            def remember(self, box: MBR) -> None:
                self._last_low = np.asarray(box.low)

            def remember_copy(self, box: MBR) -> None:
                self._safe_low = np.array(box.low)
        ''',
    )
    violations = [v for v in lint_file(path) if v.rule == "REP303"]
    assert len(violations) == 1
    assert "_last_low" in violations[0].message


def test_rep303_slice_alias_stored_on_self(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/slicer.py",
        '''
        """Doc."""
        from repro.core.sequence import MultidimensionalSequence

        __all__ = []


        class Slicer:
            def keep(self, seq: MultidimensionalSequence) -> None:
                self._window = seq.points[0:8]
        ''',
    )
    assert "REP303" in codes_in(path)


# ----------------------------------------------------------------------
# REP304 — constructor capture of caller-owned mutables
# ----------------------------------------------------------------------
def test_rep304_flags_uncopied_capture_and_accepts_copies(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/capture.py",
        '''
        """Doc."""
        import numpy as np

        __all__ = []


        class Holder:
            def __init__(self, points: np.ndarray, ids: list) -> None:
                self._points = points
                self._ids = list(ids)
        ''',
    )
    violations = [v for v in lint_file(path) if v.rule == "REP304"]
    assert len(violations) == 1
    assert "'points'" in violations[0].message


def test_rep304_immutable_parameters_are_clean(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/capture_ok.py",
        '''
        """Doc."""
        __all__ = []


        class Holder:
            def __init__(self, name: str, limit: int) -> None:
                self._name = name
                self._limit = limit
        ''',
    )
    assert "REP304" not in codes_in(path)


# ----------------------------------------------------------------------
# REP305 — dtype narrowing on distance-critical arrays
# ----------------------------------------------------------------------
def test_rep305_flags_float32_cast_on_distances(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/narrow.py",
        '''
        """Doc."""
        import numpy as np

        __all__ = []


        def compact(distances: np.ndarray) -> np.ndarray:
            return distances.astype(np.float32)
        ''',
    )
    assert "REP305" in codes_in(path)


def test_rep305_allows_narrowing_non_distance_data(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/narrow_ok.py",
        '''
        """Doc."""
        import numpy as np

        __all__ = []


        def pack(colors: np.ndarray) -> np.ndarray:
            return colors.astype(np.float32)


        def keep_precision(distances: np.ndarray) -> np.ndarray:
            return distances.astype(np.float64)
        ''',
    )
    assert "REP305" not in codes_in(path)


# ----------------------------------------------------------------------
# REP306 — writeability re-enabled outside repro.util.freeze
# ----------------------------------------------------------------------
def test_rep306_flags_setflags_and_flags_writeable(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/index/unfreezer.py",
        '''
        """Doc."""
        import numpy as np

        __all__ = []


        def thaw(arr: np.ndarray) -> None:
            arr.setflags(write=True)
            arr.flags.writeable = True
        ''',
    )
    violations = [v for v in lint_file(path) if v.rule == "REP306"]
    assert len(violations) == 2


def test_rep306_freeze_module_itself_is_exempt():
    path = REPO_ROOT / "src" / "repro" / "util" / "freeze.py"
    assert "REP306" not in codes_in(path)


# ----------------------------------------------------------------------
# REP307 — waivers need reasons; reasoned waivers suppress
# ----------------------------------------------------------------------
def test_rep307_bare_waiver_flagged_and_does_not_suppress(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/waivers.py",
        '''
        """Doc."""
        import numpy as np

        __all__ = []


        def thaw(arr: np.ndarray) -> None:
            arr.setflags(write=True)  # alias-ok
        ''',
    )
    codes = codes_in(path)
    assert "REP307" in codes
    assert "REP306" in codes  # a bare waiver waives nothing


def test_reasoned_alias_ok_waiver_suppresses(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/core/waived.py",
        '''
        """Doc."""
        import numpy as np

        __all__ = []


        def thaw(arr: np.ndarray) -> None:
            arr.setflags(write=True)  # alias-ok: scratch buffer owned here
        ''',
    )
    codes = codes_in(path)
    assert "REP306" not in codes
    assert "REP307" not in codes


def test_rep3xx_does_not_apply_to_test_code(tmp_path):
    path = write_module(
        tmp_path,
        "tests/helper_alias.py",
        '''
        import numpy as np


        def thaw(arr: np.ndarray) -> None:
            arr.setflags(write=True)
        ''',
    )
    assert codes_in(path) & {"REP300", "REP306"} == set()


# ----------------------------------------------------------------------
# REP400 — broad excepts re-raise or carry a reasoned waiver
# ----------------------------------------------------------------------
def test_rep400_flags_silent_broad_except(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/swallow.py",
        '''
        """Doc."""
        __all__ = []


        def f() -> int:
            try:
                return 1
            except Exception:
                return 0
        ''',
    )
    assert "REP400" in codes_in(path)


def test_rep400_bare_except_flagged_reraise_and_waiver_clean(tmp_path):
    bare = write_module(
        tmp_path,
        "src/repro/service/bare.py",
        '''
        """Doc."""
        __all__ = []


        def f() -> int:
            try:
                return 1
            except:
                return 0
        ''',
    )
    assert "REP400" in codes_in(bare)

    clean = write_module(
        tmp_path,
        "src/repro/service/cleanup.py",
        '''
        """Doc."""
        __all__ = []


        def f(resource: object) -> int:
            try:
                return 1
            except Exception:
                del resource
                raise
        ''',
    )
    assert "REP400" not in codes_in(clean)

    waived = write_module(
        tmp_path,
        "src/repro/service/waived.py",
        '''
        """Doc."""
        __all__ = []


        def f() -> int:
            try:
                return 1
            except Exception:  # error-ok: probe loop outlives bad sweeps
                return 0
        ''',
    )
    assert "REP400" not in codes_in(waived)


def test_rep400_exempt_outside_library(tmp_path):
    path = write_module(
        tmp_path,
        "tests/test_x.py",
        "def f():\n    try:\n        return 1\n    except Exception:\n"
        "        return 0\n",
    )
    assert "REP400" not in codes_in(path)


# ----------------------------------------------------------------------
# REP401 — cancellation/budget errors always propagate
# ----------------------------------------------------------------------
def test_rep401_flags_absorbed_cancellation(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/eat.py",
        '''
        """Doc."""
        __all__ = []


        def f() -> int:
            try:
                return 1
            except DeadlineExceeded:
                return 0
        ''',
    )
    assert "REP401" in codes_in(path)


def test_rep401_translation_with_raise_is_clean(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/translate.py",
        '''
        """Doc."""
        __all__ = []


        def f() -> int:
            try:
                return 1
            except OperationCancelled as error:
                raise DeadlineExceeded("budget spent") from error
        ''',
    )
    assert "REP401" not in codes_in(path)


def test_rep401_catches_tuple_spelling(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/tupled.py",
        '''
        """Doc."""
        __all__ = []


        def f() -> int:
            try:
                return 1
            except (ValueError, OperationCancelled):
                return 0
        ''',
    )
    assert "REP401" in codes_in(path)


# ----------------------------------------------------------------------
# REP402 — typed translations chain provenance with 'from'
# ----------------------------------------------------------------------
def test_rep402_flags_unchained_taxonomy_raise(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/unchained.py",
        '''
        """Doc."""
        __all__ = []


        def f() -> int:
            try:
                return 1
            except ValueError:
                raise ServiceError("rebuilt without provenance")
        ''',
    )
    assert "REP402" in codes_in(path)


def test_rep402_from_clause_is_clean(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/chained.py",
        '''
        """Doc."""
        __all__ = []


        def f() -> int:
            try:
                return 1
            except ValueError as error:
                raise ServiceError("rebuilt") from error
        ''',
    )
    assert "REP402" not in codes_in(path)


def test_rep402_ignores_non_taxonomy_raises(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/plain.py",
        '''
        """Doc."""
        __all__ = []


        def f() -> int:
            try:
                return 1
            except ValueError:
                raise ValueError("re-validated, not a translation")
        ''',
    )
    assert "REP402" not in codes_in(path)


# ----------------------------------------------------------------------
# REP403 — public request-layer APIs raise only taxonomy errors
# ----------------------------------------------------------------------
def test_rep403_flags_untyped_public_raise(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/custom.py",
        '''
        """Doc."""
        __all__ = []


        def lookup(key: str) -> int:
            raise CustomSearchError(f"no {key}")
        ''',
    )
    assert "REP403" in codes_in(path)


def test_rep403_taxonomy_private_and_core_exempt(tmp_path):
    typed = write_module(
        tmp_path,
        "src/repro/service/typed.py",
        '''
        """Doc."""
        __all__ = []


        def lookup(key: str) -> int:
            raise ServiceError(f"no {key}")
        ''',
    )
    assert "REP403" not in codes_in(typed)

    private = write_module(
        tmp_path,
        "src/repro/service/private.py",
        '''
        """Doc."""
        __all__ = []


        def _helper(key: str) -> int:
            raise CustomSearchError(f"no {key}")
        ''',
    )
    assert "REP403" not in codes_in(private)

    core = write_module(
        tmp_path,
        "src/repro/core/free.py",
        '''
        """Doc."""
        __all__ = []


        def lookup(key: str) -> int:
            raise CustomSearchError(f"no {key}")
        ''',
    )
    assert "REP403" not in codes_in(core)


# ----------------------------------------------------------------------
# REP404 — no retry loops around non-idempotent writes
# ----------------------------------------------------------------------
def test_rep404_flags_retried_insert(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/cluster/retry.py",
        '''
        """Doc."""
        __all__ = []


        def drain(backend: object, entries: list) -> None:
            for entry in entries:
                try:
                    backend.insert(entry)
                except ValueError:
                    continue
        ''',
    )
    assert "REP404" in codes_in(path)


def test_rep404_bookkeeping_and_reraising_loops_clean(tmp_path):
    bookkeeping = write_module(
        tmp_path,
        "src/repro/cluster/lists.py",
        '''
        """Doc."""
        __all__ = []


        def gather(entries: list) -> list:
            pending: list = []
            for entry in entries:
                try:
                    pending.append(entry)
                except ValueError:
                    continue
            return pending
        ''',
    )
    assert "REP404" not in codes_in(bookkeeping)

    reraising = write_module(
        tmp_path,
        "src/repro/cluster/strict.py",
        '''
        """Doc."""
        __all__ = []


        def drain(backend: object, entries: list) -> None:
            for entry in entries:
                try:
                    backend.insert(entry)
                except ValueError as error:
                    raise ServiceError("replay failed") from error
        ''',
    )
    assert "REP404" not in codes_in(reraising)


def test_rep404_waivable_on_the_call_line(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/cluster/idempotent.py",
        '''
        """Doc."""
        __all__ = []


        def drain(backend: object, entries: list) -> None:
            for entry in entries:
                try:
                    backend.insert(entry)  # error-ok: duplicate KeyError proves the write landed
                except ValueError:
                    continue
        ''',
    )
    assert "REP404" not in codes_in(path)


# ----------------------------------------------------------------------
# REP405 — finally/__exit__ control flow that masks exceptions
# ----------------------------------------------------------------------
def test_rep405_flags_return_in_finally(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/mask.py",
        '''
        """Doc."""
        __all__ = []


        def f() -> int:
            try:
                return 1
            finally:
                return 0
        ''',
    )
    assert "REP405" in codes_in(path)


def test_rep405_flags_exit_returning_true(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/ctx.py",
        '''
        """Doc."""
        __all__ = []


        class Scope:
            """Doc."""

            def __exit__(self, exc_type, exc, tb) -> bool:
                return True
        ''',
    )
    assert "REP405" in codes_in(path)


def test_rep405_plain_cleanup_finally_clean(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/tidy.py",
        '''
        """Doc."""
        __all__ = []


        def f(lock: object) -> int:
            try:
                return 1
            finally:
                release(lock)
        ''',
    )
    assert "REP405" not in codes_in(path)


# ----------------------------------------------------------------------
# REP406 — inject sites and FAULT_SITES stay in lockstep
# ----------------------------------------------------------------------
FAULTS_FIXTURE = '''
"""Doc."""
__all__ = ["FAULT_SITES"]

FAULT_SITES = (
    "engine.worker",
    "wal.fsync",
)
'''


def test_rep406_flags_unregistered_inject_literal(tmp_path):
    write_module(tmp_path, "src/repro/service/faults.py", FAULTS_FIXTURE)
    path = write_module(
        tmp_path,
        "src/repro/service/hot.py",
        '''
        """Doc."""
        __all__ = []


        def f() -> None:
            inject("engine.worker")
            inject("never.registered")
        ''',
    )
    assert "REP406" in codes_in(path)


def test_rep406_flags_dead_registry_entry(tmp_path):
    write_module(
        tmp_path,
        "src/repro/service/hot.py",
        '''
        """Doc."""
        __all__ = []


        def f() -> None:
            inject("engine.worker")
        ''',
    )
    faults = write_module(
        tmp_path, "src/repro/service/faults.py", FAULTS_FIXTURE
    )
    violations = [v for v in lint_file(faults) if v.rule == "REP406"]
    assert len(violations) == 1
    assert "wal.fsync" in violations[0].message


def test_rep406_dynamic_sites_exempt(tmp_path):
    write_module(tmp_path, "src/repro/service/faults.py", FAULTS_FIXTURE)
    path = write_module(
        tmp_path,
        "src/repro/cluster/dynamic.py",
        '''
        """Doc."""
        __all__ = []


        def f(index: int) -> None:
            inject(f"cluster.backend.{index}.request")
        ''',
    )
    assert "REP406" not in codes_in(path)


# ----------------------------------------------------------------------
# REP407 — every # error-ok waiver carries a reason
# ----------------------------------------------------------------------
def test_rep407_flags_bare_error_ok(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/barewaiver.py",
        '''
        """Doc."""
        __all__ = []


        def f() -> int:
            try:
                return 1
            except Exception:  # error-ok
                return 0
        ''',
    )
    codes = codes_in(path)
    # A bare waiver both fails REP407 and waives nothing (REP400 stays).
    assert "REP407" in codes
    assert "REP400" in codes


def test_rep407_reasoned_waiver_clean(tmp_path):
    path = write_module(
        tmp_path,
        "src/repro/service/reasoned.py",
        '''
        """Doc."""
        __all__ = []


        def f() -> int:
            try:
                return 1
            except Exception:  # error-ok: tail loop must survive restarts
                return 0
        ''',
    )
    assert "REP407" not in codes_in(path)


# ----------------------------------------------------------------------
# The --fault-coverage audit mode
# ----------------------------------------------------------------------
def test_fault_coverage_fails_on_unexercised_site(tmp_path, capsys):
    write_module(tmp_path, "src/repro/service/faults.py", FAULTS_FIXTURE)
    write_module(
        tmp_path,
        "tests/test_chaos.py",
        "def test_worker_fault():\n"
        "    arm('engine.worker')\n",
    )
    code = main(
        ["--fault-coverage", str(tmp_path / "src"), str(tmp_path / "tests")]
    )
    assert code == 1
    captured = capsys.readouterr()
    assert "wal.fsync" in captured.out
    assert "unexercised" in captured.err


def test_fault_coverage_passes_when_every_site_exercised(tmp_path):
    write_module(tmp_path, "src/repro/service/faults.py", FAULTS_FIXTURE)
    write_module(
        tmp_path,
        "tests/test_chaos.py",
        "def test_faults():\n"
        "    arm('engine.worker')\n"
        "    arm('wal.fsync')\n",
    )
    code = main(
        ["--fault-coverage", str(tmp_path / "src"), str(tmp_path / "tests")]
    )
    assert code == 0


def test_fault_coverage_errors_without_a_registry(tmp_path, capsys):
    write_module(
        tmp_path, "tests/test_chaos.py", "def test_x():\n    pass\n"
    )
    code = main(["--fault-coverage", str(tmp_path / "tests")])
    assert code == 2
    assert "no FAULT_SITES registry" in capsys.readouterr().err


def test_fault_coverage_clean_on_the_real_repo():
    """The acceptance criterion: every registered site has a chaos test."""
    code = main(
        [
            "--fault-coverage",
            str(REPO_ROOT / "src"),
            str(REPO_ROOT / "tests"),
            str(REPO_ROOT / "tools"),
        ]
    )
    assert code == 0


# ----------------------------------------------------------------------
# The rule table carries waiver syntax and matches the documentation
# ----------------------------------------------------------------------
def test_list_rules_shows_waiver_column(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "# alias-ok: <reason>" in out
    assert "# thread-safe: <reason>" in out
    assert "# error-ok: <reason>" in out
    assert "# repro-lint: disable=REP101" in out


def test_every_rule_is_documented():
    docs = (REPO_ROOT / "docs" / "static_analysis.md").read_text(
        encoding="utf-8"
    )
    for rule in ALL_RULES:
        assert rule.code in docs, f"{rule.code} missing from static_analysis.md"
        assert rule.waiver_syntax.split(":")[0] in docs


def test_rule_codes_are_unique_and_sorted_by_family():
    codes = [rule.code for rule in ALL_RULES]
    assert len(codes) == len(set(codes))
    aliasing = [c for c in codes if c.startswith("REP3")]
    assert aliasing == [f"REP30{i}" for i in range(8)]
    errorpaths = [c for c in codes if c.startswith("REP4")]
    assert errorpaths == [f"REP40{i}" for i in range(8)]


# ----------------------------------------------------------------------
# Benchmarks and examples pass the gate too (CI parity)
# ----------------------------------------------------------------------
def test_benchmarks_and_examples_are_lint_clean():
    violations = lint_paths(
        [REPO_ROOT / "benchmarks", REPO_ROOT / "examples"]
    )
    assert violations == [], "\n".join(v.render() for v in violations)
