"""Unit tests for the normalised MBR distance Dnorm (Definition 5).

The centrepiece is a numeric reproduction of the paper's Example 2 /
Figure 3: a data sequence of four MBRs with 4, 6, 5, 5 points, a query MBR
of 12 points, and MBR distances ordered D2 < D1 < D3 < D4; the expected
result is (6*D2 + 4*D1 + 2*D3) / 12 with the first two points of mbr3 as the
marginal contribution.
"""

import numpy as np
import pytest

from repro.core.distance import normalized_distance
from repro.core.mbr import MBR


def _figure3_setup():
    """Query MBR above a stack of four data MBRs at distances .2/.1/.3/.4."""
    query = MBR([0.4, 0.8], [0.6, 0.9])
    data_mbrs = [
        MBR([0.4, 0.5], [0.6, 0.6]),  # D1 = 0.2
        MBR([0.4, 0.6], [0.6, 0.7]),  # D2 = 0.1
        MBR([0.4, 0.4], [0.6, 0.5]),  # D3 = 0.3
        MBR([0.4, 0.3], [0.6, 0.4]),  # D4 = 0.4
    ]
    counts = [4, 6, 5, 5]
    return query, data_mbrs, counts


class TestFigure3Example:
    def test_distances_match_the_example_ordering(self):
        query, data_mbrs, _ = _figure3_setup()
        distances = [query.min_distance(m) for m in data_mbrs]
        np.testing.assert_allclose(distances, [0.2, 0.1, 0.3, 0.4])

    def test_example2_value(self):
        """Dnorm(mbr_q, mbr_2) = (6 D2 + 4 D1 + 2 D3) / 12."""
        query, data_mbrs, counts = _figure3_setup()
        result = normalized_distance(query, 12, data_mbrs, counts, 1)
        expected = (6 * 0.1 + 4 * 0.2 + 2 * 0.3) / 12
        assert result.value == pytest.approx(expected)

    def test_example2_window_structure(self):
        """Example 3: the window is mbr1 + mbr2 + first 2 points of mbr3."""
        query, data_mbrs, counts = _figure3_setup()
        result = normalized_distance(query, 12, data_mbrs, counts, 1)
        assert result.window == (0, 2)
        assert result.marginal_index == 2
        assert result.marginal_count == 2
        assert result.marginal_side == "right"

    def test_example3_involved_points(self):
        query, data_mbrs, counts = _figure3_setup()
        result = normalized_distance(query, 12, data_mbrs, counts, 1)
        spans = result.involved_points(counts)
        assert spans == [(0, 0, 3), (1, 0, 5), (2, 0, 1)]

    def test_enough_points_means_plain_dmbr(self):
        """If |m_j| >= |q_i| the target MBR alone gives Dnorm = Dmbr."""
        query, data_mbrs, counts = _figure3_setup()
        result = normalized_distance(query, 5, data_mbrs, counts, 1)
        assert result.value == pytest.approx(0.1)
        assert result.window == (1, 1)
        assert result.marginal_index is None
        assert result.marginal_side == "none"

    def test_exactly_equal_counts_plain_dmbr(self):
        query, data_mbrs, counts = _figure3_setup()
        result = normalized_distance(query, 6, data_mbrs, counts, 1)
        assert result.value == pytest.approx(0.1)


class TestWindowSelection:
    def test_left_marginal_when_left_neighbour_far(self):
        """Anchor at the first MBR forces an LD (right-marginal) window."""
        query, data_mbrs, counts = _figure3_setup()
        result = normalized_distance(query, 8, data_mbrs, counts, 0)
        # Only LD windows exist for j=0: [0..1] with 4 marginal points of mbr2.
        assert result.marginal_side == "right"
        assert result.window[0] == 0
        expected = (4 * 0.2 + 4 * 0.1) / 8
        assert result.value == pytest.approx(expected)

    def test_rd_window_when_right_neighbours_are_worse(self):
        """Anchor at the last MBR forces an RD (left-marginal) window."""
        query, data_mbrs, counts = _figure3_setup()
        result = normalized_distance(query, 8, data_mbrs, counts, 3)
        assert result.marginal_side == "left"
        assert result.window[1] == 3
        # window [2..3]: 5 points of mbr4 + 3 marginal points of mbr3
        expected = (5 * 0.4 + 3 * 0.3) / 8
        assert result.value == pytest.approx(expected)

    def test_min_over_ld_and_rd(self):
        """The cheaper of the two window families must win."""
        query = MBR([0.5, 0.8], [0.5, 0.9])
        data_mbrs = [
            MBR([0.5, 0.85], [0.5, 0.9]),  # D = 0.0  (left neighbour, close)
            MBR([0.5, 0.5], [0.5, 0.6]),   # anchor, D = 0.2
            MBR([0.5, 0.0], [0.5, 0.1]),   # right neighbour, D = 0.7
        ]
        counts = [5, 2, 5]
        result = normalized_distance(query, 6, data_mbrs, counts, 1)
        # RD window [0..1]: (4 * 0.0 + 2 * 0.2) / 6; LD would cost far more.
        assert result.marginal_side == "left"
        assert result.value == pytest.approx((4 * 0.0 + 2 * 0.2) / 6)

    def test_marginal_point_selection_side(self):
        """RD uses the *last* points of the marginal (adjacent to window)."""
        query = MBR([0.5, 0.8], [0.5, 0.9])
        data_mbrs = [
            MBR([0.5, 0.85], [0.5, 0.9]),
            MBR([0.5, 0.5], [0.5, 0.6]),
            MBR([0.5, 0.0], [0.5, 0.1]),
        ]
        counts = [5, 2, 5]
        result = normalized_distance(query, 6, data_mbrs, counts, 1)
        spans = result.involved_points(counts)
        # marginal is mbr0 contributing its last 4 points (offsets 1..4)
        assert spans == [(0, 1, 4), (1, 0, 1)]

    def test_precomputed_row_matches_internal(self):
        query, data_mbrs, counts = _figure3_setup()
        row = np.array([query.min_distance(m) for m in data_mbrs])
        with_row = normalized_distance(query, 12, data_mbrs, counts, 1, dmbr_row=row)
        without = normalized_distance(query, 12, data_mbrs, counts, 1)
        assert with_row == without


class TestFallback:
    def test_query_larger_than_sequence(self):
        """When the whole sequence is smaller than the query MBR, all MBRs
        participate fully and the mean is over the participating points."""
        query, data_mbrs, counts = _figure3_setup()
        total = sum(counts)
        result = normalized_distance(query, total + 10, data_mbrs, counts, 1)
        expected = (4 * 0.2 + 6 * 0.1 + 5 * 0.3 + 5 * 0.4) / total
        assert result.value == pytest.approx(expected)
        assert result.window == (0, 3)
        assert result.marginal_index is None

    def test_fallback_involves_everything(self):
        query, data_mbrs, counts = _figure3_setup()
        result = normalized_distance(query, 100, data_mbrs, counts, 1)
        spans = result.involved_points(counts)
        assert spans == [(0, 0, 3), (1, 0, 5), (2, 0, 4), (3, 0, 4)]

    def test_single_mbr_sequence(self):
        query = MBR([0.5], [0.6])
        result = normalized_distance(query, 10, [MBR([0.1], [0.2])], [4], 0)
        assert result.value == pytest.approx(0.3)
        assert result.window == (0, 0)


class TestLowerBoundStructure:
    def test_dnorm_at_least_row_minimum(self):
        """A weighted mean can never undercut the smallest Dmbr involved."""
        query, data_mbrs, counts = _figure3_setup()
        row = np.array([query.min_distance(m) for m in data_mbrs])
        for anchor in range(4):
            result = normalized_distance(query, 12, data_mbrs, counts, anchor)
            assert result.value >= row.min() - 1e-12

    def test_anchor_contribution_bound(self):
        """Dnorm(anchor) >= Dmbr[anchor] * min(count, q) / q."""
        query, data_mbrs, counts = _figure3_setup()
        row = np.array([query.min_distance(m) for m in data_mbrs])
        q = 12
        for anchor in range(4):
            result = normalized_distance(query, q, data_mbrs, counts, anchor)
            bound = row[anchor] * min(counts[anchor], q) / q
            assert result.value >= bound - 1e-12


class TestValidation:
    def test_bad_target_index(self):
        query, data_mbrs, counts = _figure3_setup()
        with pytest.raises(IndexError):
            normalized_distance(query, 5, data_mbrs, counts, 4)
        with pytest.raises(IndexError):
            normalized_distance(query, 5, data_mbrs, counts, -1)

    def test_counts_shape_mismatch(self):
        query, data_mbrs, _ = _figure3_setup()
        with pytest.raises(ValueError, match="one entry per data MBR"):
            normalized_distance(query, 5, data_mbrs, [1, 2], 0)

    def test_zero_count_rejected(self):
        query, data_mbrs, _ = _figure3_setup()
        with pytest.raises(ValueError, match="at least one point"):
            normalized_distance(query, 5, data_mbrs, [4, 0, 5, 5], 0)

    def test_zero_query_count_rejected(self):
        query, data_mbrs, counts = _figure3_setup()
        with pytest.raises(ValueError, match="query_count"):
            normalized_distance(query, 0, data_mbrs, counts, 0)

    def test_empty_data_sequence_rejected(self):
        query = MBR([0.1], [0.2])
        with pytest.raises(ValueError):
            normalized_distance(query, 5, [], [], 0)

    def test_bad_row_shape(self):
        query, data_mbrs, counts = _figure3_setup()
        with pytest.raises(ValueError, match="dmbr_row"):
            normalized_distance(
                query, 5, data_mbrs, counts, 0, dmbr_row=np.zeros(2)
            )
