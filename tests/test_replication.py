"""Replication: WAL log shipping, the follower cursor, the repair journal.

The edge cases the replication design promises to absorb, each pinned
here: a torn WAL tail serves only its valid prefix, duplicate batch
delivery converges (apply is a no-op), a cursor ahead of the leader is
*divergence* (typed, never silently absorbed), a cursor behind the
horizon falls back to a snapshot resync, a fault (or a kill -9) at the
``wal.ship.batch`` site fails one poll without corrupting either side,
and the coordinator's journaled repairs and bounded-staleness follower
reads survive restarts and leader death.
"""

import base64
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator, LocalBackend, RepairJournal
from repro.core.contracts import checking_contracts
from repro.core.database import SequenceDatabase
from repro.service import (
    DurabilityConfig,
    QueryEngine,
    RepairOverflow,
    ReplicaDiverged,
    WalFollower,
    WalRecord,
    WriteAheadLog,
    decode_frames,
)
from repro.service.errors import SnapshotRequired
from repro.service.faults import FaultInjected, FaultRule, fault_plan

SRC = str(Path(__file__).resolve().parent.parent / "src")
DIMENSION = 2


@pytest.fixture
def rng():
    return np.random.default_rng(9000)


def durable_engine(directory, *, database=...):
    if database is ...:
        database = SequenceDatabase(dimension=DIMENSION)
    return QueryEngine(
        database,
        workers=1,
        durability=DurabilityConfig(directory, fsync=False),
    )


def fill(engine, rng, count, prefix="seq"):
    for ordinal in range(count):
        engine.insert(
            rng.random((10, DIMENSION)), sequence_id=f"{prefix}-{ordinal}"
        )


class TestTornTail:
    def test_torn_tail_serves_only_the_valid_prefix(self, tmp_path):
        """A crash mid-append leaves a torn final frame; tailing must ship
        exactly the records whose CRCs verify, and the log stays live."""
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync=False)
        for ordinal in range(3):
            wal.append(
                WalRecord(
                    "insert", f"s{ordinal}", points=[[0.1 * ordinal, 0.2]]
                )
            )
        wal.close()
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size - 5)

        reopened = WriteAheadLog(path, fsync=False)
        try:
            assert len(reopened.recovered_records) == 2
            shipped = reopened.read_from(0)
            assert [record.seq for record in shipped] == [1, 2]
            assert [record.sequence_id for record in shipped] == ["s0", "s1"]
            assert reopened.last_seq == 2
            # The torn bytes are gone, not latent: the next append lands
            # cleanly and ships with the next tail read.
            reopened.append(WalRecord("insert", "s3", points=[[0.5, 0.5]]))
            assert [r.seq for r in reopened.read_from(2)] == [3]
        finally:
            reopened.close()


class TestDuplicateDelivery:
    def test_duplicate_batch_applies_as_a_noop(self, tmp_path, rng):
        """Re-shipping an already-applied batch (a retried response, a
        cursor persisted just behind the apply) must converge."""
        with durable_engine(tmp_path / "leader") as leader:
            fill(leader, rng, 4, prefix="dup")
            reply = leader.wal_tail(0)
            records = decode_frames(base64.b64decode(reply["frames"]))
            with QueryEngine(
                SequenceDatabase(dimension=DIMENSION), workers=1
            ) as follower:
                assert follower.apply_records(records) == 4
                assert follower.apply_records(records) == 0
                assert sorted(follower.sequence_ids()) == sorted(
                    leader.sequence_ids()
                )


class TestHandshakeRejections:
    def test_cursor_ahead_of_leader_is_divergence(self, tmp_path, rng):
        with durable_engine(tmp_path / "leader") as leader:
            fill(leader, rng, 2)
            ahead = leader.wal_tail(0)["last_seq"] + 5
            with pytest.raises(ReplicaDiverged):
                leader.wal_tail(ahead)

    def test_diverged_follower_flags_and_resyncs(self, tmp_path, rng):
        """A cursor file claiming history the leader never wrote raises
        (one-shot poll), then ``resync`` restores convergence."""
        cursor = tmp_path / "cursor.json"
        cursor.write_text(
            '{"applied_seq": 999, "leader_snapshot_version": 0}'
        )
        with durable_engine(tmp_path / "leader") as leader:
            fill(leader, rng, 3)
            with QueryEngine(
                SequenceDatabase(dimension=DIMENSION), workers=1
            ) as replica:
                follower = WalFollower(replica, leader, cursor_path=cursor)
                with pytest.raises(ReplicaDiverged):
                    follower.poll()
                assert follower.status()["diverged"] is True
                summary = follower.resync()
                assert follower.status()["diverged"] is False
                assert summary["resync"] is True
                assert sorted(replica.sequence_ids()) == sorted(
                    leader.sequence_ids()
                )

    def test_cursor_behind_horizon_triggers_snapshot_resync(
        self, tmp_path, rng
    ):
        """A checkpoint moves the horizon past a stale cursor: the tail is
        gone, the poll must fall back to a full restore and resume."""
        with durable_engine(tmp_path / "leader") as leader:
            fill(leader, rng, 3)
            leader.checkpoint()  # the records above leave the WAL
            fill(leader, rng, 2, prefix="post")
            with pytest.raises(SnapshotRequired):
                leader.wal_tail(0)
            with QueryEngine(
                SequenceDatabase(dimension=DIMENSION), workers=1
            ) as replica:
                follower = WalFollower(
                    replica, leader, cursor_path=tmp_path / "cursor.json"
                )
                summary = follower.poll()
                assert summary["resync"] is True
                assert sorted(replica.sequence_ids()) == sorted(
                    leader.sequence_ids()
                )
                # The resync cursor lands exactly at the export's version:
                # the next poll tails nothing and reports zero lag.
                summary = follower.poll()
                assert summary["count"] == 0
                assert summary["lag"] == 0


class TestShipFaults:
    def test_batch_fault_fails_one_poll_then_recovers(self, tmp_path, rng):
        with durable_engine(tmp_path / "leader") as leader:
            fill(leader, rng, 3)
            with QueryEngine(
                SequenceDatabase(dimension=DIMENSION), workers=1
            ) as replica:
                follower = WalFollower(
                    replica, leader, cursor_path=tmp_path / "cursor.json"
                )
                with fault_plan(
                    FaultRule("wal.ship.batch", "raise", times=1)
                ):
                    with pytest.raises(FaultInjected):
                        follower.poll()
                summary = follower.poll()
                assert summary["lag"] == 0
                assert sorted(replica.sequence_ids()) == sorted(
                    leader.sequence_ids()
                )

    def test_kill_at_ship_batch_loses_nothing(self, tmp_path, rng):
        """A real ``os._exit`` at ``wal.ship.batch``: shipping is a read,
        so a leader killed mid-tail recovers every acknowledged write and
        ships the identical batch afterwards."""
        data_dir = tmp_path / "leader"
        script = f"""
import numpy as np
from repro.core.database import SequenceDatabase
from repro.service import DurabilityConfig, QueryEngine

rng = np.random.default_rng(11)
engine = QueryEngine(
    SequenceDatabase(dimension=2),
    workers=1,
    durability=DurabilityConfig({str(data_dir)!r}),
)
for n in range(3):
    engine.insert(rng.random((10, 2)), sequence_id=f"ship-{{n}}")
print("ACK", flush=True)
engine.wal_tail(0)  # REPRO_FAULTS kills the process here
print("UNREACHABLE", flush=True)
"""
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env={
                "PYTHONPATH": SRC,
                "PATH": "/usr/bin:/bin",
                "REPRO_FAULTS": "wal.ship.batch=kill",
            },
        )
        assert completed.returncode == 137, completed.stderr
        assert "ACK" in completed.stdout
        assert "UNREACHABLE" not in completed.stdout
        with checking_contracts():
            with durable_engine(data_dir, database=None) as recovered:
                assert sorted(recovered.sequence_ids()) == [
                    "ship-0",
                    "ship-1",
                    "ship-2",
                ]
                reply = recovered.wal_tail(0)
                records = decode_frames(base64.b64decode(reply["frames"]))
                assert [r.sequence_id for r in records] == [
                    "ship-0",
                    "ship-1",
                    "ship-2",
                ]


class TestCursorResume:
    def test_restarted_follower_tails_only_the_delta(self, tmp_path, rng):
        replica_dir = tmp_path / "replica"
        cursor = tmp_path / "cursor.json"
        with durable_engine(tmp_path / "leader") as leader:
            fill(leader, rng, 3)
            with durable_engine(replica_dir) as replica:
                follower = WalFollower(replica, leader, cursor_path=cursor)
                assert follower.poll()["applied"] == 3
            fill(leader, rng, 2, prefix="late")
            # A new process: engine recovered from its own durability,
            # cursor re-read from disk — only the two new records ship.
            with durable_engine(replica_dir, database=None) as replica:
                follower = WalFollower(replica, leader, cursor_path=cursor)
                summary = follower.poll()
                assert summary["applied"] == 2
                assert summary["count"] == 2
                assert follower.status()["resyncs"] == 0
                assert sorted(replica.sequence_ids()) == sorted(
                    leader.sequence_ids()
                )


class TestRepairJournal:
    def test_pending_entries_survive_reopen(self, tmp_path):
        journal = RepairJournal(3, directory=tmp_path)
        assert journal.queue(1, "insert", "a", points=[[0.1, 0.2]])
        assert journal.queue(1, "remove", "b")
        journal.close()

        reopened = RepairJournal(3, directory=tmp_path)
        assert reopened.pending() == {1: 2}
        entry = reopened.peek(1)
        assert (entry.op, entry.sequence_id) == ("insert", "a")
        assert entry.points == [[0.1, 0.2]]
        reopened.ack(1, entry)
        reopened.close()

        third = RepairJournal(3, directory=tmp_path)
        assert third.pending() == {1: 1}
        assert third.peek(1).op == "remove"
        third.close()

    def test_overflow_flags_resync_and_survives_restart(self, tmp_path):
        journal = RepairJournal(2, directory=tmp_path, max_ops=2)
        assert journal.queue(0, "insert", "a", points=[[0.1, 0.2]])
        assert journal.queue(0, "insert", "b", points=[[0.3, 0.4]])
        with pytest.raises(RepairOverflow):
            journal.queue(0, "insert", "c", points=[[0.5, 0.6]])
        assert journal.needs_resync(0)
        assert journal.pending() == {}
        # Further writes are absorbed: the resync copies the final state.
        assert journal.queue(0, "insert", "d", points=[[0.7, 0.8]]) is False
        journal.close()

        reopened = RepairJournal(2, directory=tmp_path, max_ops=2)
        assert reopened.resync_pending() == [0]
        assert reopened.pending() == {}
        reopened.mark_resynced(0)
        assert not reopened.needs_resync(0)
        assert reopened.queue(0, "remove", "e")
        reopened.close()

    def test_in_memory_mode_queues_and_acks(self):
        journal = RepairJournal(2)
        assert journal.queue(1, "insert", "x", points=[[0.1, 0.2]])
        assert journal.pending() == {1: 1}
        journal.ack(1, journal.peek(1))
        assert journal.pending() == {}
        journal.close()


class TestCoordinatorReplication:
    def test_journaled_repair_survives_coordinator_restart(
        self, tmp_path, rng
    ):
        engines = [
            QueryEngine(SequenceDatabase(dimension=DIMENSION), workers=1)
            for _ in range(2)
        ]
        backends = [
            LocalBackend(engine, name=f"b{index}")
            for index, engine in enumerate(engines)
        ]
        journal_dir = tmp_path / "journal"
        try:
            first = ClusterCoordinator(
                list(backends),
                replication=2,
                write_quorum=1,
                journal_dir=journal_dir,
                probe_interval=3600.0,
                hedge=None,
            )
            with fault_plan(
                FaultRule("cluster.backend.1.request", "raise", times=None)
            ):
                first.insert(rng.random((10, DIMENSION)), sequence_id="x")
            assert sum(first.repair_pending().values()) == 1
            first.close()  # the crash stand-in: only the journal persists

            second = ClusterCoordinator(
                list(backends),
                replication=2,
                write_quorum=1,
                journal_dir=journal_dir,
                probe_interval=3600.0,
                hedge=None,
            )
            try:
                assert sum(second.repair_pending().values()) == 1
                second.probe()
                assert sum(second.repair_pending().values()) == 0
                assert "x" in engines[1].sequence_ids()
            finally:
                second.close()
        finally:
            for engine in engines:
                engine.close()

    def test_follower_serves_bounded_staleness_reads(self, tmp_path, rng):
        with durable_engine(tmp_path / "b0") as leader_engine:
            with QueryEngine(
                SequenceDatabase(dimension=DIMENSION), workers=1
            ) as other_engine, QueryEngine(
                SequenceDatabase(dimension=DIMENSION), workers=1
            ) as replica_engine:
                follower = WalFollower(
                    replica_engine,
                    leader_engine,
                    cursor_path=tmp_path / "cursor.json",
                )
                backends = [
                    LocalBackend(leader_engine, name="b0"),
                    LocalBackend(other_engine, name="b1"),
                ]
                follower_backend = LocalBackend(
                    replica_engine, name="f0", follower=follower
                )
                with ClusterCoordinator(
                    backends,
                    replication=1,
                    followers=[(follower_backend, 0)],
                    max_lag_records=0,
                    probe_interval=3600.0,
                    hedge=None,
                ) as coordinator:
                    fill(coordinator, rng, 6, prefix="bs")
                    while follower.poll()["lag"] > 0:
                        pass
                    coordinator.probe()  # records the follower's lag (0)
                    query = rng.random((6, DIMENSION))
                    baseline = coordinator.search(query, 2.0)
                    assert baseline.complete

                    # Backend 0 dies; its shards have no other replica
                    # (replication=1) — the caught-up follower is the
                    # only read path left, and it must keep the answer
                    # complete and identical.
                    with fault_plan(
                        FaultRule(
                            "cluster.backend.0.request", "raise", times=None
                        )
                    ):
                        served = coordinator.search(query, 2.0)
                    assert served.complete
                    assert sorted(served.answers) == sorted(baseline.answers)
                    assert coordinator.stats()["follower_reads"] >= 1

    def test_stale_follower_is_not_read_eligible(self, tmp_path, rng):
        """A follower whose probed lag exceeds ``max_lag_records`` must
        not serve reads: with its leader dead the search degrades."""
        with durable_engine(tmp_path / "b0") as leader_engine:
            with QueryEngine(
                SequenceDatabase(dimension=DIMENSION), workers=1
            ) as other_engine, QueryEngine(
                SequenceDatabase(dimension=DIMENSION), workers=1
            ) as replica_engine:
                follower = WalFollower(
                    replica_engine,
                    leader_engine,
                    cursor_path=tmp_path / "cursor.json",
                    batch_limit=2,  # one poll leaves the rest lagging
                )
                backends = [
                    LocalBackend(leader_engine, name="b0"),
                    LocalBackend(other_engine, name="b1"),
                ]
                follower_backend = LocalBackend(
                    replica_engine, name="f0", follower=follower
                )
                with ClusterCoordinator(
                    backends,
                    replication=1,
                    followers=[(follower_backend, 0)],
                    max_lag_records=0,
                    probe_interval=3600.0,
                    hedge=None,
                ) as coordinator:
                    fill(coordinator, rng, 12, prefix="stale")
                    follower.poll()  # applies 2: the rest stay lagging
                    coordinator.probe()
                    lag = coordinator.stats()["followers"][0]["lag"]
                    query = rng.random((6, DIMENSION))
                    with fault_plan(
                        FaultRule(
                            "cluster.backend.0.request", "raise", times=None
                        )
                    ):
                        served = coordinator.search(query, 2.0)
                    if lag > 0:
                        assert not served.complete
                        assert coordinator.stats()["follower_reads"] == 0
                    else:
                        # Every write landed on backend 1: nothing lagged,
                        # so the follower legitimately qualifies.
                        assert served.complete
