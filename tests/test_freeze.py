"""The frozen-snapshot sanitizer and its integration tests.

Unit tests pin the sanitizer's contract — off by default, env-var and
:func:`checking_freeze` toggling, shallow/deep freezing, read-only
proxies, :func:`verify_frozen` boundary walks — and the integration
tests run the real engine and cluster with checks armed, asserting that
no :class:`FrozenWriteViolation` fires and that the regression shapes
(the once-writable partition matrices, in-place patching of a shared
cache entry) now raise instead of corrupting concurrent readers.
"""

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator, LocalBackend, ShardRouter
from repro.cluster.merge import merge_knn, merge_search_payloads
from repro.core.database import SequenceDatabase
from repro.core.partitioning import partition_sequence
from repro.core.search import SimilaritySearch
from repro.core.sequence import MultidimensionalSequence
from repro.service import QueryEngine
from repro.service.cache import CacheEntry, EpsilonCache
from repro.util.freeze import (
    FREEZE_ENV_VAR,
    FrozenDict,
    FrozenList,
    FrozenWriteViolation,
    checking_freeze,
    deep_freeze,
    freeze,
    freeze_checks_enabled,
    frozen_view,
    reset_freeze_state,
    verify_frozen,
)

DIMENSION = 2


@pytest.fixture(autouse=True)
def clean_freeze_state(monkeypatch):
    """Normalize ``REPRO_FREEZE_CHECKS`` away: these tests pin the
    *default-off* contract and arm checks explicitly via
    :func:`checking_freeze`, so they must behave identically under CI's
    immutability-gate job (which exports the variable suite-wide)."""
    monkeypatch.delenv(FREEZE_ENV_VAR, raising=False)
    reset_freeze_state()
    yield
    reset_freeze_state()


# ----------------------------------------------------------------------
# Toggling
# ----------------------------------------------------------------------
class TestToggle:
    def test_disabled_by_default(self):
        assert not freeze_checks_enabled()
        # verify_frozen is a no-op passthrough when disabled, even on a
        # blatantly writable structure.
        writable = {"arr": np.zeros(3)}
        assert verify_frozen(writable, role="t", site="t") is writable

    def test_checking_freeze_scope_nests(self):
        with checking_freeze():
            assert freeze_checks_enabled()
            with checking_freeze():
                assert freeze_checks_enabled()
            assert freeze_checks_enabled()
        assert not freeze_checks_enabled()

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv(FREEZE_ENV_VAR, "1")
        reset_freeze_state()
        assert freeze_checks_enabled()
        monkeypatch.setenv(FREEZE_ENV_VAR, "0")
        reset_freeze_state()
        assert not freeze_checks_enabled()


# ----------------------------------------------------------------------
# freeze / deep_freeze / frozen_view
# ----------------------------------------------------------------------
class TestFreeze:
    def test_array_frozen_in_place(self):
        arr = np.arange(4.0)
        assert freeze(arr) is arr
        assert not arr.flags.writeable
        with pytest.raises(ValueError):
            arr[0] = 9.0

    def test_list_proxy_reads_like_a_list(self):
        frozen = freeze([1, 2, 3], role="t", site="t")
        assert isinstance(frozen, list)
        assert frozen == [1, 2, 3]
        assert frozen[1] == 2
        assert list(reversed(frozen)) == [3, 2, 1]

    def test_list_proxy_mutators_raise(self):
        frozen = freeze([1, 2, 3], role="cache.entry", site="here")
        for mutate in (
            lambda: frozen.append(4),
            lambda: frozen.extend([4]),
            lambda: frozen.insert(0, 0),
            lambda: frozen.remove(1),
            lambda: frozen.pop(),
            lambda: frozen.clear(),
            lambda: frozen.sort(),
            lambda: frozen.reverse(),
            lambda: frozen.__setitem__(0, 9),
            lambda: frozen.__delitem__(0),
        ):
            with pytest.raises(FrozenWriteViolation) as caught:
                mutate()
            assert caught.value.role == "cache.entry"
            assert caught.value.site == "here"

    def test_dict_proxy_mutators_raise(self):
        frozen = freeze({"a": 1}, role="t", site="t")
        assert isinstance(frozen, dict)
        assert frozen["a"] == 1
        assert frozen.get("missing") is None
        for mutate in (
            lambda: frozen.__setitem__("b", 2),
            lambda: frozen.__delitem__("a"),
            lambda: frozen.pop("a"),
            lambda: frozen.popitem(),
            lambda: frozen.clear(),
            lambda: frozen.update({"b": 2}),
            lambda: frozen.setdefault("b", 2),
        ):
            with pytest.raises(FrozenWriteViolation):
                mutate()

    def test_set_becomes_frozenset(self):
        assert freeze({1, 2}) == frozenset({1, 2})
        assert isinstance(freeze({1, 2}), frozenset)

    def test_deep_freeze_nested_structure(self):
        structure = {
            "arrays": [np.zeros(2), np.ones(2)],
            "nested": {"ids": [1, 2], "tag": "x"},
            "pair": (np.arange(3.0), {"inner": [np.zeros(1)]}),
        }
        frozen = deep_freeze(structure, role="t", site="t")
        assert isinstance(frozen, FrozenDict)
        assert isinstance(frozen["arrays"], FrozenList)
        assert not frozen["arrays"][0].flags.writeable
        assert not frozen["pair"][0].flags.writeable
        assert not frozen["pair"][1]["inner"][0].flags.writeable
        with pytest.raises(FrozenWriteViolation):
            frozen["nested"]["ids"].append(3)
        # The caller's original containers stay mutable.
        structure["nested"]["extra"] = True

    def test_deep_freeze_handles_cycles(self):
        loop = {"name": "outer"}
        loop["self"] = loop
        frozen = deep_freeze(loop)
        assert frozen["name"] == "outer"

    def test_deep_freeze_object_graph_freezes_arrays(self):
        sequence = MultidimensionalSequence(
            np.random.default_rng(0).random((12, DIMENSION))
        )
        partition = partition_sequence(sequence)
        deep_freeze(partition, role="t", site="t")
        assert not partition.counts.flags.writeable

    def test_frozen_view_leaves_base_writable(self):
        base = np.arange(4.0)
        view = frozen_view(base)
        assert not view.flags.writeable
        assert base.flags.writeable
        base[0] = 7.0  # owner keeps its handle
        assert view[0] == 7.0
        with pytest.raises(ValueError):
            view[1] = 0.0


# ----------------------------------------------------------------------
# verify_frozen boundary walks
# ----------------------------------------------------------------------
class TestVerifyFrozen:
    def test_accepts_frozen_structure(self):
        frozen = deep_freeze({"arr": np.zeros(3), "ids": [1]})
        with checking_freeze():
            assert verify_frozen(frozen, role="t", site="t") is frozen

    def test_seeded_writable_array_is_named(self):
        structure = deep_freeze({"ok": np.zeros(2), "leak": {"deep": [1]}})
        # Seed the violation on a fresh writable array smuggled in
        # post-freeze (a dict subclass write bypassing the proxy, as a C
        # extension could).
        dict.__setitem__(structure, "bad", np.zeros(2))
        with checking_freeze():
            with pytest.raises(FrozenWriteViolation) as caught:
                verify_frozen(
                    structure, role="engine.snapshot", site="test.seed"
                )
        assert "['bad']" in str(caught.value)
        assert caught.value.role == "engine.snapshot"
        assert caught.value.site == "test.seed"

    def test_walks_slots_objects(self):
        sequence = MultidimensionalSequence(np.zeros((4, DIMENSION)))
        partition = partition_sequence(sequence)
        with checking_freeze():
            # PartitionedSequence freezes its matrices at construction;
            # the walk covers __slots__ and must find nothing writable.
            verify_frozen(partition, role="t", site="t")


# ----------------------------------------------------------------------
# Regression: the partition matrices are frozen at construction
# ----------------------------------------------------------------------
class TestPartitionImmutability:
    def test_matrices_and_counts_reject_writes(self, rng):
        """The fixed aliasing bug: ``counts`` promised "read-only" while
        the backing array (shared across snapshots and cache entries)
        accepted in-place writes that would corrupt Dmbr for every
        concurrent reader.  Now the write itself raises — with checks
        *off*, because the freeze is unconditional."""
        sequence = MultidimensionalSequence(rng.random((40, DIMENSION)))
        partition = partition_sequence(sequence)
        with pytest.raises(ValueError):
            partition.counts[0] += 1
        with pytest.raises(ValueError):
            partition._low_matrix[0, 0] = -1.0
        with pytest.raises(ValueError):
            partition._high_matrix[-1, -1] = 2.0

    def test_distance_row_still_works(self, rng):
        sequence = MultidimensionalSequence(rng.random((40, DIMENSION)))
        partition = partition_sequence(sequence)
        query = partition_sequence(
            MultidimensionalSequence(rng.random((10, DIMENSION)))
        )
        for segment in query:
            row = partition.mbr_distance_row(segment.mbr)
            assert row.shape == (len(partition),)
            assert np.all(row >= 0.0)


# ----------------------------------------------------------------------
# Cache entries are frozen at publication under checks
# ----------------------------------------------------------------------
def small_entry(rng, epsilon=0.5, version=0):
    query = MultidimensionalSequence(rng.random((10, DIMENSION)))
    return CacheEntry(
        query_partition=partition_sequence(query),
        epsilon=epsilon,
        find_intervals=False,
        candidates={"s1", "s2"},
        answers={"s1"},
        intervals={},
        version=version,
        dimension=DIMENSION,
    )


class TestCachePublication:
    def test_stored_entry_sets_are_frozen_under_checks(self, rng):
        cache = EpsilonCache(capacity=4)
        entry = small_entry(rng)
        with checking_freeze():
            assert cache.store("q", entry, version=0)
            shared = cache.lookup("q", 0.5, version=0)
            assert shared is entry  # ownership transferred, not copied
            # The pre-fix bug shape: patching the shared entry in place.
            with pytest.raises(AttributeError):
                shared.candidates.discard("s1")  # frozenset has no discard
            assert isinstance(shared.intervals, FrozenDict)

    def test_store_disabled_path_untouched(self, rng):
        cache = EpsilonCache(capacity=4)
        entry = small_entry(rng)
        assert cache.store("q", entry, version=0)
        assert isinstance(entry.candidates, set)
        entry.candidates.discard("s1")  # plain set: still mutable

    def test_apply_write_publishes_frozen_patches(self, rng):
        database = SequenceDatabase(DIMENSION)
        database.add(rng.random((20, DIMENSION)), sequence_id="s1")
        search = SimilaritySearch(database)
        cache = EpsilonCache(capacity=4)
        with checking_freeze():
            cache.store("q", small_entry(rng, version=0), version=0)
            cache.apply_write("s1", search, new_version=1)
            patched = cache.lookup("q", 0.5, version=1)
            assert patched is not None
            assert patched.version == 1
            assert isinstance(patched.intervals, FrozenDict)
            with pytest.raises(AttributeError):
                patched.answers.discard("s1")


# ----------------------------------------------------------------------
# Merge inputs are frozen under checks
# ----------------------------------------------------------------------
class TestMergeFreezing:
    def test_merge_search_payloads_inputs_frozen(self):
        payloads = {
            0: {"answers": ["a"], "candidates": ["a", "b"], "stats": {}},
            1: {"answers": ["b"], "candidates": ["b"], "stats": {}},
        }
        order = {"a": 0, "b": 1}
        with checking_freeze():
            merged = merge_search_payloads(
                payloads, order=lambda sid: order[str(sid)]
            )
        assert merged.answers == ["a", "b"]
        assert merged.candidates == ["a", "b"]
        # The caller's own payload dicts are never wrapped or mutated.
        payloads[0]["answers"].append("c")

    def test_merge_knn_inputs_frozen(self):
        lists = [[(0.3, "a"), (0.1, "b")], [(0.2, "c"), (0.1, "b")]]
        with checking_freeze():
            top = merge_knn(lists, 2, order=str)
        assert top == [(0.1, "b"), (0.2, "c")]


# ----------------------------------------------------------------------
# Engine and cluster parity with checks armed
# ----------------------------------------------------------------------
class TestIntegrationUnderChecks:
    def test_engine_write_search_checkpoint_cycle(self, rng, tmp_path):
        from repro.service.wal import DurabilityConfig

        database = SequenceDatabase(DIMENSION)
        for i in range(6):
            database.add(
                rng.random((int(rng.integers(12, 30)), DIMENSION)),
                sequence_id=f"seed-{i}",
            )
        queries = [rng.random((8, DIMENSION)) for _ in range(3)]
        with checking_freeze():
            engine = QueryEngine(
                database,
                workers=2,
                cache_size=8,
                durability=DurabilityConfig(
                    directory=tmp_path / "wal", fsync=False
                ),
            )
            try:
                for i in range(4):
                    engine.insert(
                        rng.random((10, DIMENSION)), sequence_id=f"new-{i}"
                    )
                for query in queries:
                    first = engine.search(query, 0.5)
                    again = engine.search(query, 0.5)  # cache hit path
                    assert set(first.answers) == set(again.answers)
                engine.checkpoint()
            finally:
                engine.close()

        # Parity with an unchecked engine over the same corpus and rng-
        # independent queries: freezing must never change an answer.
        reference = SimilaritySearch(database)
        for query in queries:
            expected = reference.search(query, 0.5)
            with checking_freeze():
                engine = QueryEngine(database, workers=2, cache_size=8)
                try:
                    got = engine.search(query, 0.5)
                finally:
                    engine.close()
            assert set(got.answers) == set(expected.answers)

    def test_cluster_scatter_merge_under_checks(self, rng):
        corpus = [
            (f"seq-{i}", rng.random((int(rng.integers(12, 24)), DIMENSION)))
            for i in range(8)
        ]
        router = ShardRouter(num_backends=2, num_shards=4, replication=2)
        databases = [SequenceDatabase(DIMENSION) for _ in range(2)]
        for sequence_id, points in corpus:
            for backend in router.placement(sequence_id).replicas:
                databases[backend].add(points, sequence_id=sequence_id)
        union = SequenceDatabase(DIMENSION)
        for sequence_id, points in corpus:
            union.add(points, sequence_id=sequence_id)
        reference = SimilaritySearch(union)
        queries = [rng.random((8, DIMENSION)) for _ in range(3)]
        with checking_freeze():
            engines = [
                QueryEngine(database, workers=2, cache_size=8)
                for database in databases
            ]
            coordinator = ClusterCoordinator(
                [
                    LocalBackend(engine, name=f"local-{i}")
                    for i, engine in enumerate(engines)
                ],
                num_shards=4,
                replication=2,
            )
            coordinator.seed_order([sid for sid, _ in corpus])
            try:
                for query in queries:
                    merged = coordinator.search(query, 0.5)
                    expected = reference.search(query, 0.5)
                    assert set(merged.answers) == set(expected.answers)
                    knn = coordinator.knn(query, 3)
                    assert len(knn.neighbors) <= 3
            finally:
                coordinator.close()
                for engine in engines:
                    engine.close()
