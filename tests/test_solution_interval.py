"""Unit tests for the IntervalSet representation of solution intervals."""

import pytest

from repro.core.solution_interval import IntervalSet


class TestConstruction:
    def test_empty(self):
        si = IntervalSet()
        assert len(si) == 0
        assert not si
        assert list(si) == []

    def test_merges_overlaps(self):
        si = IntervalSet([(0, 4), (2, 6)])
        assert si.intervals == [(0, 6)]

    def test_merges_adjacent(self):
        si = IntervalSet([(0, 3), (3, 5)])
        assert si.intervals == [(0, 5)]

    def test_keeps_disjoint(self):
        si = IntervalSet([(5, 7), (0, 2)])
        assert si.intervals == [(0, 2), (5, 7)]

    def test_drops_empty_intervals(self):
        si = IntervalSet([(3, 3), (5, 4), (1, 2)])
        assert si.intervals == [(1, 2)]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            IntervalSet([(-1, 3)])

    def test_from_points(self):
        si = IntervalSet.from_points([5, 1, 2, 3, 9])
        assert si.intervals == [(1, 4), (5, 6), (9, 10)]

    def test_full(self):
        assert IntervalSet.full(4).intervals == [(0, 4)]
        assert IntervalSet.full(0).intervals == []
        with pytest.raises(ValueError):
            IntervalSet.full(-1)


class TestQueries:
    def test_len_counts_points(self):
        si = IntervalSet([(0, 3), (10, 12)])
        assert len(si) == 5

    def test_contains(self):
        si = IntervalSet([(2, 5), (8, 9)])
        assert 2 in si and 4 in si and 8 in si
        assert 5 not in si and 7 not in si and 0 not in si

    def test_iteration_sorted(self):
        si = IntervalSet([(8, 10), (1, 3)])
        assert list(si) == [1, 2, 8, 9]

    def test_equality_and_hash(self):
        a = IntervalSet([(0, 2), (2, 4)])
        b = IntervalSet([(0, 4)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != IntervalSet([(0, 5)])
        assert a != "x"

    def test_repr(self):
        assert "[0, 2)" in repr(IntervalSet([(0, 2)]))


class TestAlgebra:
    def test_union(self):
        a = IntervalSet([(0, 3)])
        b = IntervalSet([(2, 6), (10, 11)])
        assert (a | b).intervals == [(0, 6), (10, 11)]

    def test_add(self):
        si = IntervalSet([(0, 2)]).add(5, 8)
        assert si.intervals == [(0, 2), (5, 8)]

    def test_intersection(self):
        a = IntervalSet([(0, 5), (8, 12)])
        b = IntervalSet([(3, 9), (11, 20)])
        assert (a & b).intervals == [(3, 5), (8, 9), (11, 12)]

    def test_intersection_empty(self):
        a = IntervalSet([(0, 2)])
        b = IntervalSet([(5, 6)])
        assert not (a & b)
        assert a.intersection_size(b) == 0

    def test_intersection_size(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(5, 15)])
        assert a.intersection_size(b) == 5

    def test_difference(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(2, 4), (6, 7)])
        assert (a - b).intervals == [(0, 2), (4, 6), (7, 10)]

    def test_difference_total(self):
        a = IntervalSet([(3, 6)])
        b = IntervalSet([(0, 10)])
        assert not (a - b)

    def test_difference_no_overlap(self):
        a = IntervalSet([(0, 3)])
        b = IntervalSet([(5, 8)])
        assert (a - b) == a

    def test_issubset(self):
        assert IntervalSet([(2, 4)]).issubset(IntervalSet([(0, 10)]))
        assert not IntervalSet([(2, 12)]).issubset(IntervalSet([(0, 10)]))

    def test_coverage(self):
        si = IntervalSet([(0, 25)])
        assert si.coverage(100) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            si.coverage(0)

    def test_set_semantics_against_python_sets(self):
        """Cross-check all algebra against plain integer sets."""
        a = IntervalSet([(0, 7), (10, 14), (20, 21)])
        b = IntervalSet([(5, 12), (13, 25)])
        sa, sb = set(a), set(b)
        assert set(a | b) == sa | sb
        assert set(a & b) == sa & sb
        assert set(a - b) == sa - sb
        assert set(b - a) == sb - sa
