"""Unit tests for the multidimensional sequence model (Definition 1)."""

import numpy as np
import pytest

from repro.core.sequence import MultidimensionalSequence, as_sequence


class TestConstruction:
    def test_basic_shape(self):
        seq = MultidimensionalSequence([[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]])
        assert len(seq) == 3
        assert seq.dimension == 2

    def test_one_dimensional_promotion(self):
        """A flat array is the paper's time-series special case (n = 1)."""
        seq = MultidimensionalSequence([0.1, 0.5, 0.9])
        assert seq.dimension == 1
        assert seq.points.shape == (3, 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one point"):
            MultidimensionalSequence(np.empty((0, 3)))

    def test_rejects_zero_dimension(self):
        with pytest.raises(ValueError, match="dimension >= 1"):
            MultidimensionalSequence(np.empty((3, 0)))

    def test_rejects_3d_array(self):
        with pytest.raises(ValueError, match="length, dimension"):
            MultidimensionalSequence(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            MultidimensionalSequence([[0.1, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            MultidimensionalSequence([[np.inf, 0.0]], validate_unit_cube=False)

    def test_rejects_outside_unit_cube(self):
        with pytest.raises(ValueError, match="unit hyper-cube"):
            MultidimensionalSequence([[1.5, 0.0]])
        with pytest.raises(ValueError, match="unit hyper-cube"):
            MultidimensionalSequence([[-0.1, 0.0]])

    def test_unit_cube_validation_can_be_disabled(self):
        seq = MultidimensionalSequence([[5.0, -2.0]], validate_unit_cube=False)
        assert seq.points[0, 0] == 5.0

    def test_points_are_read_only(self):
        seq = MultidimensionalSequence([[0.1, 0.2]])
        with pytest.raises(ValueError):
            seq.points[0, 0] = 0.9

    def test_caller_array_not_frozen(self):
        source = np.array([[0.1, 0.2]])
        MultidimensionalSequence(source)
        source[0, 0] = 0.7  # must not raise: the sequence copied its input
        assert source[0, 0] == 0.7

    def test_sequence_id_carried(self):
        seq = MultidimensionalSequence([[0.1]], sequence_id="clip-7")
        assert seq.sequence_id == "clip-7"
        assert "clip-7" in repr(seq)


class TestTimeSeriesEmbedding:
    def test_window_one_is_column_vector(self):
        seq = MultidimensionalSequence.from_time_series([0.0, 0.5, 1.0])
        assert seq.dimension == 1
        assert len(seq) == 3

    def test_sliding_window_embedding(self):
        """FRM'94 embedding: element i holds values[i .. i+w-1]."""
        seq = MultidimensionalSequence.from_time_series(
            [0.0, 0.1, 0.2, 0.3], window=2
        )
        assert seq.dimension == 2
        assert len(seq) == 3
        np.testing.assert_allclose(seq.points[0], [0.0, 0.1])
        np.testing.assert_allclose(seq.points[2], [0.2, 0.3])

    def test_window_equal_to_length(self):
        seq = MultidimensionalSequence.from_time_series([0.2, 0.4], window=2)
        assert len(seq) == 1
        np.testing.assert_allclose(seq.points[0], [0.2, 0.4])

    def test_window_longer_than_series_rejected(self):
        with pytest.raises(ValueError, match="shorter than window"):
            MultidimensionalSequence.from_time_series([0.1], window=2)

    def test_window_zero_rejected(self):
        with pytest.raises(ValueError, match="window must be >= 1"):
            MultidimensionalSequence.from_time_series([0.1, 0.2], window=0)


class TestNormalization:
    def test_normalized_spans_unit_interval(self):
        seq = MultidimensionalSequence(
            [[10.0, -5.0], [20.0, 5.0]], validate_unit_cube=False
        )
        norm = seq.normalized()
        np.testing.assert_allclose(norm.points[0], [0.0, 0.0])
        np.testing.assert_allclose(norm.points[1], [1.0, 1.0])

    def test_constant_dimension_maps_to_half(self):
        seq = MultidimensionalSequence(
            [[7.0, 1.0], [7.0, 3.0]], validate_unit_cube=False
        )
        norm = seq.normalized()
        np.testing.assert_allclose(norm.points[:, 0], [0.5, 0.5])

    def test_normalized_keeps_id(self):
        seq = MultidimensionalSequence(
            [[2.0], [4.0]], sequence_id="s", validate_unit_cube=False
        )
        assert seq.normalized().sequence_id == "s"


class TestIndexing:
    def test_zero_based_getitem(self):
        seq = MultidimensionalSequence([[0.1], [0.2], [0.3]])
        assert seq[0][0] == pytest.approx(0.1)
        assert seq[-1][0] == pytest.approx(0.3)

    def test_slice_returns_sequence(self):
        seq = MultidimensionalSequence([[0.1], [0.2], [0.3]])
        sub = seq[1:3]
        assert isinstance(sub, MultidimensionalSequence)
        assert len(sub) == 2

    def test_empty_slice_rejected(self):
        seq = MultidimensionalSequence([[0.1], [0.2]])
        with pytest.raises(IndexError, match="empty slice"):
            seq[2:2]

    def test_paper_entry_is_one_based(self):
        seq = MultidimensionalSequence([[0.1], [0.2], [0.3]])
        assert seq.entry(1)[0] == pytest.approx(0.1)
        assert seq.entry(3)[0] == pytest.approx(0.3)

    def test_entry_bounds(self):
        seq = MultidimensionalSequence([[0.1]])
        with pytest.raises(IndexError):
            seq.entry(0)
        with pytest.raises(IndexError):
            seq.entry(2)

    def test_paper_subsequence_inclusive(self):
        seq = MultidimensionalSequence([[0.1], [0.2], [0.3], [0.4]])
        sub = seq.subsequence(2, 3)
        assert len(sub) == 2
        assert sub.entry(1)[0] == pytest.approx(0.2)
        assert sub.entry(2)[0] == pytest.approx(0.3)

    def test_subsequence_full_range(self):
        seq = MultidimensionalSequence([[0.1], [0.2]])
        assert len(seq.subsequence(1, 2)) == 2

    def test_subsequence_rejects_reversed(self):
        seq = MultidimensionalSequence([[0.1], [0.2]])
        with pytest.raises(IndexError):
            seq.subsequence(2, 1)


class TestOperations:
    def test_windows_enumerates_alignments(self):
        seq = MultidimensionalSequence([[0.1], [0.2], [0.3], [0.4]])
        wins = list(seq.windows(2))
        assert len(wins) == 3
        np.testing.assert_allclose(wins[1].points.ravel(), [0.2, 0.3])

    def test_windows_width_equal_length(self):
        seq = MultidimensionalSequence([[0.1], [0.2]])
        wins = list(seq.windows(2))
        assert len(wins) == 1

    def test_windows_too_wide_yields_nothing(self):
        seq = MultidimensionalSequence([[0.1]])
        assert list(seq.windows(2)) == []

    def test_concatenate(self):
        a = MultidimensionalSequence([[0.1], [0.2]])
        b = MultidimensionalSequence([[0.3]])
        joined = a.concatenate(b)
        assert len(joined) == 3
        np.testing.assert_allclose(joined.points.ravel(), [0.1, 0.2, 0.3])

    def test_concatenate_dimension_mismatch(self):
        a = MultidimensionalSequence([[0.1]])
        b = MultidimensionalSequence([[0.1, 0.2]])
        with pytest.raises(ValueError, match="concatenate"):
            a.concatenate(b)

    def test_equality_and_hash(self):
        a = MultidimensionalSequence([[0.1], [0.2]])
        b = MultidimensionalSequence([[0.1], [0.2]])
        c = MultidimensionalSequence([[0.1], [0.3]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a sequence"

    def test_iteration_yields_points(self):
        seq = MultidimensionalSequence([[0.1, 0.2], [0.3, 0.4]])
        rows = list(seq)
        assert len(rows) == 2
        np.testing.assert_allclose(rows[1], [0.3, 0.4])


class TestAsSequence:
    def test_wraps_array(self):
        seq = as_sequence([[0.5, 0.5]])
        assert isinstance(seq, MultidimensionalSequence)

    def test_passes_through_instances(self):
        original = MultidimensionalSequence([[0.5]], sequence_id="x")
        assert as_sequence(original) is original

    def test_sets_id_on_new_instances(self):
        seq = as_sequence([[0.5]], sequence_id="y")
        assert seq.sequence_id == "y"
