"""Unit and property tests for the ε-aware result cache.

The load-bearing claim: serving from the cache — whether an exact-ε hit
or a tighter-ε refine — NEVER changes a result set relative to an
uncached engine.  The hypothesis test at the bottom drives that claim
with the same corpus generator as the end-to-end search property tests.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings

from repro.core.database import SequenceDatabase
from repro.core.search import SimilaritySearch
from repro.service import QueryEngine
from repro.service.cache import CacheEntry, EpsilonCache, query_fingerprint
from tests.test_properties_search import corpora


def make_database(rng, count=6):
    database = SequenceDatabase(dimension=2)
    for ordinal in range(count):
        database.add(rng.random((24, 2)), sequence_id=f"s{ordinal}")
    return database


def entry_from_search(search, query, epsilon, version=0):
    result = search.search(query, epsilon)
    return result, CacheEntry(
        query_partition=result.query_partition,
        epsilon=epsilon,
        find_intervals=True,
        candidates=set(result.candidates),
        answers=set(result.answers),
        intervals=dict(result.solution_intervals),
        version=version,
        dimension=2,
    )


class TestFingerprint:
    def test_same_content_same_fingerprint(self, rng):
        points = rng.random((12, 3))
        assert query_fingerprint(points) == query_fingerprint(points.copy())

    def test_dtype_is_canonicalised(self, rng):
        points = rng.random((8, 2))
        assert query_fingerprint(points) == query_fingerprint(
            points.astype(np.float64)
        )

    def test_different_shape_or_content_differ(self, rng):
        points = rng.random((12, 2))
        assert query_fingerprint(points) != query_fingerprint(points[:6])
        assert query_fingerprint(points) != query_fingerprint(
            points.reshape(2, 12)
        )
        nudged = points.copy()
        nudged[0, 0] += 1e-9
        assert query_fingerprint(points) != query_fingerprint(nudged)


class TestLookupStore:
    def test_epsilon_monotonic_lookup(self, rng):
        search = SimilaritySearch(make_database(rng))
        query = rng.random((10, 2))
        _, entry = entry_from_search(search, query, 0.5)
        cache = EpsilonCache(capacity=4)
        assert cache.store("q", entry, version=0)
        assert cache.lookup("q", 0.5, version=0) is entry
        assert cache.lookup("q", 0.2, version=0) is entry  # tighter: usable
        assert cache.lookup("q", 0.7, version=0) is None  # wider: not usable
        assert cache.lookup("q", 0.5, version=1) is None  # other snapshot
        assert cache.lookup("other", 0.5, version=0) is None

    def test_store_drops_stale_entry(self, rng):
        search = SimilaritySearch(make_database(rng))
        _, entry = entry_from_search(search, rng.random((10, 2)), 0.5, version=0)
        cache = EpsilonCache(capacity=4)
        assert not cache.store("q", entry, version=3)  # writer won the race
        assert len(cache) == 0

    def test_narrower_entry_never_evicts_wider(self, rng):
        search = SimilaritySearch(make_database(rng))
        query = rng.random((10, 2))
        _, wide = entry_from_search(search, query, 0.6)
        _, tight = entry_from_search(search, query, 0.2)
        cache = EpsilonCache(capacity=4)
        assert cache.store("q", wide, version=0)
        assert not cache.store("q", tight, version=0)
        assert cache.lookup("q", 0.6, version=0) is wide

    def test_lru_eviction(self, rng):
        search = SimilaritySearch(make_database(rng))
        cache = EpsilonCache(capacity=2)
        entries = {}
        for name in ("a", "b", "c"):
            _, entries[name] = entry_from_search(search, rng.random((8, 2)), 0.4)
            cache.store(name, entries[name], version=0)
        assert cache.lookup("a", 0.4, version=0) is None  # oldest evicted
        assert cache.lookup("b", 0.4, version=0) is entries["b"]
        # "b" is now most recent; inserting "d" evicts "c"
        _, entries["d"] = entry_from_search(search, rng.random((8, 2)), 0.4)
        cache.store("d", entries["d"], version=0)
        assert cache.lookup("c", 0.4, version=0) is None
        assert cache.lookup("b", 0.4, version=0) is entries["b"]

    def test_clear_and_capacity_validation(self):
        with pytest.raises(ValueError):
            EpsilonCache(capacity=0)
        cache = EpsilonCache(capacity=2)
        cache.clear()
        assert len(cache) == 0


class TestApplyWrite:
    def test_insert_patch_equals_fresh_search(self, rng):
        database = make_database(rng)
        query = rng.random((10, 2))
        search = SimilaritySearch(database)
        _, entry = entry_from_search(search, query, 0.5)
        cache = EpsilonCache(capacity=4)
        cache.store("q", entry, version=0)

        grown = database.clone()
        grown.add(rng.random((24, 2)), sequence_id="newcomer")
        patched = cache.apply_write("newcomer", SimilaritySearch(grown), 1)
        assert patched == 1

        fresh = SimilaritySearch(grown).search(query, 0.5)
        patched_entry = cache.lookup("q", 0.5, version=1)
        assert patched_entry is not None
        assert patched_entry.version == 1
        assert patched_entry.candidates == set(fresh.candidates)
        assert patched_entry.answers == set(fresh.answers)
        assert patched_entry.intervals == fresh.solution_intervals
        assert cache.lookup("q", 0.5, version=0) is None
        # The original entry is untouched: a reader still holding it sees
        # the state that was exact for snapshot 0.
        assert patched_entry is not entry
        assert entry.version == 0
        assert "newcomer" not in entry.candidates

    def test_remove_patch_drops_sequence(self, rng):
        database = make_database(rng)
        query = rng.random((10, 2))
        search = SimilaritySearch(database)
        result, entry = entry_from_search(search, query, 0.8)
        assume_target = result.answers[0] if result.answers else "s0"
        cache = EpsilonCache(capacity=4)
        cache.store("q", entry, version=0)

        shrunk = database.clone()
        shrunk.remove(assume_target)
        cache.apply_write(assume_target, SimilaritySearch(shrunk), 1)

        fresh = SimilaritySearch(shrunk).search(query, 0.8)
        patched_entry = cache.lookup("q", 0.8, version=1)
        assert patched_entry is not None
        assert assume_target not in patched_entry.candidates
        assert patched_entry.candidates == set(fresh.candidates)
        assert patched_entry.answers == set(fresh.answers)
        assert patched_entry.intervals == fresh.solution_intervals
        # Copy-on-write patching: the pre-write entry still holds the
        # removed id, exact for snapshot 0.
        assert assume_target in entry.candidates or not result.answers

    def test_incoherent_entry_is_evicted_not_stamped(self, rng):
        """An entry that missed a write's patch must not be version-
        stamped by the next write — a single-id patch is only exact on an
        exact base.  This is the stale-store race: a search on snapshot
        v0 stores its result between writer v1's cache patch and its
        snapshot publish, so the entry never saw v1's sequence."""
        database = make_database(rng)
        query = rng.random((10, 2))
        _, entry = entry_from_search(SimilaritySearch(database), query, 0.5)
        cache = EpsilonCache(capacity=4)
        cache.store("q", entry, version=0)  # raced store: missed v1's patch

        grown = database.clone()
        grown.add(rng.random((24, 2)), sequence_id="v1-missed")
        grown.add(rng.random((24, 2)), sequence_id="v2-seen")
        # Writer v2 patches for its own id only; the entry still claims
        # version 0, not 1, so it cannot be patched up to 2.
        cache.apply_write("v2-seen", SimilaritySearch(grown), 2)
        assert cache.lookup("q", 0.5, version=2) is None
        assert len(cache) == 0


class TestEpsilonMonotonicProperty:
    @given(corpora(dims=(1, 2)))
    @settings(max_examples=25, deadline=None)
    def test_cached_engine_never_changes_results(self, case):
        """miss, hit and refine all match the uncached engine exactly —
        answers, candidates and solution intervals."""
        sequences, query, epsilon = case
        assume(epsilon > 1e-6)
        database = SequenceDatabase(
            dimension=sequences[0].shape[1], max_points=4
        )
        for ordinal, points in enumerate(sequences):
            database.add(points, sequence_id=ordinal)
        reference = SimilaritySearch(database.clone())

        tighter = epsilon * 0.5
        plan = [(epsilon, "miss"), (epsilon, "hit"), (tighter, "refine")]
        with QueryEngine(database, workers=2, cache_size=8) as engine:
            for threshold, outcome in plan:
                detailed = engine.search_detailed(query, threshold)
                expected = reference.search(query, threshold)
                assert detailed.cache == outcome
                assert detailed.result.answers == expected.answers
                assert detailed.result.candidates == expected.candidates
                assert (
                    detailed.result.solution_intervals
                    == expected.solution_intervals
                )
