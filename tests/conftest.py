"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.mbr import MBR
from repro.core.sequence import MultidimensionalSequence

# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------


def unit_points(dimension: int, length):
    """Strategy: (length, dimension) float arrays inside the unit cube."""
    return arrays(
        dtype=np.float64,
        shape=st.tuples(length, st.just(dimension)),
        elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
    )


def unit_sequences(dimension=st.integers(1, 4), length=st.integers(1, 40)):
    """Strategy: MultidimensionalSequence in the unit cube."""
    return st.builds(
        MultidimensionalSequence,
        dimension.flatmap(lambda d: unit_points(d, length)),
    )


def mbr_pairs(dimension: int):
    """Strategy: pairs of MBRs of the same dimension in the unit cube."""

    def make_mbr(corners):
        a, b = corners
        return MBR(np.minimum(a, b), np.maximum(a, b))

    corner = arrays(
        dtype=np.float64,
        shape=(dimension,),
        elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
    )
    one = st.tuples(corner, corner).map(make_mbr)
    return st.tuples(one, one)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------


@pytest.fixture
def rng():
    """A deterministic RNG shared by randomised (non-hypothesis) tests."""
    return np.random.default_rng(20000301)


@pytest.fixture
def small_sequences(rng):
    """Twelve short random 3-d sequences for integration-style tests."""
    return [
        MultidimensionalSequence(
            rng.random((int(rng.integers(20, 60)), 3)), sequence_id=i
        )
        for i in range(12)
    ]


def brute_force_within(items, query: MBR, epsilon: float):
    """Reference implementation of an index ``search_within`` probe."""
    return {
        payload
        for mbr, payload in items
        if mbr.min_distance(query) <= epsilon
    }
