"""Metamorphic tests: known transformations with known effects.

Each test applies a transformation whose effect on the output is known
analytically (translation invariance, insertion-order independence,
duplication, …) and checks the system honours it — a class of bugs unit
tests with fixed expectations cannot see.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.database import SequenceDatabase
from repro.core.distance import (
    mean_distance,
    min_normalized_distance,
    sequence_distance,
)
from repro.core.mbr import MBR
from repro.core.partitioning import partition_sequence
from repro.core.search import SimilaritySearch


def cube_points(n_range=(2, 15), dim=2, span=0.5):
    """Points confined to [0, span]^dim so translations stay in the cube."""
    return arrays(
        np.float64,
        st.tuples(st.integers(*n_range), st.just(dim)),
        elements=st.floats(0.0, span, allow_nan=False, width=64),
    )


class TestTranslationInvariance:
    @given(cube_points(), cube_points(), st.floats(0.0, 0.5))
    @settings(max_examples=60, deadline=None)
    def test_distances_translation_invariant(self, a, b, shift):
        """d(a + c, b + c) = d(a, b) for every metric in the stack."""
        if a.shape[0] > b.shape[0]:
            a, b = b, a
        moved_a = a + shift
        moved_b = b + shift
        assert sequence_distance(moved_a, moved_b) == pytest.approx(
            sequence_distance(a, b), abs=1e-9
        )
        box_a, box_b = MBR.of_points(a), MBR.of_points(b)
        moved_box_a, moved_box_b = MBR.of_points(moved_a), MBR.of_points(moved_b)
        assert moved_box_a.min_distance(moved_box_b) == pytest.approx(
            box_a.min_distance(box_b), abs=1e-9
        )

    @given(cube_points(n_range=(3, 12)), cube_points(n_range=(3, 12)),
           st.floats(0.0, 0.5))
    @settings(max_examples=40, deadline=None)
    def test_dnorm_bound_translation_invariant(self, q, s, shift):
        base = min_normalized_distance(
            partition_sequence(q, max_points=4),
            partition_sequence(s, max_points=4),
        )
        moved = min_normalized_distance(
            partition_sequence(q + shift, max_points=4),
            partition_sequence(s + shift, max_points=4),
        )
        assert moved == pytest.approx(base, abs=1e-9)


class TestInsertionOrderIndependence:
    def test_search_results_independent_of_insertion_order(self, rng):
        """Different R-tree shapes, identical answers."""
        sequences = {
            i: rng.random((int(rng.integers(15, 40)), 2)) for i in range(12)
        }
        query = sequences[5][3:12]

        def run(order):
            db = SequenceDatabase(dimension=2)
            for i in order:
                db.add(sequences[i], sequence_id=i)
            result = SimilaritySearch(db).search(query, 0.2)
            return set(result.answers), {
                sid: interval
                for sid, interval in result.solution_intervals.items()
            }

        forward = run(range(12))
        backward = run(reversed(range(12)))
        shuffled_order = list(range(12))
        rng.shuffle(shuffled_order)
        shuffled = run(shuffled_order)
        assert forward == backward == shuffled

    def test_index_kind_independence(self, rng):
        sequences = [rng.random((30, 2)) for _ in range(10)]
        query = sequences[2][5:20]
        answers = {}
        for kind in ("rtree", "rstar", "str"):
            db = SequenceDatabase(dimension=2, index_kind=kind)
            for i, points in enumerate(sequences):
                db.add(points, sequence_id=i)
            result = SimilaritySearch(db).search(query, 0.15)
            answers[kind] = (
                set(result.candidates),
                set(result.answers),
                result.solution_intervals,
            )
        assert answers["rtree"] == answers["rstar"] == answers["str"]


class TestDuplication:
    def test_duplicate_sequence_both_retrieved(self, rng):
        db = SequenceDatabase(dimension=2)
        points = rng.random((25, 2))
        db.add(points, sequence_id="a")
        db.add(points, sequence_id="b")
        result = SimilaritySearch(db).search(points[4:14], 0.05)
        assert {"a", "b"} <= set(result.answers)
        assert result.solution_intervals["a"] == result.solution_intervals["b"]

    def test_concatenation_contains_both_parts(self, rng):
        """D(Q, A++B) <= min(D(Q, A), D(Q, B)) when Q fits in each part."""
        a = rng.random((20, 2))
        b = rng.random((20, 2))
        query = rng.random((6, 2))
        joined = np.vstack([a, b])
        assert sequence_distance(query, joined) <= min(
            sequence_distance(query, a), sequence_distance(query, b)
        ) + 1e-12


class TestRepetitionAndReversal:
    @given(cube_points(n_range=(2, 10)))
    @settings(max_examples=40, deadline=None)
    def test_reversed_pair_distance_equal(self, points):
        other = np.roll(points, 1, axis=0)
        assert mean_distance(points[::-1], other[::-1]) == pytest.approx(
            mean_distance(points, other), abs=1e-12
        )

    def test_query_repeated_in_data_interval_grows(self, rng):
        """Planting the query twice must enlarge the solution interval."""
        query = rng.random((8, 2))
        filler = rng.random((20, 2))
        once = np.vstack([query, filler])
        twice = np.vstack([query, filler, query])

        from repro.baselines.sequential import exact_solution_interval

        si_once = exact_solution_interval(query, once, 0.0)
        si_twice = exact_solution_interval(query, twice, 0.0)
        assert len(si_twice) >= len(si_once) + len(query)
