"""Deterministic shard placement (repro.cluster.router)."""

import pytest

from repro.cluster.router import Placement, ShardRouter, canonical_id, shard_of


class TestCanonicalId:
    def test_distinguishes_int_from_str(self):
        assert canonical_id(5) == "int:5"
        assert canonical_id("5") == "str:5"
        assert canonical_id(5) != canonical_id("5")

    def test_rejects_bool_and_other_types(self):
        for bad in (True, False, 1.5, None, (1,), b"x"):
            with pytest.raises(TypeError):
                canonical_id(bad)


class TestShardOf:
    def test_stable_across_calls_and_processes(self):
        # Frozen expectations: blake2b placement must never drift, or a
        # rebooted coordinator would look for sequences on the wrong
        # backends.  If this test fails, the hash function changed.
        assert shard_of("seq-0", 8) == shard_of("seq-0", 8)
        frozen = [shard_of(f"seq-{i}", 8) for i in range(6)]
        assert frozen == [5, 0, 2, 4, 3, 0]
        assert shard_of(42, 8) == 0

    def test_spreads_ids_over_shards(self):
        shards = {shard_of(f"seq-{i}", 4) for i in range(100)}
        assert shards == {0, 1, 2, 3}

    def test_respects_modulus(self):
        for i in range(50):
            assert 0 <= shard_of(i, 7) < 7

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            shard_of("x", 0)


class TestShardRouter:
    def test_defaults_one_shard_per_backend(self):
        router = ShardRouter(num_backends=4)
        assert router.num_shards == 4
        assert router.replication == 1

    def test_replicas_are_distinct_and_consecutive(self):
        router = ShardRouter(num_backends=5, replication=3)
        for shard in range(router.num_shards):
            replicas = router.replicas_of(shard)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
            assert replicas == tuple((shard + i) % 5 for i in range(3))

    def test_placement_matches_shard_of(self):
        router = ShardRouter(num_backends=3, num_shards=7, replication=2)
        placement = router.placement("clip-9")
        assert isinstance(placement, Placement)
        assert placement.shard == shard_of("clip-9", 7)
        assert placement.replicas == router.replicas_of(placement.shard)

    def test_shards_of_backend_inverts_replicas_of(self):
        router = ShardRouter(num_backends=4, num_shards=9, replication=2)
        for backend in range(4):
            for shard in router.shards_of_backend(backend):
                assert backend in router.replicas_of(shard)
        covered = {
            shard
            for backend in range(4)
            for shard in router.shards_of_backend(backend)
        }
        assert covered == set(range(9))

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(num_backends=0)
        with pytest.raises(ValueError):
            ShardRouter(num_backends=2, replication=3)
        with pytest.raises(ValueError):
            ShardRouter(num_backends=2, replication=0)
        with pytest.raises(ValueError):
            ShardRouter(num_backends=2, num_shards=0)
        router = ShardRouter(num_backends=2)
        with pytest.raises(ValueError):
            router.replicas_of(2)
        with pytest.raises(ValueError):
            router.shards_of_backend(5)

    def test_describe_is_json_ready(self):
        router = ShardRouter(num_backends=3, num_shards=6, replication=2)
        assert router.describe() == {
            "backends": 3,
            "shards": 6,
            "replication": 2,
        }
