"""Systematic edge cases and failure injection across the pipeline.

Degenerate geometry (identical points, zero-volume MBRs), extreme
thresholds, single-element sequences and corpora, and adversarial query
shapes — the places where off-by-ones and division-by-zero live.
"""

import numpy as np
import pytest

from repro.baselines.sequential import SequentialScan, exact_solution_interval
from repro.core.database import SequenceDatabase
from repro.core.distance import (
    normalized_distance,
    normalized_distance_row,
    sequence_distance,
)
from repro.core.mbr import MBR
from repro.core.partitioning import partition_sequence
from repro.core.search import SimilaritySearch
from repro.core.sequence import MultidimensionalSequence


class TestDegenerateGeometry:
    def test_all_identical_points(self):
        """A constant sequence: one zero-volume MBR, everything matches."""
        points = np.full((30, 3), 0.5)
        partition = partition_sequence(points, max_points=None)
        assert len(partition) == 1
        assert partition[0].mbr.volume() == 0.0

        db = SequenceDatabase(dimension=3)
        db.add(points, sequence_id="flat")
        result = SimilaritySearch(db).search(points[:5], 0.0)
        assert "flat" in result.answers
        interval = result.solution_intervals["flat"]
        assert len(interval) == 30

    def test_zero_volume_mbrs_distance(self):
        a = MBR.of_points(np.full((5, 2), 0.2))
        b = MBR.of_points(np.full((5, 2), 0.7))
        assert a.min_distance(b) == pytest.approx(np.hypot(0.5, 0.5))

    def test_axis_aligned_degenerate_sequence(self):
        """Points on a line: MBRs collapse in one dimension."""
        points = np.column_stack(
            [np.linspace(0, 1, 20), np.full(20, 0.5)]
        )
        partition = partition_sequence(points)
        for segment in partition:
            assert segment.mbr.sides[1] == 0.0

    def test_single_point_sequences_everywhere(self):
        db = SequenceDatabase(dimension=2)
        for i in range(5):
            db.add([[i / 10, i / 10]], sequence_id=i)
        engine = SimilaritySearch(db)
        result = engine.search([[0.0, 0.0]], 0.05)
        assert result.answers == [0]
        assert engine.knn([[0.21, 0.21]], 1)[0][1] == 2


class TestExtremeThresholds:
    @pytest.fixture
    def small_db(self, rng):
        db = SequenceDatabase(dimension=2)
        for i in range(6):
            db.add(rng.random((20, 2)), sequence_id=i)
        return db

    def test_epsilon_zero_finds_only_exact(self, small_db):
        engine = SimilaritySearch(small_db)
        query = small_db.sequence(3).points[2:8]
        result = engine.search(query, 0.0)
        assert 3 in result.answers

    def test_epsilon_diagonal_finds_everything(self, small_db):
        engine = SimilaritySearch(small_db)
        query = small_db.sequence(0).points[:4]
        result = engine.search(query, np.sqrt(2))
        assert set(result.answers) == set(range(6))
        scan = SequentialScan.from_database(small_db).scan(query, np.sqrt(2))
        assert scan.answers == set(range(6))

    def test_huge_epsilon_interval_covers_everything(self, small_db):
        engine = SimilaritySearch(small_db)
        query = small_db.sequence(0).points[:4]
        result = engine.search(query, np.sqrt(2))
        for sid, interval in result.solution_intervals.items():
            assert len(interval) == len(small_db.sequence(sid))


class TestQueryShapes:
    def test_single_point_query(self, rng):
        db = SequenceDatabase(dimension=3)
        db.add(rng.random((40, 3)), sequence_id=0)
        engine = SimilaritySearch(db)
        point = db.sequence(0).points[17:18]
        result = engine.search(point, 0.0)
        assert 0 in result.answers

    def test_query_exactly_as_long_as_data(self, rng):
        db = SequenceDatabase(dimension=2)
        points = rng.random((25, 2))
        db.add(points, sequence_id=0)
        result = SimilaritySearch(db).search(points, 0.0)
        assert 0 in result.answers

    def test_query_one_longer_than_data(self, rng):
        """The smallest long-query case: one extra point."""
        db = SequenceDatabase(dimension=2)
        points = rng.random((20, 2))
        db.add(points, sequence_id=0)
        query = np.vstack([points, [[0.5, 0.5]]])
        exact = sequence_distance(query, points)
        result = SimilaritySearch(db).search(query, exact + 1e-9)
        assert 0 in result.answers

    def test_mixed_length_corpus_with_long_query(self, rng):
        db = SequenceDatabase(dimension=2)
        lengths = [5, 60, 8, 200, 12]
        for i, n in enumerate(lengths):
            db.add(rng.random((n, 2)), sequence_id=i)
        query = rng.random((50, 2))  # longer than some, shorter than others
        engine = SimilaritySearch(db)
        result = engine.search(query, 0.4, find_intervals=False)
        relevant = {
            i
            for i in range(5)
            if sequence_distance(query, db.sequence(i)) <= 0.4
        }
        assert relevant <= set(result.answers)


class TestDnormDegeneracies:
    def test_every_count_one(self):
        """Single-point MBRs: the windows are pure point runs."""
        query = MBR([0.0], [0.0])
        mbrs = [MBR([v], [v]) for v in (0.1, 0.2, 0.3, 0.4)]
        counts = [1, 1, 1, 1]
        result = normalized_distance(query, 2, mbrs, counts, 0)
        # window [0..1]: (0.1 + 0.2) / 2
        assert result.value == pytest.approx(0.15)
        row = normalized_distance_row(query, 2, mbrs, counts)
        assert row[0].value == pytest.approx(0.15)

    def test_query_count_one_is_always_plain(self):
        query = MBR([0.0], [0.0])
        mbrs = [MBR([0.3], [0.4]), MBR([0.8], [0.9])]
        for anchor in range(2):
            result = normalized_distance(query, 1, mbrs, [3, 3], anchor)
            assert result.marginal_index is None
            assert result.value == pytest.approx(query.min_distance(mbrs[anchor]))

    def test_row_only_below_filters(self):
        query = MBR([0.0], [0.0])
        mbrs = [MBR([0.1], [0.1]), MBR([0.9], [0.9])]
        rows = normalized_distance_row(
            query, 1, mbrs, [5, 5], only_below=0.5
        )
        assert [r.target_index for r in rows] == [0]

    def test_row_only_below_empty(self):
        query = MBR([0.0], [0.0])
        mbrs = [MBR([0.9], [0.9])]
        assert normalized_distance_row(query, 1, mbrs, [5], only_below=0.1) == []


class TestExactIntervalEdges:
    def test_query_length_one(self):
        data = MultidimensionalSequence([[0.1], [0.5], [0.9]])
        si = exact_solution_interval([[0.5]], data, 0.05)
        assert list(si) == [1]

    def test_whole_sequence_matches(self):
        data = MultidimensionalSequence([[0.5], [0.5]])
        si = exact_solution_interval([[0.5], [0.5]], data, 0.0)
        assert list(si) == [0, 1]

    def test_threshold_boundary_inclusive(self):
        data = MultidimensionalSequence([[0.0], [0.4]])
        si = exact_solution_interval([[0.2]], data, 0.2)
        assert list(si) == [0, 1]  # both exactly at distance 0.2


class TestEmptyAndTinyCorpora:
    def test_search_on_empty_database(self):
        db = SequenceDatabase(dimension=2)
        engine = SimilaritySearch(db)
        result = engine.search([[0.5, 0.5]], 0.3)
        assert result.answers == []
        assert result.candidates == []
        assert engine.knn([[0.5, 0.5]], 3) == []

    def test_corpus_of_one(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((10, 2)), sequence_id="only")
        result = SimilaritySearch(db).search(
            db.sequence("only").points[:3], 0.01
        )
        assert result.answers == ["only"]
