"""Unit tests for the DFT whole-sequence matcher (Agrawal et al.)."""

import numpy as np
import pytest

from repro.baselines.dft import DftWholeMatcher, dft_features
from repro.datagen.timeseries import generate_random_walk


class TestDftFeatures:
    def test_feature_dimension(self):
        features = dft_features(np.arange(16.0), 3)
        assert features.shape == (6,)

    def test_unitary_parseval(self):
        """With the orthonormal convention, the full spectrum preserves
        the Euclidean norm."""
        rng = np.random.default_rng(1)
        series = rng.random(32)
        spectrum = np.fft.fft(series) / np.sqrt(32)
        assert np.linalg.norm(spectrum) == pytest.approx(
            np.linalg.norm(series)
        )

    def test_lower_bounding_property(self):
        """Feature distance never exceeds time-domain distance — the no
        false dismissal guarantee of the F-index."""
        rng = np.random.default_rng(2)
        for _ in range(20):
            a = rng.random(64)
            b = rng.random(64)
            true = np.linalg.norm(a - b)
            for fc in (1, 2, 5):
                fa = dft_features(a, fc)
                fb = dft_features(b, fc)
                assert np.linalg.norm(fa - fb) <= true + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            dft_features(np.arange(4.0), 0)
        with pytest.raises(ValueError):
            dft_features(np.arange(4.0), 5)


class TestDftWholeMatcher:
    def _build(self, count=40, length=64, seed=3):
        matcher = DftWholeMatcher(length, n_coefficients=3)
        series = {}
        rng = np.random.default_rng(seed)
        for i in range(count):
            values = generate_random_walk(length, seed=rng)
            matcher.add(values, i)
            series[i] = values
        return matcher, series

    def test_no_false_dismissals_and_exact_answers(self):
        matcher, series = self._build()
        rng = np.random.default_rng(4)
        for _ in range(10):
            query = series[int(rng.integers(0, 40))] + rng.normal(0, 0.02, 64)
            for epsilon in (0.1, 0.5, 1.5):
                expected = {
                    i
                    for i, values in series.items()
                    if np.linalg.norm(values - query) <= epsilon
                }
                candidates = matcher.candidates(query, epsilon)
                answers = matcher.search(query, epsilon)
                assert expected <= candidates  # lower bound: no dismissals
                assert answers == expected  # post-filter: exact

    def test_candidates_prune_something(self):
        matcher, series = self._build(count=60)
        query = series[0]
        candidates = matcher.candidates(query, 0.2)
        assert len(candidates) < len(series)

    def test_equal_length_restriction(self):
        matcher = DftWholeMatcher(32)
        with pytest.raises(ValueError, match="length"):
            matcher.add(np.zeros(16))
        matcher.add(np.zeros(32), "z")
        with pytest.raises(ValueError, match="length"):
            matcher.candidates(np.zeros(16), 0.1)

    def test_duplicate_id_rejected(self):
        matcher = DftWholeMatcher(8)
        matcher.add(np.zeros(8), "a")
        with pytest.raises(KeyError):
            matcher.add(np.ones(8), "a")

    def test_validation(self):
        with pytest.raises(ValueError):
            DftWholeMatcher(0)
        with pytest.raises(ValueError):
            DftWholeMatcher(8, n_coefficients=9)
        matcher = DftWholeMatcher(8)
        with pytest.raises(ValueError):
            matcher.candidates(np.zeros(8), -1.0)

    def test_index_stats_exposed(self):
        matcher, _ = self._build(count=10)
        matcher.index_stats.reset_query_counters()
        matcher.search(np.zeros(64) + 0.5, 0.5)
        assert matcher.index_stats.node_accesses > 0
