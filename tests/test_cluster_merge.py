"""Exact scatter-gather merging (repro.cluster.merge)."""

import pytest

from repro.cluster.merge import merge_knn, merge_search_payloads


def order_by_list(ids):
    """An order key reproducing the given insertion order."""
    from repro.cluster.router import canonical_id

    ranks = {canonical_id(sid): rank for rank, sid in enumerate(ids)}
    return lambda sid: (ranks.get(canonical_id(sid), 1 << 30), canonical_id(sid))


class TestMergeSearch:
    def test_unions_and_orders_answers(self):
        order = order_by_list(["a", "b", "c", "d"])
        merged = merge_search_payloads(
            {
                1: {"answers": ["d", "b"], "candidates": ["d", "b"]},
                0: {"answers": ["c"], "candidates": ["c", "a"]},
            },
            order=order,
        )
        assert merged.answers == ["b", "c", "d"]
        assert merged.candidates == ["a", "b", "c", "d"]

    def test_dedups_ids_reported_by_several_shards(self):
        # Under replication a backend hosts several shards and answers
        # per-shard requests from its whole database, so the same id can
        # arrive in two payloads.  The merge must keep it once.
        order = order_by_list(["a", "b"])
        merged = merge_search_payloads(
            {
                0: {"answers": ["a", "b"], "candidates": ["a", "b"]},
                1: {"answers": ["b"], "candidates": ["b", "a"]},
            },
            order=order,
        )
        assert merged.answers == ["a", "b"]
        assert merged.candidates == ["a", "b"]

    def test_int_and_str_ids_do_not_collide(self):
        order = order_by_list([1, "1"])
        merged = merge_search_payloads(
            {0: {"answers": [1]}, 1: {"answers": ["1"]}},
            order=order,
        )
        assert merged.answers == [1, "1"]

    def test_intervals_and_versions_union(self):
        order = order_by_list(["a", "b"])
        merged = merge_search_payloads(
            {
                0: {
                    "answers": ["a"],
                    "intervals": {"a": [[0, 4]]},
                    "snapshot_version": 3,
                },
                1: {
                    "answers": ["b"],
                    "intervals": {"b": [[2, 9]]},
                    "snapshot_version": 5,
                },
            },
            order=order,
        )
        assert merged.intervals == {"a": [[0, 4]], "b": [[2, 9]]}
        assert merged.snapshot_versions == {0: 3, 1: 5}

    def test_stats_sum_except_query_segments(self):
        order = order_by_list([])
        merged = merge_search_payloads(
            {
                0: {
                    "stats": {
                        "query_segments": 4,
                        "node_accesses": 10,
                        "dnorm_evaluations": 3,
                    }
                },
                1: {
                    "stats": {
                        "query_segments": 4,
                        "node_accesses": 7,
                        "dnorm_evaluations": 2,
                    }
                },
            },
            order=order,
        )
        # The query is partitioned identically everywhere; work counters
        # accumulate across shards.
        assert merged.stats["query_segments"] == 4
        assert merged.stats["node_accesses"] == 17
        assert merged.stats["dnorm_evaluations"] == 5


class TestMergeKnn:
    def test_takes_global_k_smallest(self):
        order = order_by_list(["a", "b", "c", "d"])
        merged = merge_knn(
            [
                [(0.5, "a"), (0.9, "b")],
                [(0.1, "c"), (0.7, "d")],
            ],
            3,
            order=order,
        )
        assert merged == [(0.1, "c"), (0.5, "a"), (0.7, "d")]

    def test_dedups_replicated_ids_at_equal_distance(self):
        order = order_by_list(["a", "b"])
        merged = merge_knn(
            [
                [(0.2, "a"), (0.4, "b")],
                [(0.2, "a")],
            ],
            2,
            order=order,
        )
        assert merged == [(0.2, "a"), (0.4, "b")]

    def test_distance_ties_break_by_corpus_order(self):
        order = order_by_list(["first", "second"])
        merged = merge_knn(
            [[(0.3, "second")], [(0.3, "first")]],
            2,
            order=order,
        )
        assert merged == [(0.3, "first"), (0.3, "second")]

    def test_short_result_when_fewer_than_k(self):
        order = order_by_list(["a"])
        assert merge_knn([[(0.4, "a")]], 5, order=order) == [(0.4, "a")]

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            merge_knn([], 0, order=lambda sid: sid)
