"""Per-backend health tracking (repro.cluster.health)."""

import pytest

from repro.cluster.health import HealthTracker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_tracker(n=3, threshold=3, interval=5.0):
    clock = FakeClock()
    tracker = HealthTracker(
        n, failure_threshold=threshold, probe_interval=interval, clock=clock
    )
    return tracker, clock


class TestStateMachine:
    def test_starts_up_and_usable(self):
        tracker, _ = make_tracker()
        for backend in range(3):
            assert tracker.state(backend) == "up"
            assert tracker.usable(backend)
        assert tracker.down_backends() == []

    def test_failures_walk_up_suspect_down(self):
        tracker, _ = make_tracker(threshold=3)
        assert not tracker.record_failure(0)
        assert tracker.state(0) == "suspect"
        assert tracker.usable(0)  # suspect is still routable
        assert not tracker.record_failure(0)
        went_down = tracker.record_failure(0)
        assert went_down
        assert tracker.state(0) == "down"
        assert not tracker.usable(0)
        assert tracker.down_backends() == [0]

    def test_success_resets_the_streak(self):
        tracker, _ = make_tracker(threshold=2)
        tracker.record_failure(1)
        tracker.record_success(1)
        tracker.record_failure(1)
        # Streak was reset, so one more failure is needed to go down.
        assert tracker.state(1) == "suspect"

    def test_usable_and_state_never_mutate(self):
        tracker, _ = make_tracker(threshold=1)
        tracker.record_failure(2)
        for _ in range(5):
            assert not tracker.usable(2)
            assert tracker.state(2) == "down"
        # No hidden half-open transition happened.
        assert tracker.down_backends() == [2]


class TestProbing:
    def test_probe_due_only_after_interval(self):
        tracker, clock = make_tracker(threshold=1, interval=5.0)
        tracker.record_failure(0)
        assert not tracker.probe_due(0)
        clock.advance(4.9)
        assert not tracker.probe_due(0)
        clock.advance(0.2)
        assert tracker.probe_due(0)

    def test_probe_due_is_false_for_healthy_backends(self):
        tracker, clock = make_tracker()
        clock.advance(60.0)
        assert not tracker.probe_due(0)

    def test_failed_probe_rearms_the_interval(self):
        tracker, clock = make_tracker(threshold=1, interval=5.0)
        tracker.record_failure(0)
        clock.advance(5.1)
        assert tracker.probe_due(0)
        tracker.record_probe(0, None)  # probe failed
        assert tracker.state(0) == "down"
        assert not tracker.probe_due(0)
        clock.advance(5.1)
        assert tracker.probe_due(0)

    def test_successful_probe_recovers_and_stores_info(self):
        tracker, clock = make_tracker(threshold=1)
        tracker.record_failure(1)
        clock.advance(6.0)
        came_back = tracker.record_probe(
            1,
            {
                "status": "ok",
                "degraded": False,
                "sequences": 12,
                "snapshot_version": 4,
                "wal_records": 7,
                "last_checkpoint_version": 2,
                "extraneous": "dropped",
            },
        )
        assert came_back
        assert tracker.state(1) == "up"
        snap = tracker.snapshot()[1]
        assert snap["probe"]["wal_records"] == 7
        assert snap["probe"]["last_checkpoint_version"] == 2
        assert "extraneous" not in snap["probe"]


class TestRecoveryFeed:
    def test_take_recovered_consumes_down_to_up_transitions(self):
        tracker, _ = make_tracker(threshold=1)
        tracker.record_failure(0)
        tracker.record_failure(2)
        tracker.record_success(0)
        tracker.record_success(2)
        assert tracker.take_recovered() == [0, 2]
        assert tracker.take_recovered() == []

    def test_suspect_to_up_is_not_a_recovery(self):
        tracker, _ = make_tracker(threshold=3)
        tracker.record_failure(0)
        tracker.record_success(0)
        assert tracker.take_recovered() == []


class TestValidation:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            HealthTracker(0)
        with pytest.raises(ValueError):
            HealthTracker(2, failure_threshold=0)
        with pytest.raises(ValueError):
            HealthTracker(2, probe_interval=-1.0)

    def test_rejects_out_of_range_backend(self):
        tracker, _ = make_tracker(n=2)
        with pytest.raises(ValueError):
            tracker.record_success(2)
        with pytest.raises(ValueError):
            tracker.usable(-1)
