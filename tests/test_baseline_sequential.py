"""Unit tests for the sequential-scan ground-truth baseline."""

import numpy as np
import pytest

from repro.baselines.sequential import (
    SequentialScan,
    exact_range_search,
    exact_solution_interval,
)
from repro.core.database import SequenceDatabase
from repro.core.distance import mean_distance, sequence_distance
from repro.core.sequence import MultidimensionalSequence
from repro.core.solution_interval import IntervalSet


class TestExactSolutionInterval:
    def test_exact_match_window(self):
        data = MultidimensionalSequence(
            [[0.1], [0.5], [0.6], [0.7], [0.1], [0.1]]
        )
        query = MultidimensionalSequence([[0.5], [0.6], [0.7]])
        si = exact_solution_interval(query, data, 0.0)
        assert si == IntervalSet([(1, 4)])

    def test_no_match(self):
        data = MultidimensionalSequence([[0.0], [0.0], [0.0]])
        query = MultidimensionalSequence([[1.0], [1.0]])
        assert not exact_solution_interval(query, data, 0.5)

    def test_overlapping_windows_merge(self):
        data = MultidimensionalSequence([[0.5], [0.5], [0.5], [0.5]])
        query = MultidimensionalSequence([[0.5], [0.5]])
        si = exact_solution_interval(query, data, 0.01)
        assert si == IntervalSet([(0, 4)])

    def test_matches_definition_by_brute_force(self, rng):
        data = MultidimensionalSequence(rng.random((40, 2)))
        query = MultidimensionalSequence(rng.random((6, 2)))
        epsilon = 0.4
        si = exact_solution_interval(query, data, epsilon)
        expected = set()
        for j in range(len(data) - len(query) + 1):
            if mean_distance(query.points, data.points[j : j + 6]) <= epsilon:
                expected.update(range(j, j + 6))
        assert set(si) == expected

    def test_long_query_full_or_empty(self, rng):
        data = MultidimensionalSequence(rng.random((10, 2)))
        query = MultidimensionalSequence(rng.random((25, 2)))
        epsilon = sequence_distance(query, data)
        assert exact_solution_interval(query, data, epsilon + 1e-9) == (
            IntervalSet.full(10)
        )
        assert not exact_solution_interval(query, data, epsilon - 1e-9)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            exact_solution_interval([[0.1]], [[0.1]], -1.0)


class TestExactRangeSearch:
    def test_matches_sequence_distance(self, rng):
        corpus = {
            i: MultidimensionalSequence(rng.random((30, 2))) for i in range(8)
        }
        query = rng.random((5, 2))
        for epsilon in (0.1, 0.3, 0.6):
            expected = {
                i
                for i, seq in corpus.items()
                if sequence_distance(query, seq) <= epsilon
            }
            assert exact_range_search(query, corpus, epsilon) == expected

    def test_long_queries_supported(self, rng):
        corpus = {0: MultidimensionalSequence(rng.random((10, 2)))}
        query = rng.random((40, 2))
        hits = exact_range_search(query, corpus, 2.0)
        assert hits == {0}


class TestSequentialScan:
    def test_scan_answers_and_intervals(self, rng):
        corpus = {
            i: MultidimensionalSequence(rng.random((50, 3))) for i in range(6)
        }
        scanner = SequentialScan(corpus)
        query = corpus[2].points[10:25]
        result = scanner.scan(query, 0.05)
        assert 2 in result.answers
        assert 2 in result.solution_intervals
        assert IntervalSet([(10, 25)]).issubset(result.solution_intervals[2])
        assert result.seconds > 0

    def test_find_intervals_false(self, rng):
        corpus = {0: MultidimensionalSequence(rng.random((30, 2)))}
        scanner = SequentialScan(corpus)
        result = scanner.scan(corpus[0].points[:10], 0.1, find_intervals=False)
        assert result.answers == {0}
        assert result.solution_intervals == {}

    def test_from_database(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((40, 2)), sequence_id="a")
        scanner = SequentialScan.from_database(db)
        assert set(scanner.sequences) == {"a"}

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            SequentialScan({})

    def test_negative_epsilon_rejected(self, rng):
        scanner = SequentialScan({0: MultidimensionalSequence(rng.random((5, 2)))})
        with pytest.raises(ValueError):
            scanner.scan(rng.random((3, 2)), -0.1)
