"""The runtime lock-order/race sanitizer and its integration stress tests.

Unit tests pin the sanitizer's contract — off by default, inversion and
self-deadlock detection under :func:`checking_sync`, condition
discipline, statistics — and the stress tests run the real concurrent
subsystems (:class:`QueryEngine` insert/search/checkpoint,
:class:`ClusterCoordinator` scatter + read-repair) with checks armed,
asserting that no :class:`LockOrderViolation` fires and that results
match a single-threaded run over the same final corpus.
"""

import threading
import time

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator, LocalBackend, ShardRouter
from repro.core.database import SequenceDatabase
from repro.core.search import SimilaritySearch
from repro.service import QueryEngine
from repro.service.wal import DurabilityConfig
from repro.util.sync import (
    SYNC_ENV_VAR,
    LockOrderViolation,
    TracedCondition,
    TracedLock,
    TracedRLock,
    checking_sync,
    held_locks,
    lock_order_edges,
    reset_sync_state,
    sync_checks_enabled,
    sync_stats,
)

DIMENSION = 2


@pytest.fixture(autouse=True)
def clean_sync_state(monkeypatch):
    """The order graph is process-global and cumulative: isolate tests.

    Also normalizes ``REPRO_SYNC_CHECKS`` away: these tests pin the
    *default-off* contract and arm checks explicitly via
    :func:`checking_sync`, so they must behave identically under CI's
    concurrency-gate job (which exports the variable suite-wide).
    """
    monkeypatch.delenv(SYNC_ENV_VAR, raising=False)
    reset_sync_state()
    yield
    reset_sync_state()


def run_thread(fn):
    """Run ``fn`` in a thread, re-raising anything it raised."""
    box = {}

    def target():
        try:
            box["result"] = fn()
        except BaseException as error:  # noqa: BLE001 - re-raised below
            box["error"] = error

    thread = threading.Thread(target=target)
    thread.start()
    thread.join(timeout=10.0)
    if "error" in box:
        raise box["error"]
    return box.get("result")


# ----------------------------------------------------------------------
# Toggling
# ----------------------------------------------------------------------
class TestToggle:
    def test_disabled_by_default(self):
        assert not sync_checks_enabled()
        lock = TracedLock("toggle.a")
        with lock:
            pass  # no bookkeeping when disabled...
        assert sync_stats() == {}  # ...so no stats either

    def test_checking_sync_scope(self):
        with checking_sync():
            assert sync_checks_enabled()
            with checking_sync():  # nests
                assert sync_checks_enabled()
            assert sync_checks_enabled()
        assert not sync_checks_enabled()

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv(SYNC_ENV_VAR, "1")
        reset_sync_state()  # re-reads the environment
        assert sync_checks_enabled()
        monkeypatch.setenv(SYNC_ENV_VAR, "0")
        reset_sync_state()
        assert not sync_checks_enabled()

    def test_disabled_path_is_plain_lock(self):
        lock = TracedLock("toggle.plain")
        assert lock.acquire(blocking=False)
        assert not lock.acquire(blocking=False)  # held: non-blocking fails
        lock.release()
        assert not lock.locked()


# ----------------------------------------------------------------------
# Order-graph detection
# ----------------------------------------------------------------------
class TestLockOrder:
    def test_inversion_raises_with_cycle(self):
        a, b = TracedLock("order.a"), TracedLock("order.b")
        with checking_sync():
            with a:
                with b:
                    pass  # teaches the graph a -> b
            assert lock_order_edges() == {"order.a": ("order.b",)}

            def invert():
                with b:
                    with a:
                        pass

            with pytest.raises(LockOrderViolation) as caught:
                run_thread(invert)
            assert "order.a" in caught.value.cycle
            assert "order.b" in caught.value.cycle

    def test_consistent_order_never_raises(self):
        a, b, c = (TracedLock(f"chain.{n}") for n in "abc")

        def consistent():
            with a, b, c:
                pass
            with a, c:  # skipping a middle lock is still in order
                pass
            with b, c:
                pass

        with checking_sync():
            for _ in range(3):
                consistent()
                run_thread(consistent)
            assert lock_order_edges()["chain.a"] == ("chain.b", "chain.c")

    def test_self_deadlock_detected(self):
        lock = TracedLock("self.deadlock")
        with checking_sync():
            with lock:
                with pytest.raises(LockOrderViolation, match="re-acquired"):
                    lock.acquire()

    def test_self_try_lock_fails_without_raising(self):
        # acquire(blocking=False) on a lock this thread holds is the
        # single-flight idiom, not a deadlock: it must return False.
        lock = TracedLock("self.tryagain")
        with checking_sync():
            with lock:
                assert lock.acquire(blocking=False) is False
            assert lock.acquire(blocking=False) is True
            lock.release()

    def test_rlock_reentry_allowed(self):
        lock = TracedRLock("self.reentrant")
        with checking_sync():
            with lock:
                with lock:
                    assert held_locks() == (
                        "self.reentrant",
                        "self.reentrant",
                    )
            assert held_locks() == ()

    def test_same_name_peers_rejected(self):
        first, second = TracedLock("peer.x"), TracedLock("peer.x")
        with checking_sync():
            with first:
                with pytest.raises(LockOrderViolation, match="same-role"):
                    second.acquire()

    def test_cross_thread_held_stacks_independent(self):
        lock = TracedLock("held.mine")
        with checking_sync():
            with lock:
                assert held_locks() == ("held.mine",)
                assert run_thread(held_locks) == ()

    def test_stats_recorded(self):
        lock = TracedLock("stats.lock")
        with checking_sync():
            with lock:
                time.sleep(0.002)
            stats = sync_stats()["stats.lock"]
            assert stats["acquisitions"] == 1
            assert stats["hold_s"] > 0.0
            assert stats["max_hold_s"] >= stats["hold_s"] / 2

    def test_nonblocking_contention_returns_false(self):
        lock = TracedLock("contend.lock")
        with checking_sync():
            with lock:
                assert run_thread(lambda: lock.acquire(blocking=False)) is False


# ----------------------------------------------------------------------
# Conditions
# ----------------------------------------------------------------------
class TestCondition:
    def test_notify_requires_lock(self):
        cond = TracedCondition(name="cond.guarded")
        with checking_sync():
            with pytest.raises(RuntimeError, match="without holding"):
                cond.notify()
            with pytest.raises(RuntimeError, match="without holding"):
                cond.wait(0.01)

    def test_wait_notify_roundtrip(self):
        cond = TracedCondition(name="cond.roundtrip")
        ready = []

        def waiter():
            with checking_sync():
                with cond:
                    while not ready:
                        cond.wait(5.0)
                    return ready[0]

        with checking_sync():
            thread = threading.Thread(target=waiter)
            thread.start()
            time.sleep(0.02)
            with cond:
                ready.append("woken")
                cond.notify_all()
            thread.join(timeout=5.0)
            assert not thread.is_alive()

    def test_wait_for_predicate(self):
        cond = TracedCondition(name="cond.predicate")
        flag = []
        with checking_sync():

            def setter():
                time.sleep(0.02)
                with cond:
                    flag.append(True)
                    cond.notify()

            thread = threading.Thread(target=setter)
            thread.start()
            with cond:
                assert cond.wait_for(lambda: bool(flag), timeout=5.0)
            thread.join(timeout=5.0)

    def test_wait_releases_held_stack(self):
        cond = TracedCondition(name="cond.stack")
        observed = []

        def prober():
            with checking_sync():
                time.sleep(0.02)
                observed.append(cond.acquire(blocking=False))
                if observed[-1]:
                    cond.release()
                with cond:
                    cond.notify_all()

        with checking_sync():
            thread = threading.Thread(target=prober)
            thread.start()
            with cond:
                assert held_locks() == ("cond.stack",)
                cond.wait(5.0)
                assert held_locks() == ("cond.stack",)
            thread.join(timeout=5.0)
        # while this thread waited, the prober could take the lock
        assert observed and observed[0] is True


# ----------------------------------------------------------------------
# Engine stress: concurrent insert / search / checkpoint
# ----------------------------------------------------------------------
def build_corpus(rng, count=8):
    return [
        (f"seed-{i}", rng.random((int(rng.integers(16, 40)), DIMENSION)))
        for i in range(count)
    ]


def database_of(corpus):
    database = SequenceDatabase(DIMENSION)
    for sequence_id, points in corpus:
        database.add(points, sequence_id=sequence_id)
    return database


class TestEngineStress:
    def test_concurrent_engine_traffic_is_clean_and_exact(
        self, rng, tmp_path
    ):
        corpus = build_corpus(rng)
        database = database_of(corpus)
        durability = DurabilityConfig(directory=tmp_path / "wal", fsync=False)
        queries = [rng.random((10, DIMENSION)) for _ in range(4)]
        writer_payloads = {
            f"w{worker}-{i}": rng.random((12, DIMENSION))
            for worker in range(2)
            for i in range(6)
        }
        violations = []
        errors = []

        def guarded(fn):
            def run():
                try:
                    fn()
                except LockOrderViolation as error:
                    violations.append(error)
                except Exception as error:  # noqa: BLE001 - asserted below
                    errors.append(error)

            return run

        with checking_sync():
            engine = QueryEngine(
                database,
                workers=4,
                cache_size=32,
                durability=durability,
            )
            try:

                def writer(worker):
                    for sid, points in writer_payloads.items():
                        if sid.startswith(f"w{worker}-"):
                            engine.insert(points, sequence_id=sid)

                def searcher():
                    for _ in range(10):
                        for query in queries:
                            engine.search(query, 0.5)

                def checkpointer():
                    for _ in range(4):
                        engine.checkpoint()
                        time.sleep(0.002)

                threads = [
                    threading.Thread(target=guarded(lambda w=w: writer(w)))
                    for w in range(2)
                ]
                threads += [
                    threading.Thread(target=guarded(searcher))
                    for _ in range(3)
                ]
                threads.append(threading.Thread(target=guarded(checkpointer)))
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30.0)
                assert violations == [], violations
                assert errors == [], errors

                # Parity: the final corpus answers exactly like a fresh
                # single-threaded search over the same sequences.
                union = database_of(
                    corpus + sorted(writer_payloads.items())
                )
                reference = SimilaritySearch(union)
                # Sets, not lists: answer *membership* must be exact,
                # but corpus order depends on writer interleaving.
                for query in queries:
                    got = engine.search(query, 0.5)
                    expected = reference.search(query, 0.5)
                    assert set(got.answers) == set(expected.answers)
                    assert set(got.candidates) == set(expected.candidates)
            finally:
                engine.close()
        # The sanitizer actually watched this run.
        stats = sync_stats()
        assert stats.get("engine.write", {}).get("acquisitions", 0) > 0
        assert "wal.log" in stats


# ----------------------------------------------------------------------
# Cluster stress: scatter/search + failover + read-repair drain
# ----------------------------------------------------------------------
class TestClusterStress:
    def test_concurrent_scatter_and_read_repair_is_clean(self, rng):
        corpus = [
            (f"seq-{i}", rng.random((int(rng.integers(12, 30)), DIMENSION)))
            for i in range(12)
        ]
        router = ShardRouter(num_backends=3, num_shards=6, replication=2)
        databases = [SequenceDatabase(DIMENSION) for _ in range(3)]
        for sequence_id, points in corpus:
            for backend in router.placement(sequence_id).replicas:
                databases[backend].add(points, sequence_id=sequence_id)
        violations = []
        errors = []

        def guarded(fn):
            def run():
                try:
                    fn()
                except LockOrderViolation as error:
                    violations.append(error)
                except Exception as error:  # noqa: BLE001 - asserted below
                    errors.append(error)

            return run

        with checking_sync():
            engines = [
                QueryEngine(database, workers=2, cache_size=16)
                for database in databases
            ]
            backends = [
                LocalBackend(engine, name=f"local-{i}")
                for i, engine in enumerate(engines)
            ]
            coordinator = ClusterCoordinator(
                backends, num_shards=6, replication=2
            )
            coordinator.seed_order([sid for sid, _ in corpus])
            try:
                queries = [rng.random((8, DIMENSION)) for _ in range(3)]
                payloads = {
                    f"new-{worker}-{i}": rng.random((10, DIMENSION))
                    for worker in range(2)
                    for i in range(4)
                }

                def searcher():
                    for _ in range(8):
                        for query in queries:
                            coordinator.search(query, 0.5)

                def writer(worker):
                    for sid, points in payloads.items():
                        if sid.startswith(f"new-{worker}-"):
                            coordinator.insert(points, sequence_id=sid)

                def prober():
                    for _ in range(6):
                        coordinator.probe()
                        time.sleep(0.002)

                threads = [
                    threading.Thread(target=guarded(searcher))
                    for _ in range(3)
                ]
                threads += [
                    threading.Thread(target=guarded(lambda w=w: writer(w)))
                    for w in range(2)
                ]
                threads.append(threading.Thread(target=guarded(prober)))
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30.0)
                assert violations == [], violations
                assert errors == [], errors

                # Parity with a single engine over the union corpus.
                union = SequenceDatabase(DIMENSION)
                for sequence_id, points in corpus:
                    union.add(points, sequence_id=sequence_id)
                for sequence_id, points in payloads.items():
                    union.add(points, sequence_id=sequence_id)
                reference = SimilaritySearch(union)
                for query in queries:
                    merged = coordinator.search(query, 0.5)
                    expected = reference.search(query, 0.5)
                    assert set(merged.answers) == set(expected.answers)
            finally:
                coordinator.close()
                for engine in engines:
                    engine.close()
        stats = sync_stats()
        assert (
            stats.get("coordinator.counters", {}).get("acquisitions", 0) > 0
        )


# ----------------------------------------------------------------------
# Seeded bug: an intentional inversion is caught at runtime
# ----------------------------------------------------------------------
class TestSeededInversion:
    def test_staged_inversion_is_caught(self):
        """The acceptance check: wire a deliberate a->b / b->a inversion
        through two threads and require the sanitizer to name it."""
        checkpoint_lock = TracedLock("seeded.checkpoint")
        cache_lock = TracedLock("seeded.cache")
        barrier = threading.Barrier(2, timeout=5.0)
        caught = []

        def writer():
            with checkpoint_lock:
                barrier.wait()
                time.sleep(0.01)
                with cache_lock:
                    pass

        def evictor():
            try:
                with cache_lock:
                    barrier.wait()
                    time.sleep(0.01)
                    with checkpoint_lock:
                        pass
            except LockOrderViolation as error:
                caught.append(error)

        with checking_sync():
            threads = [
                threading.Thread(target=writer),
                threading.Thread(target=evictor),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
        assert len(caught) == 1
        assert set(caught[0].cycle) >= {"seeded.checkpoint", "seeded.cache"}
