"""Unit tests for the utility subpackage (validation, RNG, curves)."""

import numpy as np
import pytest

from repro.util.hilbert import (
    curve_ordering,
    hilbert_d2xy,
    hilbert_xy2d,
    zorder_d2xy,
    zorder_xy2d,
)
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.validation import (
    check_dimension,
    check_fraction,
    check_positive,
    check_threshold,
)


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2.5) == 2.5
        with pytest.raises(ValueError):
            check_positive("x", 0)
        assert check_positive("x", 0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)
        with pytest.raises(TypeError):
            check_positive("x", "3")
        with pytest.raises(TypeError):
            check_positive("x", True)

    def test_check_fraction(self):
        assert check_fraction("f", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_fraction("f", 1.5)
        with pytest.raises(TypeError):
            check_fraction("f", None)

    def test_check_dimension(self):
        assert check_dimension("n", 3) == 3
        with pytest.raises(ValueError):
            check_dimension("n", 0)
        with pytest.raises(TypeError):
            check_dimension("n", 2.5)
        with pytest.raises(TypeError):
            check_dimension("n", True)

    def test_check_threshold(self):
        assert check_threshold(0.3, dimension=3) == 0.3
        with pytest.raises(ValueError):
            check_threshold(-0.1)
        with pytest.raises(ValueError):
            check_threshold(100.0, dimension=2)


class TestRng:
    def test_ensure_rng_from_int(self):
        a = ensure_rng(5)
        b = ensure_rng(5)
        assert a.random() == b.random()

    def test_ensure_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_ensure_rng_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_rngs_independent_and_reproducible(self):
        first = spawn_rngs(7, 3)
        second = spawn_rngs(7, 3)
        draws_first = [r.random() for r in first]
        draws_second = [r.random() for r in second]
        assert draws_first == draws_second
        assert len(set(draws_first)) == 3

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(1), 2)
        assert len(children) == 2

    def test_spawn_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)
        assert spawn_rngs(1, 0) == []


class TestHilbert:
    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_round_trip(self, order):
        side = 1 << order
        for d in range(side * side):
            x, y = hilbert_d2xy(order, d)
            assert hilbert_xy2d(order, x, y) == d

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_bijection_covers_grid(self, order):
        side = 1 << order
        cells = {hilbert_d2xy(order, d) for d in range(side * side)}
        assert len(cells) == side * side

    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_consecutive_cells_adjacent(self, order):
        """The Hilbert curve moves one grid step at a time."""
        side = 1 << order
        previous = hilbert_d2xy(order, 0)
        for d in range(1, side * side):
            current = hilbert_d2xy(order, d)
            manhattan = abs(current[0] - previous[0]) + abs(
                current[1] - previous[1]
            )
            assert manhattan == 1
            previous = current

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            hilbert_d2xy(2, 16)
        with pytest.raises(ValueError):
            hilbert_xy2d(2, 4, 0)
        with pytest.raises(ValueError):
            hilbert_d2xy(0, 0)


class TestZOrder:
    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    def test_round_trip(self, order):
        side = 1 << order
        for d in range(side * side):
            x, y = zorder_d2xy(order, d)
            assert zorder_xy2d(order, x, y) == d

    def test_known_values(self):
        # Z-order interleaves bits: (1,1) -> 3, (0,1) -> 2 at order 1.
        assert zorder_xy2d(1, 0, 0) == 0
        assert zorder_xy2d(1, 1, 0) == 1
        assert zorder_xy2d(1, 0, 1) == 2
        assert zorder_xy2d(1, 1, 1) == 3

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            zorder_d2xy(2, -1)
        with pytest.raises(ValueError):
            zorder_xy2d(1, 2, 0)


class TestCurveOrdering:
    def test_shapes(self):
        coords = curve_ordering(2, "hilbert")
        assert coords.shape == (16, 2)

    def test_unknown_curve(self):
        with pytest.raises(ValueError, match="unknown curve"):
            curve_ordering(2, "dragon")

    def test_matches_d2xy(self):
        coords = curve_ordering(3, "zorder")
        for d in range(64):
            assert tuple(coords[d]) == zorder_d2xy(3, d)
