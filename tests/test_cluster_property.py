"""Property-based parity: a cluster is indistinguishable from one node.

Hypothesis drives the cluster through random shapes — backend count,
replication factor, shard count, corpus — and optionally kills one
backend before querying.  Whenever every shard keeps a live replica the
merged answers must be byte-identical to a single node holding the
union corpus; when a shard loses its last replica the degradation must
be *typed*: search reports ``complete=False`` naming exactly the
missing shards (answers a subset, never wrong), and kNN fails closed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.cluster import ShardRouter
from repro.core.contracts import checking_contracts
from repro.service.errors import ShardUnavailable
from tests.test_cluster_coordinator import (
    DIMENSION,
    close_all,
    make_cluster,
    make_single,
    single_node_knn,
    single_node_search,
)


@st.composite
def cluster_shapes(draw):
    num_backends = draw(st.integers(min_value=1, max_value=4))
    replication = draw(st.integers(min_value=1, max_value=num_backends))
    num_shards = draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=7))
    )
    corpus_seed = draw(st.integers(min_value=0, max_value=2**16))
    corpus_size = draw(st.integers(min_value=4, max_value=10))
    killed = draw(
        st.one_of(
            st.none(), st.integers(min_value=0, max_value=num_backends - 1)
        )
    )
    return num_backends, replication, num_shards, corpus_seed, corpus_size, killed


def small_corpus(seed, count):
    rng = np.random.default_rng(seed)
    return [
        (f"seq-{i}", rng.random((int(rng.integers(5, 14)), DIMENSION)))
        for i in range(count)
    ]


def expected_missing_shards(router: ShardRouter, killed: int | None) -> list[int]:
    if killed is None:
        return []
    return [
        shard
        for shard in range(router.num_shards)
        if set(router.replicas_of(shard)) <= {killed}
    ]


@settings(max_examples=15, deadline=None)
@given(shape=cluster_shapes())
def test_cluster_matches_single_node_or_degrades_typed(shape):
    num_backends, replication, num_shards, corpus_seed, corpus_size, killed = shape
    corpus = small_corpus(corpus_seed, corpus_size)
    single = make_single(corpus)
    engines, backends, coordinator = make_cluster(
        corpus,
        num_backends=num_backends,
        replication=replication,
        num_shards=num_shards,
    )
    try:
        if killed is not None:
            backends[killed].dead = True
        missing = expected_missing_shards(coordinator.router, killed)
        query = np.random.default_rng(corpus_seed + 1).random((8, DIMENSION))
        with checking_contracts():
            result = coordinator.search(query, 0.6)
            expected = single_node_search(single, query, 0.6)
            if not missing:
                assert result.complete is True
                assert result.missing_shards == ()
                assert result.answers == expected["answers"]
                assert result.candidates == expected["candidates"]
                assert result.intervals == expected["intervals"]
                knn = coordinator.knn(query, 3)
                assert knn.complete is True
                assert knn.neighbors == single_node_knn(single, query, 3)
            else:
                assert result.complete is False
                assert list(result.missing_shards) == missing
                # Partial answers must never be wrong, only missing.
                assert set(result.answers) <= set(expected["answers"])
                assert set(result.candidates) <= set(expected["candidates"])
                with pytest.raises(ShardUnavailable) as excinfo:
                    coordinator.knn(query, 3)
                assert list(excinfo.value.missing_shards) == missing
    finally:
        close_all(engines, coordinator, single)
