"""The swallowed-error sanitizer: toggles, violations, counters, parity."""

import threading

import numpy as np
import pytest

from repro.bench import (
    OperationMix,
    WorkloadSpec,
    generate_operations,
    run_closed_loop,
)
from repro.core.database import SequenceDatabase
from repro.service import QueryEngine
from repro.service.errors import DeadlineExceeded, ServiceError
from repro.util.budget import OperationCancelled
from repro.util.errtrace import (
    ERRTRACE_ENV_VAR,
    SwallowedErrorViolation,
    checking_errors,
    error_checks_enabled,
    error_stats,
    record_propagated,
    record_swallowed,
    reset_error_state,
    translated,
)


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    monkeypatch.delenv(ERRTRACE_ENV_VAR, raising=False)
    reset_error_state()
    yield
    reset_error_state()


class TestToggle:
    def test_disabled_by_default(self):
        assert not error_checks_enabled()
        # Even a swallowed cancellation is a no-op with checks off.
        record_swallowed(DeadlineExceeded("late", timeout=0.1), site="t")
        assert error_stats() == {}

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv(ERRTRACE_ENV_VAR, "1")
        reset_error_state()
        assert error_checks_enabled()
        monkeypatch.setenv(ERRTRACE_ENV_VAR, "off")
        reset_error_state()
        assert not error_checks_enabled()

    def test_context_manager_nests(self):
        assert not error_checks_enabled()
        with checking_errors():
            assert error_checks_enabled()
            with checking_errors():
                assert error_checks_enabled()
            # Still on: the outer scope holds the count up.
            assert error_checks_enabled()
        assert not error_checks_enabled()

    def test_scope_is_process_wide_across_threads(self):
        seen = {}

        def probe():
            seen["enabled"] = error_checks_enabled()

        with checking_errors():
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen["enabled"] is True


class TestRecordSwallowed:
    def test_cancellation_swallow_is_a_violation(self):
        with checking_errors():
            with pytest.raises(SwallowedErrorViolation) as info:
                record_swallowed(
                    DeadlineExceeded("late", timeout=0.1), role="worker", site="loop"
                )
        assert info.value.role == "worker"
        assert info.value.site == "loop"

    def test_operation_cancelled_also_never_swallowed(self):
        with checking_errors():
            with pytest.raises(SwallowedErrorViolation):
                record_swallowed(OperationCancelled("stop"), site="loop")

    def test_cancellation_ok_sites_count_instead(self):
        with checking_errors():
            record_swallowed(
                DeadlineExceeded("late", timeout=0.1), site="tail", cancellation_ok=True
            )
        assert error_stats()["tail"]["swallowed"] == 1

    def test_ordinary_errors_are_counted_not_raised(self):
        with checking_errors():
            record_swallowed(ValueError("bad"), site="loop")
            record_swallowed(ValueError("bad"), site="loop")
        assert error_stats()["loop"]["swallowed"] == 2


class TestTranslated:
    def test_returns_replacement_and_chains_cause(self):
        original = ValueError("low-level")
        replacement = ServiceError("typed")
        with checking_errors():
            got = translated(original, replacement, site="boundary")
        assert got is replacement
        assert got.__cause__ is original
        assert error_stats()["boundary"]["translated"] == 1

    def test_missing_original_is_a_violation(self):
        with checking_errors():
            with pytest.raises(SwallowedErrorViolation):
                translated(None, ServiceError("typed"), site="boundary")

    def test_existing_cause_is_preserved(self):
        first = KeyError("first")
        replacement = ServiceError("typed")
        replacement.__cause__ = first
        with checking_errors():
            translated(ValueError("second"), replacement, site="b")
        assert replacement.__cause__ is first

    def test_disabled_is_passthrough(self):
        replacement = ServiceError("typed")
        assert translated(None, replacement, site="b") is replacement
        assert replacement.__cause__ is None


class TestRecordPropagated:
    def test_counts_propagations(self):
        with checking_errors():
            record_propagated(ValueError("x"), site="http")
        assert error_stats()["http"]["propagated"] == 1
        assert error_stats()["http"]["unchained"] == 0

    def test_detects_dropped_provenance(self):
        try:
            try:
                raise KeyError("inner")
            except KeyError:
                raise ServiceError("outer with no from")
        except ServiceError as error:
            unchained = error
        with checking_errors():
            record_propagated(unchained, site="http")
        assert error_stats()["http"]["unchained"] == 1

    def test_explicit_from_is_chained(self):
        try:
            try:
                raise KeyError("inner")
            except KeyError as inner:
                raise ServiceError("outer") from inner
        except ServiceError as error:
            chained = error
        with checking_errors():
            record_propagated(chained, site="http")
        assert error_stats()["http"]["unchained"] == 0


class TestStats:
    def test_snapshot_is_a_deep_copy(self):
        with checking_errors():
            record_swallowed(ValueError("x"), site="a")
        snapshot = error_stats()
        snapshot["a"]["swallowed"] = 99
        assert error_stats()["a"]["swallowed"] == 1

    def test_reset_clears_counters(self):
        with checking_errors():
            record_swallowed(ValueError("x"), site="a")
        reset_error_state()
        assert error_stats() == {}


def build_database(rng, count=4, dimension=2):
    database = SequenceDatabase(dimension=dimension)
    for ordinal in range(count):
        database.add(
            rng.random((24, dimension)), sequence_id=f"s{ordinal}"
        )
    return database


class TestEngineParity:
    def test_engine_serves_cleanly_with_checks_on(self, rng):
        """Tier-1 parity: normal serving trips no violation."""
        with checking_errors():
            with QueryEngine(build_database(rng), workers=2) as engine:
                result = engine.search(rng.random((8, 2)), 0.5)
                assert isinstance(result.answers, list)
                stats = engine.stats()
        assert isinstance(stats["errors"], dict)

    def test_cancellation_translation_is_counted(self, rng):
        with checking_errors():
            with QueryEngine(build_database(rng), workers=1) as engine:
                with pytest.raises(DeadlineExceeded) as info:
                    engine.search(
                        rng.random((64, 2)), 0.5, timeout=1e-6
                    )
        # Whichever path tripped (queued-expiry or a mid-scan
        # checkpoint), the typed error chains its provenance when a
        # checkpoint produced it.
        if error_stats().get("QueryEngine._run", {}).get("translated"):
            assert isinstance(info.value.__cause__, OperationCancelled)


class TestWorkloadSwallows:
    def test_bench_worker_swallows_are_counted_under_chaos(self, rng):
        spec = WorkloadSpec(
            operations=20,
            query_pool=4,
            dimension=2,
            mix=OperationMix(search=1.0),
            epsilons=(0.2,),
        )
        operations = generate_operations(spec, seed=5)
        queries = [rng.random((10, 2)) for _ in range(spec.query_pool)]
        with checking_errors():
            with QueryEngine(build_database(rng), workers=2) as engine:
                report = run_closed_loop(
                    engine,
                    operations,
                    queries=queries,
                    dimension=2,
                    concurrency=2,
                    seed=5,
                    faults="engine.worker=raise:5",
                )
        assert report.errors == 5
        assert error_stats()["run_closed_loop"]["swallowed"] == 5


@pytest.fixture
def rng():
    return np.random.default_rng(11)
