"""Unit tests for STR bulk loading."""

import math

import pytest

from repro.core.mbr import MBR
from repro.index.bulk import bulk_load_str
from tests.conftest import brute_force_within
from tests.test_rtree import random_boxes


class TestBulkLoad:
    def test_empty(self):
        tree = bulk_load_str([], dimension=2)
        assert len(tree) == 0
        assert tree.search_within(MBR([0, 0], [1, 1]), 1.0) == []

    def test_single_item(self):
        tree = bulk_load_str([(MBR([0.1], [0.2]), "x")], dimension=1)
        assert len(tree) == 1
        assert tree.height == 1

    def test_all_entries_present(self, rng):
        items = random_boxes(rng, 137)
        tree = bulk_load_str(items, dimension=2, max_entries=8)
        assert len(tree) == 137
        assert {e.payload for e in tree.entries()} == set(range(137))

    def test_structure_valid(self, rng):
        items = random_boxes(rng, 200, dimension=3)
        tree = bulk_load_str(items, dimension=3, max_entries=10)
        tree.check_invariants(check_min_fill=False)

    def test_queries_match_brute_force(self, rng):
        items = random_boxes(rng, 180)
        tree = bulk_load_str(items, dimension=2, max_entries=8)
        for _ in range(20):
            low = rng.random(2) * 0.8
            query = MBR(low, low + rng.random(2) * 0.2)
            epsilon = float(rng.random() * 0.25)
            expected = brute_force_within(items, query, epsilon)
            got = {e.payload for e in tree.search_within(query, epsilon)}
            assert got == expected

    def test_height_near_optimal(self, rng):
        """STR packs nodes full: height close to ceil(log_M(count))."""
        count = 500
        capacity = 10
        items = random_boxes(rng, count)
        tree = bulk_load_str(items, dimension=2, max_entries=capacity)
        optimal = max(1, math.ceil(math.log(count, capacity)))
        assert tree.height <= optimal + 1

    def test_dimension_checked(self):
        with pytest.raises(ValueError, match="dimension"):
            bulk_load_str([(MBR([0.1], [0.2]), 0)], dimension=2)

    def test_dynamic_insert_after_bulk(self, rng):
        items = random_boxes(rng, 64)
        tree = bulk_load_str(items, dimension=2, max_entries=8)
        tree.insert(MBR([0.95, 0.95], [0.99, 0.99]), "late")
        assert len(tree) == 65
        got = {
            e.payload
            for e in tree.search_within(MBR([0.9, 0.9], [1.0, 1.0]), 0.0)
        }
        assert "late" in got

    def test_one_dimensional(self, rng):
        items = [(MBR([i / 100], [i / 100 + 0.005]), i) for i in range(100)]
        tree = bulk_load_str(items, dimension=1, max_entries=4)
        got = {e.payload for e in tree.search_within(MBR([0.5], [0.52]), 0.0)}
        expected = brute_force_within(items, MBR([0.5], [0.52]), 0.0)
        assert got == expected
