"""Unit tests for sequence removal, persistence and the CLI."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.database import SequenceDatabase
from repro.core.search import SimilaritySearch


class TestRemove:
    def _database(self, rng, kind="rtree"):
        db = SequenceDatabase(dimension=2, index_kind=kind)
        for i in range(8):
            db.add(rng.random((int(rng.integers(20, 50)), 2)), sequence_id=i)
        return db

    @pytest.mark.parametrize("kind", ["rtree", "rstar", "str"])
    def test_remove_drops_sequence_and_index_entries(self, rng, kind):
        db = self._database(rng, kind)
        before = db.segment_count
        removed_segments = len(db.partition(3))
        db.remove(3)
        assert 3 not in db
        assert len(db) == 7
        assert db.segment_count == before - removed_segments
        index = db.index
        assert len(index) == db.segment_count
        assert all(
            e.payload.sequence_id != 3 for e in index.entries()
        )

    def test_remove_unknown_raises(self, rng):
        db = self._database(rng)
        with pytest.raises(KeyError):
            db.remove("missing")

    def test_search_after_remove(self, rng):
        db = self._database(rng)
        query = db.sequence(5).points[:10]
        engine = SimilaritySearch(db)
        assert 5 in engine.search(query, 0.05, find_intervals=False).answers
        db.remove(5)
        result = engine.search(query, 0.05, find_intervals=False)
        assert 5 not in result.answers

    def test_readd_after_remove(self, rng):
        db = self._database(rng)
        points = db.sequence(2).points.copy()
        db.remove(2)
        db.add(points, sequence_id=2)
        assert 2 in db
        db.index.check_invariants()


class TestPersistence:
    def test_round_trip(self, rng, tmp_path):
        db = SequenceDatabase(dimension=3, cost_constant=0.25, max_points=32)
        for i in range(5):
            db.add(rng.random((30, 3)), sequence_id=f"clip-{i}")
        db.add(rng.random((20, 3)), sequence_id=77)
        path = tmp_path / "db.npz"
        db.save(path)

        loaded = SequenceDatabase.load(path)
        assert loaded.dimension == 3
        assert loaded.cost_constant == 0.25
        assert loaded.max_points == 32
        assert set(loaded.ids()) == set(db.ids())
        for sequence_id in db.ids():
            np.testing.assert_array_equal(
                loaded.sequence(sequence_id).points,
                db.sequence(sequence_id).points,
            )
            assert len(loaded.partition(sequence_id)) == len(
                db.partition(sequence_id)
            )

    def test_loaded_database_searches_identically(self, rng, tmp_path):
        db = SequenceDatabase(dimension=2)
        for i in range(6):
            db.add(rng.random((40, 2)), sequence_id=i)
        path = tmp_path / "db.npz"
        db.save(path)
        loaded = SequenceDatabase.load(path)

        query = db.sequence(1).points[5:20]
        original = SimilaritySearch(db).search(query, 0.15)
        reloaded = SimilaritySearch(loaded).search(query, 0.15)
        assert original.answers == reloaded.answers
        assert original.solution_intervals == reloaded.solution_intervals

    def test_exotic_ids_rejected(self, rng, tmp_path):
        db = SequenceDatabase(dimension=1)
        db.add(rng.random((5, 1)), sequence_id=("tuple", "id"))
        with pytest.raises(TypeError, match="ids"):
            db.save(tmp_path / "db.npz")


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_runs(self, capsys):
        code = main(
            ["demo", "--dataset", "fractal", "--sequences", "25", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "false dismissals: 0" in out

    def test_sweep_runs(self, capsys):
        code = main(
            [
                "sweep",
                "--dataset",
                "fractal",
                "--sequences",
                "25",
                "--queries",
                "1",
                "--thresholds",
                "0.2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "fig10" in out

    def test_sweep_multi_threshold_prints_sparklines(self, capsys):
        code = main(
            [
                "sweep",
                "--dataset",
                "video",
                "--sequences",
                "25",
                "--queries",
                "1",
                "--thresholds",
                "0.1",
                "0.3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "pr_dnorm" in out
        assert any(mark in out for mark in "▁▂▃▄▅▆▇█")

    def test_generate_and_reload(self, capsys, tmp_path):
        out_path = tmp_path / "corpus.npz"
        code = main(
            [
                "generate",
                "--dataset",
                "video",
                "--sequences",
                "10",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        loaded = SequenceDatabase.load(out_path)
        assert len(loaded) == 10
