"""Unit tests for MBR geometry (Definition 4 substrate, Figure 2)."""

import numpy as np
import pytest

from repro.core.mbr import MBR


class TestConstruction:
    def test_basic(self):
        box = MBR([0.0, 0.1], [0.5, 0.6])
        assert box.dimension == 2
        np.testing.assert_allclose(box.sides, [0.5, 0.5])
        np.testing.assert_allclose(box.center, [0.25, 0.35])

    def test_scalar_promotes_to_1d(self):
        box = MBR(0.2, 0.8)
        assert box.dimension == 1

    def test_rejects_low_above_high(self):
        with pytest.raises(ValueError, match="low must be <="):
            MBR([0.5], [0.4])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal shape"):
            MBR([0.1, 0.2], [0.3])

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="finite"):
            MBR([0.0], [np.inf])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="dimension >= 1"):
            MBR(np.empty(0), np.empty(0))

    def test_endpoints_read_only_and_input_untouched(self):
        low = np.array([0.1, 0.1])
        box = MBR(low, [0.2, 0.2])
        with pytest.raises(ValueError):
            box.low[0] = 0.9
        low[0] = 0.9  # caller's array must stay writable
        assert box.low[0] == pytest.approx(0.1)

    def test_of_points(self):
        box = MBR.of_points([[0.2, 0.9], [0.8, 0.1], [0.5, 0.5]])
        np.testing.assert_allclose(box.low, [0.2, 0.1])
        np.testing.assert_allclose(box.high, [0.8, 0.9])

    def test_of_points_single_point(self):
        box = MBR.of_points([0.3, 0.4])
        assert box.volume() == 0.0
        assert box.contains_point([0.3, 0.4])

    def test_of_points_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            MBR.of_points(np.empty((0, 2)))

    def test_of_point(self):
        box = MBR.of_point([0.5, 0.5])
        np.testing.assert_allclose(box.low, box.high)


class TestMeasures:
    def test_volume_and_margin(self):
        box = MBR([0.0, 0.0, 0.0], [0.5, 0.2, 0.1])
        assert box.volume() == pytest.approx(0.5 * 0.2 * 0.1)
        assert box.margin() == pytest.approx(0.8)

    def test_degenerate_volume_zero(self):
        box = MBR([0.1, 0.1], [0.1, 0.9])
        assert box.volume() == 0.0
        assert box.margin() == pytest.approx(0.8)


class TestPredicates:
    def test_contains_point_boundary(self):
        box = MBR([0.0, 0.0], [1.0, 1.0])
        assert box.contains_point([0.0, 1.0])
        assert not box.contains_point([1.0001, 0.5])

    def test_contains_mbr(self):
        outer = MBR([0.0, 0.0], [1.0, 1.0])
        inner = MBR([0.2, 0.2], [0.8, 0.8])
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.contains(outer)

    def test_intersects_touching_edges(self):
        a = MBR([0.0, 0.0], [0.5, 0.5])
        b = MBR([0.5, 0.0], [1.0, 0.5])
        assert a.intersects(b)

    def test_disjoint(self):
        a = MBR([0.0, 0.0], [0.4, 0.4])
        b = MBR([0.6, 0.6], [1.0, 1.0])
        assert not a.intersects(b)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            MBR([0.0], [1.0]).intersects(MBR([0.0, 0.0], [1.0, 1.0]))

    def test_type_error_for_non_mbr(self):
        with pytest.raises(TypeError, match="expected an MBR"):
            MBR([0.0], [1.0]).union("box")


class TestCombination:
    def test_union(self):
        a = MBR([0.0, 0.2], [0.3, 0.5])
        b = MBR([0.1, 0.0], [0.6, 0.4])
        u = a.union(b)
        np.testing.assert_allclose(u.low, [0.0, 0.0])
        np.testing.assert_allclose(u.high, [0.6, 0.5])

    def test_union_all(self):
        boxes = [MBR([i / 10], [i / 10 + 0.05]) for i in range(5)]
        u = MBR.union_all(boxes)
        assert u.low[0] == pytest.approx(0.0)
        assert u.high[0] == pytest.approx(0.45)

    def test_union_all_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            MBR.union_all([])

    def test_extended_with_point(self):
        box = MBR([0.2, 0.2], [0.4, 0.4]).extended_with_point([0.9, 0.1])
        np.testing.assert_allclose(box.low, [0.2, 0.1])
        np.testing.assert_allclose(box.high, [0.9, 0.4])

    def test_intersection_present(self):
        a = MBR([0.0, 0.0], [0.5, 0.5])
        b = MBR([0.3, 0.3], [0.8, 0.8])
        inter = a.intersection(b)
        np.testing.assert_allclose(inter.low, [0.3, 0.3])
        np.testing.assert_allclose(inter.high, [0.5, 0.5])
        assert a.overlap_volume(b) == pytest.approx(0.04)

    def test_intersection_absent(self):
        a = MBR([0.0], [0.1])
        b = MBR([0.5], [0.6])
        assert a.intersection(b) is None
        assert a.overlap_volume(b) == 0.0

    def test_enlargement(self):
        a = MBR([0.0, 0.0], [0.2, 0.2])
        b = MBR([0.4, 0.0], [0.5, 0.2])
        # union is [0,0]x[0.5,0.2] volume 0.1; a volume 0.04
        assert a.enlargement(b) == pytest.approx(0.1 - 0.04)
        assert a.enlargement(a) == pytest.approx(0.0)

    def test_expanded(self):
        box = MBR([0.3, 0.3], [0.5, 0.5]).expanded(0.1)
        np.testing.assert_allclose(box.low, [0.2, 0.2])
        np.testing.assert_allclose(box.high, [0.6, 0.6])

    def test_expanded_rejects_negative(self):
        with pytest.raises(ValueError):
            MBR([0.0], [1.0]).expanded(-0.1)


class TestFigure2Cases:
    """The three relative placements of Figure 2 in the paper."""

    def test_overlapping_rectangles_have_zero_distance(self):
        a = MBR([0.0, 0.0], [0.5, 0.5])
        b = MBR([0.4, 0.4], [0.9, 0.9])
        assert a.min_distance(b) == 0.0

    def test_separation_along_one_axis(self):
        a = MBR([0.0, 0.0], [0.2, 0.4])
        b = MBR([0.6, 0.1], [0.8, 0.3])  # y projections overlap
        assert a.min_distance(b) == pytest.approx(0.4)

    def test_separation_along_both_axes_is_corner_distance(self):
        a = MBR([0.0, 0.0], [0.2, 0.2])
        b = MBR([0.5, 0.6], [0.7, 0.9])
        assert a.min_distance(b) == pytest.approx(np.hypot(0.3, 0.4))

    def test_symmetry(self):
        a = MBR([0.0, 0.0], [0.2, 0.2])
        b = MBR([0.5, 0.6], [0.7, 0.9])
        assert a.min_distance(b) == pytest.approx(b.min_distance(a))

    def test_containment_gives_zero(self):
        outer = MBR([0.0, 0.0], [1.0, 1.0])
        inner = MBR([0.4, 0.4], [0.6, 0.6])
        assert outer.min_distance(inner) == 0.0

    def test_degenerate_point_boxes(self):
        a = MBR.of_point([0.0, 0.0])
        b = MBR.of_point([0.3, 0.4])
        assert a.min_distance(b) == pytest.approx(0.5)


class TestDistances:
    def test_min_distance_to_point_inside(self):
        box = MBR([0.0, 0.0], [1.0, 1.0])
        assert box.min_distance_to_point([0.5, 0.5]) == 0.0

    def test_min_distance_to_point_outside(self):
        box = MBR([0.0, 0.0], [0.2, 0.2])
        assert box.min_distance_to_point([0.5, 0.6]) == pytest.approx(
            np.hypot(0.3, 0.4)
        )

    def test_max_distance(self):
        a = MBR([0.0, 0.0], [0.1, 0.1])
        b = MBR([0.2, 0.2], [0.3, 0.3])
        # farthest corners: (0,0) and (0.3,0.3)
        assert a.max_distance(b) == pytest.approx(np.hypot(0.3, 0.3))

    def test_max_distance_at_least_min_distance(self):
        a = MBR([0.1, 0.5], [0.4, 0.9])
        b = MBR([0.3, 0.0], [0.9, 0.6])
        assert a.max_distance(b) >= a.min_distance(b)


class TestDunder:
    def test_equality_and_hash(self):
        a = MBR([0.1], [0.2])
        b = MBR([0.1], [0.2])
        c = MBR([0.1], [0.3])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != 17

    def test_repr_is_informative(self):
        assert "MBR(low=" in repr(MBR([0.1], [0.2]))
