"""Property-based tests of the paper's correctness claims (hypothesis).

The load-bearing invariants:

* Observation 1 — ``Dmbr`` lower-bounds every point-pair distance.
* Lemma 1 — ``min Dmbr`` over MBR pairs lower-bounds ``D(Q, S)``.
* Lemmas 2-3 — ``min Dmbr <= min Dnorm <= D(Q, S)``.

These hold for *any* partitioning of the sequences into contiguous MBRs, so
they are tested over randomly generated sequences partitioned by the real
MCOST partitioner.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.distance import (
    mean_distance,
    min_normalized_distance,
    normalized_distance,
    normalized_distance_row,
    point_distance,
    sequence_distance,
)
from repro.core.mbr import MBR
from repro.core.partitioning import partition_sequence
from repro.core.sequence import MultidimensionalSequence
from repro.core.solution_interval import IntervalSet


def points_strategy(min_len=1, max_len=25, dims=(1, 3)):
    return st.integers(dims[0], dims[1]).flatmap(
        lambda d: arrays(
            np.float64,
            st.tuples(st.integers(min_len, max_len), st.just(d)),
            elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
        )
    )


def paired_points(min_len=1, max_len=25, dims=(1, 3)):
    """Two point arrays sharing a dimension (lengths independent)."""
    return st.integers(dims[0], dims[1]).flatmap(
        lambda d: st.tuples(
            arrays(
                np.float64,
                st.tuples(st.integers(min_len, max_len), st.just(d)),
                elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
            ),
            arrays(
                np.float64,
                st.tuples(st.integers(min_len, max_len), st.just(d)),
                elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
            ),
        )
    )


TOLERANCE = 1e-9


class TestObservation1:
    @given(paired_points())
    @settings(max_examples=150, deadline=None)
    def test_dmbr_lower_bounds_every_point_pair(self, pair):
        a, b = pair
        box_a = MBR.of_points(a)
        box_b = MBR.of_points(b)
        dmbr = box_a.min_distance(box_b)
        pairwise = np.sqrt(
            np.sum((a[:, None, :] - b[None, :, :]) ** 2, axis=2)
        )
        assert dmbr <= pairwise.min() + TOLERANCE


class TestLemma1:
    @given(paired_points(min_len=2, max_len=30))
    @settings(max_examples=100, deadline=None)
    def test_min_dmbr_lower_bounds_sequence_distance(self, pair):
        q, s = pair
        query = MultidimensionalSequence(q)
        data = MultidimensionalSequence(s)
        query_partition = partition_sequence(query, max_points=5)
        data_partition = partition_sequence(data, max_points=5)
        min_dmbr = min(
            qs.mbr.min_distance(ds.mbr)
            for qs in query_partition
            for ds in data_partition
        )
        assert min_dmbr <= sequence_distance(query, data) + TOLERANCE


class TestLemmas2And3:
    @given(paired_points(min_len=2, max_len=30))
    @settings(max_examples=100, deadline=None)
    def test_lower_bound_chain(self, pair):
        """min Dmbr <= min Dnorm <= D(Q, S) for every partitioning.

        ``min_normalized_distance`` swaps the partitions in the long-query
        direction, which is what makes the chain hold for *all* length
        combinations (Lemmas 2-3 assume the query is the shorter side).
        """
        q, s = pair
        query = MultidimensionalSequence(q)
        data = MultidimensionalSequence(s)
        query_partition = partition_sequence(query, max_points=4)
        data_partition = partition_sequence(data, max_points=4)

        min_dmbr = min(
            float(data_partition.mbr_distance_row(qs.mbr).min())
            for qs in query_partition
        )
        min_dnorm = min_normalized_distance(query_partition, data_partition)
        exact = sequence_distance(query, data)
        assert min_dmbr <= min_dnorm + TOLERANCE
        assert min_dnorm <= exact + TOLERANCE

    def test_long_query_regression(self):
        """The falsifying example hypothesis found for the naive direction:
        Q = (0.5, 0, 0), S = (1, 0).  Naive Dnorm gives 0.5 > D = 0.25;
        the direction-aware bound must stay below 0.25."""
        query = MultidimensionalSequence([[0.5], [0.0], [0.0]])
        data = MultidimensionalSequence([[1.0], [0.0]])
        qp = partition_sequence(query, max_points=4)
        dp = partition_sequence(data, max_points=4)
        exact = sequence_distance(query, data)
        assert exact == 0.25
        assert min_normalized_distance(qp, dp) <= exact + TOLERANCE

    @given(paired_points(min_len=2, max_len=20))
    @settings(max_examples=60, deadline=None)
    def test_dnorm_window_weights_sum_to_query_count(self, pair):
        q, s = pair
        query = MultidimensionalSequence(q)
        data = MultidimensionalSequence(s)
        qp = partition_sequence(query, max_points=6)
        dp = partition_sequence(data, max_points=3)
        counts = dp.counts
        total = int(counts.sum())
        for qs in qp:
            for anchor in range(len(dp)):
                result = normalized_distance(
                    qs.mbr, qs.count, dp.mbrs, counts, anchor
                )
                spans = result.involved_points(counts)
                involved = sum(last - first + 1 for _, first, last in spans)
                if result.marginal_index is not None:
                    # A windowed computation weighs exactly |q_i| points.
                    assert involved == qs.count
                elif qs.count <= counts[anchor]:
                    # The anchor alone suffices: Dnorm == Dmbr.
                    assert result.window == (anchor, anchor)
                    assert involved == counts[anchor]
                else:
                    # Whole-sequence fallback: fewer points than the query.
                    assert qs.count > total
                    assert involved == total


class TestRowApiEquivalence:
    @given(paired_points(min_len=2, max_len=30))
    @settings(max_examples=100, deadline=None)
    def test_row_matches_scalar_anchors(self, pair):
        """normalized_distance_row must agree with per-anchor calls, both in
        value and in the size of the participating window."""
        q, s = pair
        qp = partition_sequence(MultidimensionalSequence(q), max_points=4)
        dp = partition_sequence(MultidimensionalSequence(s), max_points=3)
        counts = dp.counts
        for qs in qp:
            row_results = normalized_distance_row(
                qs.mbr, int(qs.count), dp.mbrs, counts
            )
            assert len(row_results) == len(dp)
            for anchor, fast in enumerate(row_results):
                slow = normalized_distance(
                    qs.mbr, int(qs.count), dp.mbrs, counts, anchor
                )
                assert abs(fast.value - slow.value) <= TOLERANCE
                assert fast.target_index == anchor
                fast_points = sum(
                    last - first + 1
                    for _, first, last in fast.involved_points(counts)
                )
                slow_points = sum(
                    last - first + 1
                    for _, first, last in slow.involved_points(counts)
                )
                assert fast_points == slow_points


class TestDistanceProperties:
    @given(paired_points())
    @settings(max_examples=100, deadline=None)
    def test_sequence_distance_symmetric_and_nonnegative(self, pair):
        a, b = pair
        d_ab = sequence_distance(a, b)
        d_ba = sequence_distance(b, a)
        assert d_ab >= 0
        assert abs(d_ab - d_ba) <= TOLERANCE

    @given(points_strategy(min_len=2))
    @settings(max_examples=80, deadline=None)
    def test_self_distance_zero(self, pts):
        assert sequence_distance(pts, pts) <= TOLERANCE

    @given(points_strategy(min_len=3, max_len=20))
    @settings(max_examples=80, deadline=None)
    def test_subsequence_distance_zero(self, pts):
        seq = MultidimensionalSequence(pts)
        sub = seq[1 : max(2, len(seq) - 1)]
        assert sequence_distance(sub, seq) <= TOLERANCE

    @given(
        st.integers(2, 10).flatmap(
            lambda n: st.tuples(
                *(
                    arrays(
                        np.float64,
                        (n, 2),
                        elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
                    )
                    for _ in range(3)
                )
            )
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_dmean_triangle_inequality(self, triple):
        """Dmean is a metric on equal-length sequences (mean of metrics)."""
        a, b, c = triple
        assert mean_distance(a, c) <= (
            mean_distance(a, b) + mean_distance(b, c) + TOLERANCE
        )

    @given(paired_points(min_len=1, max_len=12))
    @settings(max_examples=80, deadline=None)
    def test_sequence_distance_bounded_by_diagonal(self, pair):
        a, b = pair
        dimension = a.shape[1]
        assert sequence_distance(a, b) <= np.sqrt(dimension) + TOLERANCE

    @given(paired_points(min_len=1, max_len=10))
    @settings(max_examples=60, deadline=None)
    def test_point_distance_consistency(self, pair):
        a, b = pair
        assert point_distance(a[0], b[0]) == mean_distance(
            a[:1], b[:1]
        )


class TestPartitioningProperties:
    @given(points_strategy(min_len=1, max_len=60))
    @settings(max_examples=80, deadline=None)
    def test_partition_is_exact_tiling(self, pts):
        partition = partition_sequence(pts, max_points=7)
        offset = 0
        for segment in partition:
            assert segment.start == offset
            assert 1 <= segment.count <= 7
            offset = segment.stop
        assert offset == pts.shape[0]

    @given(points_strategy(min_len=1, max_len=60))
    @settings(max_examples=80, deadline=None)
    def test_every_point_inside_its_mbr(self, pts):
        partition = partition_sequence(pts, max_points=None)
        for segment in partition:
            block = partition.segment_points(segment.index)
            for point in block:
                assert segment.mbr.contains_point(point)

    @given(points_strategy(min_len=2, max_len=40))
    @settings(max_examples=60, deadline=None)
    def test_mbr_distance_row_matches_scalar_api(self, pts):
        partition = partition_sequence(pts, max_points=5)
        probe = MBR.of_points(pts[: max(1, len(pts) // 2)])
        row = partition.mbr_distance_row(probe)
        for t, segment in enumerate(partition):
            assert abs(row[t] - probe.min_distance(segment.mbr)) <= TOLERANCE


class TestMbrProperties:
    @given(paired_points(min_len=1, max_len=15))
    @settings(max_examples=100, deadline=None)
    def test_union_contains_both(self, pair):
        a, b = pair
        box_a = MBR.of_points(a)
        box_b = MBR.of_points(b)
        union = box_a.union(box_b)
        assert union.contains(box_a)
        assert union.contains(box_b)

    @given(paired_points(min_len=1, max_len=15))
    @settings(max_examples=100, deadline=None)
    def test_zero_distance_iff_intersecting(self, pair):
        a, b = pair
        box_a = MBR.of_points(a)
        box_b = MBR.of_points(b)
        distance = box_a.min_distance(box_b)
        if box_a.intersects(box_b):
            assert distance == 0.0
        if distance > 0.0:
            # (The converse can underflow for denormal gaps, so only the
            # sound direction is asserted.)
            assert not box_a.intersects(box_b)

    @given(paired_points(min_len=1, max_len=15))
    @settings(max_examples=60, deadline=None)
    def test_min_distance_at_most_max_distance(self, pair):
        a, b = pair
        box_a = MBR.of_points(a)
        box_b = MBR.of_points(b)
        assert box_a.min_distance(box_b) <= box_a.max_distance(box_b) + TOLERANCE

    @given(points_strategy(min_len=1, max_len=15), st.floats(0.0, 0.5))
    @settings(max_examples=60, deadline=None)
    def test_expanded_contains_original(self, pts, epsilon):
        box = MBR.of_points(pts)
        assert box.expanded(epsilon).contains(box)


class TestIntervalSetProperties:
    interval_lists = st.lists(
        st.tuples(st.integers(0, 50), st.integers(0, 50)).map(
            lambda ab: (min(ab), max(ab))
        ),
        max_size=8,
    )

    @given(interval_lists, interval_lists)
    @settings(max_examples=150, deadline=None)
    def test_algebra_matches_python_sets(self, left, right):
        a = IntervalSet(left)
        b = IntervalSet(right)
        sa = {p for lo, hi in left for p in range(lo, hi)}
        sb = {p for lo, hi in right for p in range(lo, hi)}
        assert set(a) == sa
        assert set(a | b) == sa | sb
        assert set(a & b) == sa & sb
        assert set(a - b) == sa - sb
        assert len(a) == len(sa)
        assert a.issubset(b) == sa.issubset(sb)

    @given(interval_lists)
    @settings(max_examples=80, deadline=None)
    def test_canonical_form_is_disjoint_sorted(self, spans):
        si = IntervalSet(spans)
        intervals = si.intervals
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 < s2  # disjoint and non-adjacent
        assert all(s < e for s, e in intervals)
