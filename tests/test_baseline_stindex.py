"""Unit tests for the ST-index subsequence matcher (FRM'94)."""

import numpy as np
import pytest

from repro.baselines.stindex import (
    STIndexSubsequenceMatcher,
    window_features,
)
from repro.datagen.timeseries import generate_random_walk


def brute_force_matches(series_map, query, epsilon):
    """All (id, offset) whose window is within Euclidean epsilon."""
    hits = set()
    length = query.size
    for sequence_id, values in series_map.items():
        for offset in range(values.size - length + 1):
            block = values[offset : offset + length]
            if np.linalg.norm(block - query) <= epsilon:
                hits.add((sequence_id, offset))
    return hits


class TestWindowFeatures:
    def test_shape(self):
        trail = window_features(np.arange(20.0), 8, 2)
        assert trail.shape == (13, 4)

    def test_rows_match_single_window_dft(self):
        rng = np.random.default_rng(1)
        series = rng.random(30)
        trail = window_features(series, 8, 2)
        from repro.baselines.dft import dft_features

        for j in (0, 5, 22):
            np.testing.assert_allclose(
                trail[j], dft_features(series[j : j + 8], 2), atol=1e-12
            )

    def test_window_feature_distance_lower_bounds(self):
        rng = np.random.default_rng(2)
        a = rng.random(16)
        b = rng.random(16)
        fa = window_features(a, 16, 3)[0]
        fb = window_features(b, 16, 3)[0]
        assert np.linalg.norm(fa - fb) <= np.linalg.norm(a - b) + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            window_features(np.arange(4.0), 0, 1)
        with pytest.raises(ValueError):
            window_features(np.arange(4.0), 8, 1)
        with pytest.raises(ValueError):
            window_features(np.arange(8.0), 8, 0)


class TestSTIndexMatcher:
    def _build(self, count=15, seed=3, window=8):
        matcher = STIndexSubsequenceMatcher(window=window, n_coefficients=2)
        series = {}
        rng = np.random.default_rng(seed)
        for i in range(count):
            values = generate_random_walk(int(rng.integers(40, 120)), seed=rng)
            matcher.add(values, i)
            series[i] = values
        return matcher, series

    def test_exact_matches_vs_brute_force(self):
        matcher, series = self._build()
        rng = np.random.default_rng(4)
        for trial in range(8):
            source = series[int(rng.integers(0, len(series)))]
            length = int(rng.integers(8, 25))
            start = int(rng.integers(0, source.size - length + 1))
            query = source[start : start + length] + rng.normal(0, 0.01, length)
            for epsilon in (0.05, 0.2, 0.6):
                got = {
                    (m.sequence_id, m.offset)
                    for m in matcher.search(query, epsilon)
                }
                expected = brute_force_matches(series, query, epsilon)
                assert got == expected

    def test_match_distances_correct(self):
        matcher, series = self._build()
        query = series[0][5:20]
        matches = matcher.search(query, 0.5)
        for match in matches:
            block = series[match.sequence_id][
                match.offset : match.offset + 15
            ]
            assert match.distance == pytest.approx(
                float(np.linalg.norm(block - query))
            )

    def test_exact_subsequence_found_at_zero_epsilon(self):
        matcher, series = self._build()
        query = series[2][3:30]
        got = {(m.sequence_id, m.offset) for m in matcher.search(query, 0.0)}
        assert (2, 3) in got

    def test_query_shorter_than_window_rejected(self):
        matcher, _ = self._build(window=16)
        with pytest.raises(ValueError, match="shorter than window"):
            matcher.search(np.zeros(8), 0.1)

    def test_series_shorter_than_window_rejected(self):
        matcher = STIndexSubsequenceMatcher(window=16)
        with pytest.raises(ValueError, match="shorter than window"):
            matcher.add(np.zeros(8))

    def test_duplicate_id_rejected(self):
        matcher = STIndexSubsequenceMatcher(window=4)
        matcher.add(np.zeros(10), "a")
        with pytest.raises(KeyError):
            matcher.add(np.zeros(10), "a")

    def test_negative_epsilon_rejected(self):
        matcher, _ = self._build()
        with pytest.raises(ValueError):
            matcher.search(np.zeros(10), -0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            STIndexSubsequenceMatcher(window=0)
