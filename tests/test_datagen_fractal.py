"""Unit tests for the fractal sequence generator (Section 4.1)."""

import numpy as np
import pytest

from repro.datagen.fractal import generate_fractal_corpus, generate_fractal_sequence


class TestSingleSequence:
    def test_shape_and_bounds(self):
        seq = generate_fractal_sequence(100, 3, seed=1)
        assert len(seq) == 100
        assert seq.dimension == 3
        assert seq.points.min() >= 0.0
        assert seq.points.max() <= 1.0

    def test_length_one(self):
        seq = generate_fractal_sequence(1, 2, seed=1)
        assert len(seq) == 1

    def test_non_power_of_two_lengths(self):
        for length in (2, 3, 57, 100, 511):
            seq = generate_fractal_sequence(length, 2, seed=length)
            assert len(seq) == length

    def test_deterministic_under_seed(self):
        a = generate_fractal_sequence(64, 3, seed=42)
        b = generate_fractal_sequence(64, 3, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_fractal_sequence(64, 3, seed=1)
        b = generate_fractal_sequence(64, 3, seed=2)
        assert a != b

    def test_smoothness_scales_with_dev(self):
        """Smaller dev means smaller average inter-point jumps."""

        def roughness(dev):
            seq = generate_fractal_sequence(
                256, 2, dev=dev, seed=7, region_extent=None
            )
            return float(
                np.mean(np.linalg.norm(np.diff(seq.points, axis=0), axis=1))
            )

        assert roughness(0.05) < roughness(0.5)

    def test_region_extent_confines_trail(self):
        seq = generate_fractal_sequence(200, 3, region_extent=0.2, seed=3)
        span = seq.points.max(axis=0) - seq.points.min(axis=0)
        assert np.all(span <= 0.2 + 1e-9)

    def test_midpoint_recursion_interpolates(self):
        """With dev=0 the trail is exactly the chord between the endpoints."""
        seq = generate_fractal_sequence(
            65, 2, dev=0.0, seed=5, region_extent=None
        )
        start, end = seq.points[0], seq.points[-1]
        expected = start + (end - start) * np.linspace(0, 1, 65)[:, None]
        np.testing.assert_allclose(seq.points, expected, atol=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_fractal_sequence(0, 2)
        with pytest.raises(ValueError):
            generate_fractal_sequence(10, 0)
        with pytest.raises(ValueError):
            generate_fractal_sequence(10, 2, dev=1.0)
        with pytest.raises(ValueError):
            generate_fractal_sequence(10, 2, scale=1.0)
        with pytest.raises(ValueError):
            generate_fractal_sequence(10, 2, region_extent=0.0)
        with pytest.raises(ValueError):
            generate_fractal_sequence(10, 2, region_extent=1.5)


class TestCorpus:
    def test_count_and_ids(self):
        corpus = generate_fractal_corpus(10, seed=1)
        assert len(corpus) == 10
        assert [s.sequence_id for s in corpus] == [
            f"fractal-{i}" for i in range(10)
        ]

    def test_length_range_respected(self):
        corpus = generate_fractal_corpus(30, length_range=(56, 512), seed=2)
        lengths = [len(s) for s in corpus]
        assert all(56 <= n <= 512 for n in lengths)
        assert len(set(lengths)) > 1  # arbitrary lengths, not constant

    def test_reproducible(self):
        a = generate_fractal_corpus(5, seed=9)
        b = generate_fractal_corpus(5, seed=9)
        assert all(x == y for x, y in zip(a, b))

    def test_extent_range_none_is_paper_literal(self):
        corpus = generate_fractal_corpus(5, extent_range=None, seed=3)
        assert len(corpus) == 5

    def test_extent_range_bounds_footprints(self):
        corpus = generate_fractal_corpus(
            20, extent_range=(0.1, 0.2), seed=4
        )
        for seq in corpus:
            span = seq.points.max(axis=0) - seq.points.min(axis=0)
            assert np.all(span <= 0.2 + 1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_fractal_corpus(0)
        with pytest.raises(ValueError):
            generate_fractal_corpus(3, length_range=(10, 5))
        with pytest.raises(ValueError):
            generate_fractal_corpus(3, extent_range=(0.5, 0.2))
