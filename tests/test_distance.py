"""Unit tests for point/sequence distances (Definitions 2-3, Figure 1)."""

import numpy as np
import pytest

from repro.core.distance import (
    mean_distance,
    point_distance,
    sequence_distance,
    sliding_mean_distances,
)
from repro.core.sequence import MultidimensionalSequence


class TestPointDistance:
    def test_euclidean(self):
        assert point_distance([0.0, 0.0], [0.3, 0.4]) == pytest.approx(0.5)

    def test_zero_for_identical(self):
        assert point_distance([0.2, 0.7], [0.2, 0.7]) == 0.0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            point_distance([0.1], [0.1, 0.2])

    def test_one_dimensional(self):
        assert point_distance([0.2], [0.9]) == pytest.approx(0.7)


class TestMeanDistance:
    def test_equal_sequences_zero(self):
        seq = [[0.1, 0.2], [0.3, 0.4]]
        assert mean_distance(seq, seq) == 0.0

    def test_mean_of_pointwise(self):
        a = [[0.0, 0.0], [0.0, 0.0]]
        b = [[0.3, 0.4], [0.6, 0.8]]  # distances 0.5 and 1.0
        assert mean_distance(a, b) == pytest.approx(0.75)

    def test_accepts_sequences(self):
        a = MultidimensionalSequence([[0.1], [0.2]])
        b = MultidimensionalSequence([[0.2], [0.3]])
        assert mean_distance(a, b) == pytest.approx(0.1)

    def test_rejects_different_lengths(self):
        with pytest.raises(ValueError, match="equal-length"):
            mean_distance([[0.1]], [[0.1], [0.2]])

    def test_rejects_different_dimensions(self):
        with pytest.raises(ValueError):
            mean_distance([[0.1]], [[0.1, 0.2]])

    def test_symmetry(self):
        a = [[0.1, 0.9], [0.4, 0.2]]
        b = [[0.8, 0.3], [0.2, 0.6]]
        assert mean_distance(a, b) == pytest.approx(mean_distance(b, a))


class TestFigure1Intuition:
    """Example 1: a mean (not a sum) makes long similar pairs closer than
    short dissimilar pairs."""

    def test_mean_beats_sum_semantics(self):
        # S1, S2: nine point pairs, each 0.05 apart -> sum 0.45, mean 0.05.
        s1 = [[i / 10.0, 0.2] for i in range(9)]
        s2 = [[i / 10.0, 0.25] for i in range(9)]
        # S3, S4: three point pairs, each 0.4 apart -> sum 1.2, mean 0.4.
        s3 = [[i / 10.0, 0.2] for i in range(3)]
        s4 = [[i / 10.0, 0.6] for i in range(3)]
        sum_12 = 9 * 0.05
        sum_34 = 3 * 0.4
        assert sum_12 < sum_34  # the naive sum would *not* reverse here...
        # ...so construct the paper's inversion explicitly: more points.
        s1_long = [[i / 100.0, 0.2] for i in range(90)]
        s2_long = [[i / 100.0, 0.25] for i in range(90)]
        assert 90 * 0.05 > sum_34  # summed distance calls the similar pair worse
        assert mean_distance(s1_long, s2_long) < mean_distance(s3, s4)
        assert mean_distance(s1, s2) < mean_distance(s3, s4)

    def test_mean_is_length_invariant_for_constant_offset(self):
        short = mean_distance([[0.0]] * 3, [[0.1]] * 3)
        long = mean_distance([[0.0]] * 30, [[0.1]] * 30)
        assert short == pytest.approx(long)


class TestSlidingMeanDistances:
    def test_number_of_alignments(self):
        short = [[0.1]] * 3
        long = [[0.0]] * 7
        assert sliding_mean_distances(short, long).shape == (5,)

    def test_exact_alignment_found(self):
        long = MultidimensionalSequence([[0.1], [0.5], [0.6], [0.7], [0.2]])
        short = MultidimensionalSequence([[0.5], [0.6]])
        distances = sliding_mean_distances(short, long)
        assert distances[1] == pytest.approx(0.0)
        assert np.all(distances >= 0.0)

    def test_values_match_manual_dmean(self):
        rng = np.random.default_rng(7)
        long = rng.random((10, 2))
        short = rng.random((4, 2))
        distances = sliding_mean_distances(short, long)
        for j in range(7):
            assert distances[j] == pytest.approx(
                mean_distance(short, long[j : j + 4])
            )

    def test_short_longer_than_long_rejected(self):
        with pytest.raises(ValueError, match="longer"):
            sliding_mean_distances([[0.1]] * 3, [[0.1]] * 2)

    def test_equal_lengths_single_alignment(self):
        a = [[0.1], [0.2]]
        b = [[0.3], [0.4]]
        distances = sliding_mean_distances(a, b)
        assert distances.shape == (1,)
        assert distances[0] == pytest.approx(0.2)


class TestSequenceDistance:
    def test_equal_length_is_dmean(self):
        a = [[0.0, 0.0], [1.0, 1.0]]
        b = [[0.3, 0.4], [1.0, 1.0]]
        assert sequence_distance(a, b) == pytest.approx(mean_distance(a, b))

    def test_subsequence_has_zero_distance(self):
        """Definition 3: a query cut from a sequence is at distance 0."""
        rng = np.random.default_rng(11)
        data = rng.random((30, 3))
        query = data[8:15]
        assert sequence_distance(query, data) == pytest.approx(0.0)

    def test_symmetric_across_argument_order(self):
        rng = np.random.default_rng(13)
        a = rng.random((5, 2))
        b = rng.random((12, 2))
        assert sequence_distance(a, b) == pytest.approx(sequence_distance(b, a))

    def test_minimum_over_alignments(self):
        long = [[0.0], [0.9], [0.91], [0.0]]
        short = [[0.9], [0.9]]
        expected = min(
            mean_distance(short, long[j : j + 2]) for j in range(3)
        )
        assert sequence_distance(short, long) == pytest.approx(expected)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            sequence_distance([[0.1]], [[0.1, 0.2]])

    def test_single_point_query(self):
        long = [[0.1], [0.5], [0.9]]
        assert sequence_distance([[0.52]], long) == pytest.approx(0.02)
