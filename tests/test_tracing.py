"""Unit tests for the query-tracing wrapper."""

import json

import pytest

from repro.analysis.tracing import (
    SERVICE_TRACE_FIELDS,
    TRACE_FIELDS,
    TracingSearch,
    read_trace,
)
from repro.core.database import SequenceDatabase
from repro.core.search import SimilaritySearch


@pytest.fixture
def engine(rng):
    db = SequenceDatabase(dimension=2)
    for i in range(6):
        db.add(rng.random((30, 2)), sequence_id=i)
    return SimilaritySearch(db)


class TestTracingSearch:
    def test_results_unchanged(self, engine, rng):
        traced = TracingSearch(engine)
        query = engine.database.sequence(1).points[3:13]
        direct = engine.search(query, 0.2)
        via_trace = traced.search(query, 0.2)
        assert via_trace.answers == direct.answers
        assert via_trace.solution_intervals == direct.solution_intervals

    def test_in_memory_records(self, engine, rng):
        traced = TracingSearch(engine, clock=lambda: 1234.5)
        traced.search(rng.random((8, 2)), 0.1)
        traced.search(rng.random((12, 2)), 0.3)
        assert len(traced.records) == 2
        first = traced.records[0]
        assert first["timestamp"] == 1234.5
        assert first["epsilon"] == 0.1
        assert first["query_points"] == 8
        assert first["candidates"] >= first["answers"]
        assert first["total_ms"] > 0

    def test_file_trace_round_trip(self, engine, rng, tmp_path):
        path = tmp_path / "queries.jsonl"
        traced = TracingSearch(engine, path=path)
        for _ in range(3):
            traced.search(rng.random((10, 2)), 0.15)
        records = read_trace(path)
        assert len(records) == 3
        assert records == traced.records

    def test_appends_across_instances(self, engine, rng, tmp_path):
        path = tmp_path / "queries.jsonl"
        TracingSearch(engine, path=path).search(rng.random((5, 2)), 0.1)
        TracingSearch(engine, path=path).search(rng.random((5, 2)), 0.2)
        assert len(read_trace(path)) == 2

    def test_passthrough_of_other_methods(self, engine, rng):
        traced = TracingSearch(engine)
        hits = traced.knn(rng.random((6, 2)), 2)
        assert len(hits) == 2
        assert traced.database is engine.database
        assert traced.records == []  # only search() is traced

    def test_type_checked(self):
        with pytest.raises(TypeError):
            TracingSearch("not an engine")

    def test_malformed_trace_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="malformed"):
            read_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert len(read_trace(path)) == 2

    def test_records_are_json_serialisable(self, engine, rng):
        traced = TracingSearch(engine)
        traced.search(rng.random((7, 2)), 0.25)
        json.dumps(traced.records)  # must not raise


class TestTraceSchema:
    """The library and the serving layer share one trace schema.

    ``TRACE_FIELDS`` is the contract: ``search_record`` writes exactly
    those keys, and the engine's per-request records are exactly
    ``SERVICE_TRACE_FIELDS`` (the same keys plus the serving context).
    A drift on either side fails here, not in someone's trace-analysis
    notebook.
    """

    def test_search_record_keys_are_exactly_trace_fields(self, engine, rng):
        traced = TracingSearch(engine)
        traced.search(rng.random((9, 2)), 0.2)
        assert tuple(traced.records[0].keys()) == TRACE_FIELDS

    def test_service_fields_extend_trace_fields(self):
        assert SERVICE_TRACE_FIELDS[: len(TRACE_FIELDS)] == TRACE_FIELDS
        assert set(SERVICE_TRACE_FIELDS) - set(TRACE_FIELDS) == {
            "op",
            "cache",
            "snapshot_version",
        }

    def test_engine_trace_records_match_service_schema(self, rng, tmp_path):
        from repro.service import QueryEngine

        db = SequenceDatabase(dimension=2)
        for i in range(4):
            db.add(rng.random((20, 2)), sequence_id=i)
        trace_path = tmp_path / "engine.jsonl"
        with QueryEngine(db, workers=1, trace_path=trace_path) as service:
            service.search(rng.random((8, 2)), 0.2)
        records = read_trace(trace_path)
        assert records, "engine wrote no trace records"
        assert set(records[0].keys()) == set(SERVICE_TRACE_FIELDS)
