"""Unit tests for the client's retry policy and circuit breaker.

Backoff schedules are asserted with a seeded RNG and a recorded sleep
seam (no real sleeping); the breaker runs on an injectable fake clock, so
every state transition is deterministic.  The end-to-end dropped-response
retry lives in ``test_service_faults.py``.
"""

import random
import socket

import pytest

from repro.service import (
    CircuitBreaker,
    CircuitOpen,
    Overloaded,
    RetryPolicy,
    ServiceClient,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_client(**kwargs) -> ServiceClient:
    """A client whose base_url is never dialled by these tests."""
    return ServiceClient("http://127.0.0.1:1", timeout=1.0, **kwargs)


class TestRetryPolicy:
    def test_deterministic_caps_without_jitter(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=False
        )
        rng = random.Random(0)
        delays = [policy.delay(i, rng) for i in range(4)]
        assert delays == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.5),  # capped
        ]

    def test_full_jitter_stays_within_the_cap(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0)
        rng = random.Random(42)
        for retry_index in range(5):
            cap = min(1.0, 0.1 * 2.0**retry_index)
            for _ in range(50):
                delay = policy.delay(retry_index, rng)
                assert 0.0 <= delay <= cap

    def test_seeded_jitter_is_reproducible(self):
        policy = RetryPolicy(seed=7)
        a = [policy.delay(i, random.Random(policy.seed)) for i in range(3)]
        b = [policy.delay(i, random.Random(policy.seed)) for i in range(3)]
        assert a == b

    def test_retry_after_is_a_lower_bound(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.02)
        rng = random.Random(0)
        assert policy.delay(0, rng, retry_after=0.75) >= 0.75

    def test_retry_after_ignored_when_disabled(self):
        policy = RetryPolicy(
            base_delay=0.01, max_delay=0.02, jitter=False,
            honor_retry_after=False,
        )
        rng = random.Random(0)
        assert policy.delay(0, rng, retry_after=9.0) == pytest.approx(0.01)

    def test_delay_accepts_a_seeded_numpy_generator(self):
        from repro.util.rng import ensure_rng

        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0)
        a = [policy.delay(i, ensure_rng(5)) for i in range(4)]
        b = [policy.delay(i, ensure_rng(5)) for i in range(4)]
        assert a == b
        for retry_index, delay in enumerate(a):
            assert 0.0 <= delay <= min(1.0, 0.1 * 2.0**retry_index)

    def test_client_rng_seed_makes_jitter_reproducible(self):
        import numpy as np

        first = make_client(rng=7)
        second = make_client(rng=7)
        assert isinstance(first._rng, np.random.Generator)
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0)
        assert [policy.delay(i, first._rng) for i in range(5)] == [
            policy.delay(i, second._rng) for i in range(5)
        ]

    def test_client_reuses_a_shared_generator(self):
        import numpy as np

        rng = np.random.default_rng(3)
        assert make_client(rng=rng)._rng is rng

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError, match="retry_index"):
            RetryPolicy().delay(-1, random.Random(0))


class TestRetryLoop:
    def _stubbed(self, client, outcomes):
        """Replace the transport with a scripted outcome sequence."""
        calls = []

        def fake_request_once(method, path, body, deadline=None):
            calls.append((method, path))
            outcome = outcomes[min(len(calls), len(outcomes)) - 1]
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        client._request_once = fake_request_once
        return calls

    def test_retries_overloaded_reads_honoring_retry_after(self):
        client = make_client(
            retry=RetryPolicy(
                max_attempts=3, base_delay=0.01, max_delay=0.02, seed=3
            )
        )
        slept = []
        client._sleep = slept.append
        overloaded = Overloaded(
            "busy", queue_depth=4, capacity=4, retry_after=0.5
        )
        calls = self._stubbed(
            client, [overloaded, overloaded, {"status": "ok"}]
        )
        assert client.healthz() == {"status": "ok"}
        assert len(calls) == 3
        # Retry-After (0.5s) dominates the tiny backoff caps.
        assert len(slept) == 2
        assert all(wait >= 0.5 for wait in slept)
        stats = client.transport_stats()
        assert stats["retries"] == 2
        assert stats["overloaded"] == 2
        assert stats["retry_wait_s"] >= 1.0

    def test_raises_after_exhausting_attempts(self):
        client = make_client(
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=False)
        )
        client._sleep = lambda _: None
        overloaded = Overloaded("busy", queue_depth=1, capacity=1)
        calls = self._stubbed(client, [overloaded, overloaded])
        with pytest.raises(Overloaded):
            client.stats()
        assert len(calls) == 2

    def test_retries_transport_errors(self):
        client = make_client(
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=False)
        )
        client._sleep = lambda _: None
        calls = self._stubbed(
            client, [ConnectionResetError("reset"), {"status": "ok"}]
        )
        assert client.healthz() == {"status": "ok"}
        assert len(calls) == 2

    def test_non_retryable_errors_pass_straight_through(self):
        client = make_client(retry=RetryPolicy(max_attempts=5))
        client._sleep = lambda _: None
        calls = self._stubbed(client, [KeyError("missing")])
        with pytest.raises(KeyError):
            client.healthz()
        assert len(calls) == 1

    def test_writes_are_never_retried(self):
        client = make_client(
            retry=RetryPolicy(max_attempts=5, base_delay=0.0)
        )
        client._sleep = lambda _: None
        overloaded = Overloaded("busy", queue_depth=1, capacity=1)
        calls = self._stubbed(client, [overloaded])
        with pytest.raises(Overloaded):
            client.insert([[0.1, 0.2]], sequence_id="w")
        assert len(calls) == 1
        calls.clear()
        with pytest.raises(Overloaded):
            client.remove("w")
        assert len(calls) == 1

    def test_no_policy_means_no_retry(self):
        client = make_client()
        overloaded = Overloaded("busy", queue_depth=1, capacity=1)
        calls = self._stubbed(client, [overloaded, {"status": "ok"}])
        with pytest.raises(Overloaded):
            client.healthz()
        assert len(calls) == 1


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout=10.0, clock=clock
        )
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpen) as caught:
            breaker.before_request()
        assert caught.value.retry_after == pytest.approx(10.0)

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        breaker.before_request()  # the probe is let through
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_allows_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        breaker.before_request()
        with pytest.raises(CircuitOpen, match="probe already in flight"):
            breaker.before_request()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=5, reset_timeout=5.0, clock=clock
        )
        for _ in range(5):
            breaker.record_failure()
        clock.advance(5.0)
        breaker.before_request()
        breaker.record_failure()  # probe failed: back to open immediately
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpen):
            breaker.before_request()
        assert breaker.stats()["opens"] == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_timeout"):
            CircuitBreaker(reset_timeout=0.0)


class TestBreakerIntegration:
    @pytest.fixture
    def dead_port(self):
        """A port with no listener (bound then closed, so it refuses)."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_breaker_fast_fails_after_transport_failures(self, dead_port):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0)
        client = ServiceClient(
            f"http://127.0.0.1:{dead_port}", timeout=1.0, breaker=breaker
        )
        for _ in range(2):
            with pytest.raises(Exception):  # noqa: B017 - refused/unreachable
                client.healthz()
        stats = client.transport_stats()
        assert stats["attempts"] == 2
        assert stats["circuit"]["state"] == CircuitBreaker.OPEN
        # The circuit now rejects locally: no new attempt hits the wire.
        with pytest.raises(CircuitOpen):
            client.healthz()
        stats = client.transport_stats()
        assert stats["attempts"] == 2
        assert stats["circuit_open_rejections"] == 1

    def test_circuit_open_is_not_retried(self, dead_port):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        client = ServiceClient(
            f"http://127.0.0.1:{dead_port}",
            timeout=1.0,
            retry=RetryPolicy(max_attempts=4, base_delay=0.0),
            breaker=breaker,
        )
        client._sleep = lambda _: None
        with pytest.raises(Exception):  # noqa: B017 - trips the breaker
            client.healthz()
        before = client.transport_stats()["attempts"]
        with pytest.raises(CircuitOpen):
            client.healthz()
        # A CircuitOpen rejection never consumed a transport attempt.
        assert client.transport_stats()["attempts"] == before


class TestTypedErrorProvenance:
    """Every typed rebuild of a server payload chains its transport cause."""

    @pytest.mark.parametrize(
        "status,detail",
        [
            (429, {"message": "busy", "queue_depth": 3, "capacity": 4}),
            (504, {"message": "late", "timeout": 0.25}),
            (503, {"message": "gone", "type": "ShardUnavailable"}),
            (500, {"message": "boom"}),
            (400, {"message": "bad epsilon"}),
        ],
    )
    def test_raise_typed_chains_the_transport_cause(self, status, detail):
        from repro.service.client import _raise_typed

        cause = OSError("connection reset under the payload")
        with pytest.raises(Exception) as info:  # noqa: B017 - type varies by status
            _raise_typed(status, detail, cause=cause)
        assert info.value.__cause__ is cause

    def test_raise_typed_without_cause_stays_unchained(self):
        from repro.service.client import _raise_typed

        with pytest.raises(Overloaded) as info:
            _raise_typed(429, {"message": "busy"})
        assert info.value.__cause__ is None

    def test_http_error_rebuild_chains_end_to_end(self):
        """A served error status arrives typed with the HTTPError chained."""
        import json
        import threading
        from http.server import BaseHTTPRequestHandler, HTTPServer
        from urllib.error import HTTPError

        class AlwaysBusy(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                payload = json.dumps(
                    {"error": {"message": "busy", "queue_depth": 9}}
                ).encode()
                self.send_response(429)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args):
                pass

        server = HTTPServer(("127.0.0.1", 0), AlwaysBusy)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{server.server_port}", timeout=2.0
            )
            with pytest.raises(Overloaded) as info:
                client.healthz()
            assert isinstance(info.value.__cause__, HTTPError)
            assert info.value.__cause__.code == 429
        finally:
            server.shutdown()
            thread.join()
            server.server_close()
