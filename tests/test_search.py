"""Integration tests for the three-phase SIMILARITY_SEARCH algorithm."""

import numpy as np
import pytest

from repro.core.database import SequenceDatabase
from repro.core.distance import sequence_distance
from repro.core.search import SimilaritySearch
from repro.core.sequence import MultidimensionalSequence


def smooth_walk(rng, length, dimension=3, step=0.03):
    """A clipped random walk: realistically smooth multidimensional data."""
    steps = rng.normal(0.0, step, size=(length, dimension))
    walk = np.clip(0.5 + np.cumsum(steps, axis=0), 0.0, 1.0)
    return walk


@pytest.fixture
def populated(rng):
    db = SequenceDatabase(dimension=3, max_points=16)
    sequences = {}
    for i in range(25):
        walk = smooth_walk(rng, int(rng.integers(40, 120)))
        sequences[i] = MultidimensionalSequence(walk, sequence_id=i)
        db.add(sequences[i])
    return db, sequences


class TestCorrectness:
    def test_no_false_dismissals(self, populated, rng):
        """Lemmas 1-3: every truly relevant sequence must survive both
        pruning phases, at several thresholds and query lengths."""
        db, sequences = populated
        engine = SimilaritySearch(db)
        for trial in range(6):
            source = sequences[int(rng.integers(0, 25))]
            length = int(rng.integers(10, min(40, len(source))))
            start = int(rng.integers(0, len(source) - length + 1))
            noise = rng.normal(0, 0.02, size=(length, 3))
            query = np.clip(source.points[start : start + length] + noise, 0, 1)
            for epsilon in (0.05, 0.15, 0.3):
                result = engine.search(query, epsilon, find_intervals=False)
                relevant = {
                    sid
                    for sid, seq in sequences.items()
                    if sequence_distance(query, seq) <= epsilon
                }
                assert relevant <= set(result.candidates)
                assert relevant <= set(result.answers)

    def test_answers_subset_of_candidates(self, populated, rng):
        db, sequences = populated
        engine = SimilaritySearch(db)
        query = sequences[3].points[5:25]
        result = engine.search(query, 0.1)
        assert set(result.answers) <= set(result.candidates)

    def test_exact_subsequence_always_found(self, populated):
        db, sequences = populated
        engine = SimilaritySearch(db)
        query = sequences[7].points[10:30]
        result = engine.search(query, 0.01)
        assert 7 in result.answers
        assert 7 in result.solution_intervals

    def test_self_match_at_zero_epsilon(self, populated):
        db, sequences = populated
        engine = SimilaritySearch(db)
        result = engine.search(sequences[0].points, 0.0)
        assert 0 in result.answers

    def test_phase3_prunes_at_least_as_hard(self, populated, rng):
        """Dnorm >= Dmbr minimum (Lemma 3), so AS_norm cannot exceed AS_mbr."""
        db, sequences = populated
        engine = SimilaritySearch(db)
        for epsilon in (0.05, 0.1, 0.2):
            query = smooth_walk(rng, 30)
            result = engine.search(query, epsilon, find_intervals=False)
            assert len(result.answers) <= len(result.candidates)

    def test_long_query(self, populated, rng):
        """A query longer than data sequences still works (Definition 3
        slides the shorter sequence, here the data)."""
        db, sequences = populated
        engine = SimilaritySearch(db)
        query = smooth_walk(rng, 400)
        result = engine.search(query, 0.25, find_intervals=False)
        relevant = {
            sid
            for sid, seq in sequences.items()
            if sequence_distance(query, seq) <= 0.25
        }
        assert relevant <= set(result.answers)


class TestSolutionIntervals:
    def test_intervals_only_for_answers(self, populated):
        db, sequences = populated
        engine = SimilaritySearch(db)
        result = engine.search(sequences[2].points[0:20], 0.05)
        assert set(result.solution_intervals) == set(result.answers)

    def test_intervals_within_sequence_bounds(self, populated):
        db, sequences = populated
        engine = SimilaritySearch(db)
        result = engine.search(sequences[2].points[0:20], 0.15)
        for sid, interval in result.solution_intervals.items():
            length = len(db.sequence(sid))
            for start, stop in interval.intervals:
                assert 0 <= start < stop <= length

    def test_interval_recall_on_exact_match(self, populated):
        """The approximate SI must cover most of the exact one (paper: >=98%
        at corpus scale; assert a slightly looser bound per query here)."""
        from repro.baselines.sequential import exact_solution_interval

        db, sequences = populated
        engine = SimilaritySearch(db)
        query = sequences[11].points[5:35]
        epsilon = 0.1
        result = engine.search(query, epsilon)
        exact = exact_solution_interval(query, sequences[11], epsilon)
        assert len(exact) > 0
        approx = result.solution_intervals[11]
        covered = approx.intersection_size(exact)
        assert covered / len(exact) >= 0.9

    def test_find_intervals_false_skips_assembly(self, populated):
        db, sequences = populated
        engine = SimilaritySearch(db)
        result = engine.search(
            sequences[2].points[0:20], 0.15, find_intervals=False
        )
        assert result.solution_intervals == {}
        assert len(result.answers) >= 1


class TestStatsAndValidation:
    def test_stats_populated(self, populated):
        db, sequences = populated
        engine = SimilaritySearch(db)
        result = engine.search(sequences[1].points[0:15], 0.1)
        stats = result.stats
        assert stats.query_segments >= 1
        assert stats.node_accesses > 0
        assert stats.candidates_after_dmbr == len(result.candidates)
        assert stats.answers_after_dnorm == len(result.answers)
        assert stats.total_seconds > 0

    def test_validation(self, populated, rng):
        db, _ = populated
        engine = SimilaritySearch(db)
        with pytest.raises(ValueError, match="epsilon"):
            engine.search(smooth_walk(rng, 10), -0.1)
        with pytest.raises(ValueError, match="dimension"):
            engine.search(rng.random((10, 2)), 0.1)
        with pytest.raises(TypeError):
            SimilaritySearch("not a database")

    def test_result_contains(self, populated):
        db, sequences = populated
        engine = SimilaritySearch(db)
        result = engine.search(sequences[4].points[0:12], 0.05)
        assert 4 in result

    def test_candidate_within_matches_lower_bound(self, populated, rng):
        """The early-exit membership test agrees with the exact bound at
        every threshold, including exactly at the bound value."""
        db, _ = populated
        engine = SimilaritySearch(db)
        partition = engine.search(smooth_walk(rng, 30), 0.2).query_partition
        for sid in list(db.ids())[:8]:
            bound = engine.candidate_lower_bound(partition, sid)
            for epsilon in (bound / 2, bound, bound * 2, 0.0, 0.5):
                assert engine.candidate_within(partition, sid, epsilon) == (
                    bound <= epsilon
                )
        with pytest.raises(ValueError, match="epsilon"):
            engine.candidate_within(partition, 0, -0.5)


class TestKnn:
    def test_knn_matches_brute_force(self, populated, rng):
        db, sequences = populated
        engine = SimilaritySearch(db)
        query = smooth_walk(rng, 25)
        exact = sorted(
            (sequence_distance(query, seq), sid)
            for sid, seq in sequences.items()
        )
        for k in (1, 3, 7):
            got = engine.knn(query, k)
            np.testing.assert_allclose(
                [d for d, _ in got], [d for d, _ in exact[:k]], atol=1e-12
            )

    def test_knn_of_stored_sequence_finds_itself(self, populated):
        db, sequences = populated
        engine = SimilaritySearch(db)
        got = engine.knn(sequences[9].points[3:23], 1)
        assert got[0][1] == 9
        assert got[0][0] == pytest.approx(0.0)

    def test_knn_k_larger_than_database(self, populated, rng):
        db, _ = populated
        engine = SimilaritySearch(db)
        got = engine.knn(smooth_walk(rng, 10), 100)
        assert len(got) == len(db)

    def test_knn_validation(self, populated, rng):
        db, _ = populated
        engine = SimilaritySearch(db)
        with pytest.raises(ValueError):
            engine.knn(smooth_walk(rng, 10), 0)
        with pytest.raises(ValueError, match="dimension"):
            engine.knn(rng.random((5, 2)), 1)
