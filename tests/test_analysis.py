"""Unit tests for the metrics, experiment runner and report formatting."""

import pytest

from repro.analysis.experiment import (
    PAPER_THRESHOLDS,
    ExperimentConfig,
    ExperimentRunner,
)
from repro.analysis.metrics import (
    interval_recall,
    precision,
    pruning_rate,
    recall,
    response_time_ratio,
    solution_interval_pruning_rate,
)
from repro.analysis.report import figure_table, format_table, paper_band_note, series
from repro.core.solution_interval import IntervalSet


class TestPruningRate:
    def test_paper_formula(self):
        # 100 sequences, 20 retrieved, 10 relevant: pruned 80 of 90.
        assert pruning_rate(100, 20, 10) == pytest.approx(80 / 90)

    def test_perfect_filter(self):
        assert pruning_rate(100, 10, 10) == 1.0

    def test_useless_filter(self):
        assert pruning_rate(100, 100, 10) == 0.0

    def test_everything_relevant(self):
        assert pruning_rate(50, 50, 50) == 1.0

    def test_false_dismissal_detected(self):
        with pytest.raises(ValueError, match="dismissed"):
            pruning_rate(100, 5, 10)

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            pruning_rate(10, 11, 2)
        with pytest.raises(ValueError):
            pruning_rate(10, 5, 11)


class TestSiPruningRate:
    def test_formula(self):
        assert solution_interval_pruning_rate(1000, 300, 100) == pytest.approx(
            700 / 900
        )

    def test_nothing_prunable(self):
        assert solution_interval_pruning_rate(100, 100, 100) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            solution_interval_pruning_rate(100, 150, 10)
        with pytest.raises(ValueError):
            solution_interval_pruning_rate(100, 50, 150)


class TestRecallPrecision:
    def test_recall(self):
        assert recall({1, 2, 3}, {2, 3, 4}) == pytest.approx(2 / 3)
        assert recall(set(), set()) == 1.0
        assert recall(set(), {1}) == 0.0

    def test_precision(self):
        assert precision({1, 2, 3, 4}, {2, 3}) == pytest.approx(0.5)
        assert precision(set(), {1}) == 1.0

    def test_interval_recall(self):
        approx = IntervalSet([(0, 10)])
        exact = IntervalSet([(5, 15)])
        assert interval_recall(approx, exact) == pytest.approx(0.5)
        assert interval_recall(IntervalSet(), IntervalSet()) == 1.0


class TestResponseRatio:
    def test_basic(self):
        assert response_time_ratio(10.0, 0.5) == pytest.approx(20.0)

    def test_zero_method_time(self):
        assert response_time_ratio(1.0, 0.0) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            response_time_ratio(-1.0, 1.0)


class TestExperimentConfig:
    def test_paper_presets_match_table2(self):
        synthetic = ExperimentConfig.paper_synthetic()
        video = ExperimentConfig.paper_video()
        assert synthetic.n_sequences == 1600
        assert video.n_sequences == 1408
        assert synthetic.length_range == (56, 512)
        assert synthetic.queries_per_threshold == 20
        assert synthetic.thresholds == PAPER_THRESHOLDS
        assert PAPER_THRESHOLDS[0] == 0.05
        assert PAPER_THRESHOLDS[-1] == 0.50
        assert len(PAPER_THRESHOLDS) == 10

    def test_overrides(self):
        config = ExperimentConfig.paper_synthetic(n_sequences=10)
        assert config.n_sequences == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(dataset="images").validate()
        with pytest.raises(ValueError):
            ExperimentConfig(n_sequences=0).validate()
        with pytest.raises(ValueError):
            ExperimentConfig(thresholds=()).validate()
        with pytest.raises(ValueError):
            ExperimentConfig(thresholds=(-0.1,)).validate()
        with pytest.raises(ValueError):
            ExperimentConfig(queries_per_threshold=0).validate()


class TestExperimentRunner:
    @pytest.fixture(scope="class")
    def rows(self):
        config = ExperimentConfig.smoke_synthetic(
            n_sequences=40,
            queries_per_threshold=2,
            thresholds=(0.1, 0.3),
            length_range=(40, 80),
        )
        return ExperimentRunner(config).run()

    def test_one_row_per_threshold(self, rows):
        assert [row.epsilon for row in rows] == [0.1, 0.3]

    def test_no_false_dismissals_in_aggregate(self, rows):
        for row in rows:
            assert row.answer_recall == pytest.approx(1.0)

    def test_rates_are_fractions(self, rows):
        for row in rows:
            assert 0.0 <= row.pr_dmbr <= 1.0
            assert 0.0 <= row.pr_dnorm <= 1.0
            assert 0.0 <= row.si_pruning <= 1.0
            assert 0.0 <= row.si_recall <= 1.0

    def test_dnorm_prunes_at_least_dmbr(self, rows):
        for row in rows:
            assert row.pr_dnorm >= row.pr_dmbr - 1e-12

    def test_counts_ordered(self, rows):
        for row in rows:
            assert row.mean_relevant <= row.mean_answers <= row.mean_candidates

    def test_times_recorded(self, rows):
        for row in rows:
            assert row.method_seconds > 0
            assert row.scan_seconds > 0
            assert row.response_ratio == pytest.approx(
                row.scan_seconds / row.method_seconds
            )

    def test_video_dataset_supported(self):
        config = ExperimentConfig.smoke_video(
            n_sequences=20, queries_per_threshold=1, thresholds=(0.2,),
            length_range=(40, 60),
        )
        rows = ExperimentRunner(config).run()
        assert len(rows) == 1
        assert rows[0].answer_recall == pytest.approx(1.0)


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], [30, 0.125]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "2.500" in lines[2]
        assert "0.125" in lines[3]

    def test_figure_table_and_band(self):
        config = ExperimentConfig.smoke_synthetic(
            n_sequences=30, queries_per_threshold=1, thresholds=(0.2,),
            length_range=(40, 60),
        )
        rows = ExperimentRunner(config).run()
        text = figure_table("fig6", rows)
        assert "pr_dmbr" in text
        assert "paper:" in text
        assert paper_band_note("fig10").startswith("paper:")

    def test_unknown_figure(self):
        with pytest.raises(ValueError):
            paper_band_note("fig99")
        with pytest.raises(ValueError):
            figure_table("fig99", [])

    def test_series_extraction(self):
        config = ExperimentConfig.smoke_synthetic(
            n_sequences=20, queries_per_threshold=1, thresholds=(0.1,),
            length_range=(40, 60),
        )
        rows = ExperimentRunner(config).run()
        extracted = series(rows, ["pr_dmbr"])
        assert extracted[0][0] == 0.1
        assert isinstance(extracted[0][1], float)


class TestSparklines:
    def test_sparkline_monotone(self):
        from repro.analysis.report import sparkline

        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_sparkline_constant(self):
        from repro.analysis.report import sparkline

        assert sparkline([3, 3, 3]) == "▅▅▅"

    def test_sparkline_fixed_bounds_clamp(self):
        from repro.analysis.report import sparkline

        line = sparkline([-10, 0.5, 10], low=0.0, high=1.0)
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_sparkline_empty_rejected(self):
        import pytest as _pytest

        from repro.analysis.report import sparkline

        with _pytest.raises(ValueError):
            sparkline([])

    def test_sparkline_panel(self):
        from repro.analysis.report import sparkline_panel

        config = ExperimentConfig.smoke_synthetic(
            n_sequences=20,
            queries_per_threshold=1,
            thresholds=(0.1, 0.3),
            length_range=(40, 60),
        )
        rows = ExperimentRunner(config).run()
        panel = sparkline_panel(rows, ["pr_dmbr", "si_recall"])
        assert "pr_dmbr" in panel
        assert "si_recall" in panel

    def test_sparkline_panel_empty_rejected(self):
        import pytest as _pytest

        from repro.analysis.report import sparkline_panel

        with _pytest.raises(ValueError):
            sparkline_panel([], ["pr_dmbr"])
