"""Unit tests for the related-work extensions (transforms + time warping)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.distance import mean_distance, sequence_distance
from repro.core.sequence import MultidimensionalSequence
from repro.extensions.transforms import (
    affine_transform,
    downsample,
    moving_average,
    reversed_sequence,
)
from repro.extensions.warping import time_warping_distance, warping_path


def unit_pair(length=st.integers(2, 20), dimension=2):
    array = length.flatmap(
        lambda n: arrays(
            np.float64,
            (n, dimension),
            elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
        )
    )
    return st.tuples(array, array)


class TestMovingAverage:
    def test_shape(self):
        seq = MultidimensionalSequence(np.linspace(0, 1, 10).reshape(-1, 1))
        out = moving_average(seq, 3)
        assert len(out) == 8

    def test_values(self):
        seq = MultidimensionalSequence([[0.0], [0.3], [0.6]])
        out = moving_average(seq, 2)
        np.testing.assert_allclose(out.points.ravel(), [0.15, 0.45])

    def test_window_one_is_identity(self):
        seq = MultidimensionalSequence([[0.2, 0.4], [0.6, 0.8]])
        assert moving_average(seq, 1) == seq

    def test_smooths(self, rng):
        noisy = np.clip(0.5 + rng.normal(0, 0.1, (200, 1)), 0, 1)
        smoothed = moving_average(noisy, 10)
        assert smoothed.points.std() < noisy.std()

    def test_validation(self):
        seq = MultidimensionalSequence([[0.1], [0.2]])
        with pytest.raises(ValueError):
            moving_average(seq, 0)
        with pytest.raises(ValueError):
            moving_average(seq, 3)

    @given(
        st.integers(4, 16).flatmap(
            lambda n: st.tuples(
                arrays(np.float64, (n, 2),
                       elements=st.floats(0.0, 1.0, allow_nan=False, width=64)),
                arrays(np.float64, (n, 2),
                       elements=st.floats(0.0, 1.0, allow_nan=False, width=64)),
            )
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_safety_contraction(self, pair):
        """The summed distance contracts: (m-w+1) * Dmean(T(a), T(b)) <=
        m * Dmean(a, b) — the 'safe transformation' bound."""
        a, b = pair
        window = 3
        m = a.shape[0]
        smoothed = mean_distance(
            moving_average(a, window), moving_average(b, window)
        )
        assert (m - window + 1) * smoothed <= m * mean_distance(a, b) + 1e-9


class TestReversedSequence:
    def test_involution(self):
        seq = MultidimensionalSequence([[0.1], [0.5], [0.9]])
        assert reversed_sequence(reversed_sequence(seq)) == seq

    def test_order(self):
        seq = MultidimensionalSequence([[0.1], [0.9]])
        np.testing.assert_allclose(
            reversed_sequence(seq).points.ravel(), [0.9, 0.1]
        )

    @given(unit_pair())
    @settings(max_examples=40, deadline=None)
    def test_isometry(self, pair):
        a, b = pair
        if a.shape[0] != b.shape[0]:
            a = a[: min(a.shape[0], b.shape[0])]
            b = b[: a.shape[0]]
        assert mean_distance(
            reversed_sequence(a), reversed_sequence(b)
        ) == pytest.approx(mean_distance(a, b))


class TestAffineTransform:
    def test_scaling_distances(self):
        a = np.array([[0.2], [0.4]])
        b = np.array([[0.3], [0.1]])
        scaled_distance = mean_distance(
            affine_transform(a, 0.5, 0.1, clip=False),
            affine_transform(b, 0.5, 0.1, clip=False),
        )
        assert scaled_distance == pytest.approx(0.5 * mean_distance(a, b))

    def test_clip_keeps_unit_cube(self):
        out = affine_transform([[0.9, 0.9]], 2.0, 0.0)
        assert out.points.max() <= 1.0


class TestDownsample:
    def test_every_kth(self):
        seq = MultidimensionalSequence(np.arange(10).reshape(-1, 1) / 10)
        out = downsample(seq, 3)
        np.testing.assert_allclose(out.points.ravel(), [0.0, 0.3, 0.6, 0.9])

    def test_factor_one_identity(self):
        seq = MultidimensionalSequence([[0.1], [0.2]])
        assert downsample(seq, 1) == seq

    def test_validation(self):
        with pytest.raises(ValueError):
            downsample([[0.1]], 0)


class TestTimeWarping:
    def test_identical_sequences_zero(self, rng):
        points = rng.random((15, 3))
        assert time_warping_distance(points, points) == pytest.approx(0.0)

    def test_symmetry(self, rng):
        a = rng.random((10, 2))
        b = rng.random((14, 2))
        assert time_warping_distance(a, b) == pytest.approx(
            time_warping_distance(b, a)
        )

    def test_time_stretched_copy_is_close(self):
        """DTW forgives local accelerations that Dmean punishes."""
        t = np.linspace(0, 2 * np.pi, 40)
        original = (0.5 + 0.4 * np.sin(t)).reshape(-1, 1)
        stretched = np.repeat(original, 2, axis=0)  # locally decelerated
        dtw = time_warping_distance(original, stretched)
        lockstep = sequence_distance(original, stretched)
        assert dtw < lockstep
        assert dtw == pytest.approx(0.0, abs=1e-9)

    def test_unnormalized_is_accumulated_cost(self):
        a = np.array([[0.0], [0.0]])
        b = np.array([[0.5], [0.5]])
        raw = time_warping_distance(a, b, normalized=False)
        assert raw == pytest.approx(1.0)  # two diagonal steps of 0.5

    def test_band_constrains_warp(self):
        a = np.linspace(0, 1, 30).reshape(-1, 1)
        b = np.linspace(0, 1, 30).reshape(-1, 1) ** 2
        free = time_warping_distance(a, b, normalized=False)
        banded = time_warping_distance(a, b, window=1, normalized=False)
        assert banded >= free - 1e-12

    def test_band_validation(self):
        with pytest.raises(ValueError):
            time_warping_distance([[0.1]], [[0.2]], window=-1)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            time_warping_distance([[0.1]], [[0.1, 0.2]])

    def test_lower_bounded_by_best_pair(self, rng):
        a = rng.random((8, 2))
        b = rng.random((12, 2))
        best_pair = np.min(
            np.sqrt(np.sum((a[:, None] - b[None]) ** 2, axis=2))
        )
        assert time_warping_distance(a, b) >= best_pair - 1e-9


class TestWarpingPath:
    def test_endpoints(self, rng):
        a = rng.random((6, 2))
        b = rng.random((9, 2))
        path = warping_path(a, b)
        assert path[0] == (0, 0)
        assert path[-1] == (5, 8)

    def test_monotone_steps(self, rng):
        a = rng.random((7, 1))
        b = rng.random((7, 1))
        path = warping_path(a, b)
        for (i1, j1), (i2, j2) in zip(path, path[1:]):
            assert 0 <= i2 - i1 <= 1
            assert 0 <= j2 - j1 <= 1
            assert (i2 - i1) + (j2 - j1) >= 1

    def test_path_cost_matches_distance(self, rng):
        a = rng.random((6, 2))
        b = rng.random((8, 2))
        path = warping_path(a, b)
        cost = sum(
            float(np.linalg.norm(a[i] - b[j])) for i, j in path
        )
        assert cost == pytest.approx(
            time_warping_distance(a, b, normalized=False)
        )
