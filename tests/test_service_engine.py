"""Unit and concurrency tests for :class:`repro.service.QueryEngine`.

The serving layer's core promise: for any fixed corpus state it returns
exactly what a single-threaded :class:`SimilaritySearch` returns — any
worker count, cache on or off — and under concurrent writes every reader
observes some *published* snapshot, never a torn intermediate state.
"""

import threading
import time

import pytest

from repro.analysis.tracing import read_trace
from repro.core.database import SequenceDatabase
from repro.core.search import SimilaritySearch
from repro.service import (
    DeadlineExceeded,
    EngineClosed,
    Overloaded,
    QueryEngine,
)

EPSILONS = (0.6, 0.3, 0.45)


def build_database(rng, count=10, dimension=2):
    database = SequenceDatabase(dimension=dimension)
    for ordinal in range(count):
        length = int(rng.integers(20, 60))
        database.add(rng.random((length, dimension)), sequence_id=f"s{ordinal}")
    return database


class TestParity:
    @pytest.mark.parametrize("cache_size", [0, 16])
    def test_matches_single_threaded_search(self, rng, cache_size):
        """4-worker engine results are identical to SimilaritySearch."""
        database = build_database(rng)
        reference = SimilaritySearch(database.clone())
        queries = [rng.random((12, 2)) for _ in range(3)]
        with QueryEngine(
            database, workers=4, cache_size=cache_size
        ) as engine:
            for query in queries:
                # repeats and tightened thresholds exercise hit/refine
                for epsilon in (0.6, 0.6, 0.3, 0.45, 0.3):
                    expected = reference.search(query, epsilon)
                    got = engine.search(query, epsilon)
                    assert got.answers == expected.answers
                    assert got.candidates == expected.candidates
                    assert got.solution_intervals == expected.solution_intervals

    def test_cache_outcomes(self, rng):
        database = build_database(rng)
        query = rng.random((10, 2))
        with QueryEngine(database, workers=2, cache_size=8) as engine:
            assert engine.search_detailed(query, 0.5).cache == "miss"
            assert engine.search_detailed(query, 0.5).cache == "hit"
            assert engine.search_detailed(query, 0.2).cache == "refine"
            assert engine.search_detailed(rng.random((10, 2)), 0.5).cache == "miss"

    def test_cache_off_outcome(self, rng):
        database = build_database(rng, count=4)
        query = rng.random((10, 2))
        with QueryEngine(database, workers=2, cache_size=0) as engine:
            assert engine.search_detailed(query, 0.5).cache == "off"
            assert engine.search_detailed(query, 0.5).cache == "off"

    def test_knn_parity(self, rng):
        database = build_database(rng)
        reference = SimilaritySearch(database.clone())
        query = rng.random((9, 2))
        with QueryEngine(database, workers=3) as engine:
            assert engine.knn(query, 4) == reference.knn(query, 4)

    def test_range_query_returns_answer_ids(self, rng):
        database = build_database(rng)
        reference = SimilaritySearch(database.clone())
        query = rng.random((9, 2))
        with QueryEngine(database, workers=2) as engine:
            assert engine.range_query(query, 0.4) == reference.search(
                query, 0.4, find_intervals=False
            ).answers


class TestSnapshotIsolation:
    def test_concurrent_readers_never_see_torn_state(self, rng):
        """Every (version, answers) observation matches that exact
        published snapshot — a torn read would match none of them."""
        database = build_database(rng, count=8)
        query = rng.random((10, 2))
        inserts = [rng.random((30, 2)) for _ in range(5)]

        # Reference answer set per published version 0..5.
        expected = {}
        shadow = database.clone()
        expected[0] = tuple(
            SimilaritySearch(shadow).search(query, 0.5, find_intervals=False).answers
        )
        for version, points in enumerate(inserts, start=1):
            shadow.add(points, sequence_id=f"x{version}")
            expected[version] = tuple(
                SimilaritySearch(shadow)
                .search(query, 0.5, find_intervals=False)
                .answers
            )

        engine = QueryEngine(database, workers=4, cache_size=8)
        observed = []
        lock = threading.Lock()
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                detailed = engine.search_detailed(
                    query, 0.5, find_intervals=False
                )
                with lock:
                    observed.append(
                        (detailed.snapshot_version, tuple(detailed.result.answers))
                    )

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for version, points in enumerate(inserts, start=1):
                engine.insert(points, sequence_id=f"x{version}")
                time.sleep(0.01)
        finally:
            stop.set()
            for thread in readers:
                thread.join()
            engine.close()

        assert observed, "readers made no observations"
        for version, answers in observed:
            assert answers == expected[version], (
                f"snapshot v{version} served {answers}, expected "
                f"{expected[version]} — torn read"
            )
        assert engine.snapshot_version == len(inserts)

    def test_write_ops_match_fresh_reference(self, rng):
        database = build_database(rng, count=6)
        query = rng.random((11, 2))
        extra = rng.random((28, 2))
        tail = rng.random((9, 2))
        with QueryEngine(database.clone(), workers=2, cache_size=4) as engine:
            engine.search(query, 0.5)  # warm the cache so writes must patch
            engine.insert(extra, sequence_id="fresh")
            engine.append("fresh", tail)
            engine.remove("s1")

            shadow = database.clone()
            shadow.add(extra, sequence_id="fresh")
            shadow.append_points("fresh", tail)
            shadow.remove("s1")
            reference = SimilaritySearch(shadow)

            for epsilon in EPSILONS:
                expected = reference.search(query, epsilon)
                got = engine.search(query, epsilon)
                assert got.answers == expected.answers
                assert got.candidates == expected.candidates
                assert got.solution_intervals == expected.solution_intervals

    def test_insert_duplicate_and_remove_unknown(self, rng):
        with QueryEngine(build_database(rng, count=3), workers=1) as engine:
            with pytest.raises(KeyError):
                engine.insert(
                    engine._snapshot.database.sequence("s0").points,
                    sequence_id="s0",
                )
            with pytest.raises(KeyError):
                engine.remove("nope")
            # failed writes publish no snapshot
            assert engine.snapshot_version == 0


class TestAdmissionAndDeadlines:
    def test_overloaded_fast_fail(self, rng):
        engine = QueryEngine(
            build_database(rng, count=3), workers=1, queue_cap=0
        )
        gate = threading.Event()
        inner = engine._do_search
        engine._do_search = lambda *args: (gate.wait(5), inner(*args))[1]
        query = rng.random((8, 2))
        blocked = threading.Thread(target=lambda: engine.search(query, 0.5))
        blocked.start()
        try:
            deadline = time.monotonic() + 5
            while engine.queue_depth == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            with pytest.raises(Overloaded) as caught:
                engine.search(query, 0.5)
            assert caught.value.capacity == 1
            assert caught.value.queue_depth == 1
        finally:
            gate.set()
            blocked.join()
            engine.close()
        assert engine.stats()["rejected_overload"] == 1

    def test_deadline_exceeded_mid_execution(self, rng):
        engine = QueryEngine(build_database(rng, count=3), workers=1)
        inner = engine._do_search
        engine._do_search = lambda *args: (time.sleep(0.4), inner(*args))[1]
        try:
            with pytest.raises(DeadlineExceeded) as caught:
                engine.search(rng.random((8, 2)), 0.5, timeout=0.05)
            assert caught.value.timeout == pytest.approx(0.05)
        finally:
            engine.close()
        assert engine.stats()["deadline_exceeded"] == 1

    def test_deadline_expired_while_queued(self, rng):
        engine = QueryEngine(
            build_database(rng, count=3), workers=1, queue_cap=4
        )
        gate = threading.Event()
        inner = engine._do_search
        engine._do_search = lambda *args: (gate.wait(5), inner(*args))[1]
        query = rng.random((8, 2))
        blocked = threading.Thread(target=lambda: engine.search(query, 0.5))
        blocked.start()
        try:
            time.sleep(0.05)
            with pytest.raises(DeadlineExceeded):
                engine.search(query, 0.5, timeout=0.05)
        finally:
            gate.set()
            blocked.join()
            engine.close()

    def test_default_timeout_applies(self, rng):
        engine = QueryEngine(
            build_database(rng, count=3), workers=1, default_timeout=0.05
        )
        inner = engine._do_search
        engine._do_search = lambda *args: (time.sleep(0.4), inner(*args))[1]
        try:
            with pytest.raises(DeadlineExceeded):
                engine.search(rng.random((8, 2)), 0.5)
        finally:
            engine.close()

    def test_slots_are_released_after_rejections(self, rng):
        engine = QueryEngine(build_database(rng, count=3), workers=2)
        query = rng.random((8, 2))
        try:
            with pytest.raises(DeadlineExceeded):
                inner = engine._do_search
                engine._do_search = lambda *args: (
                    time.sleep(0.3),
                    inner(*args),
                )[1]
                engine.search(query, 0.5, timeout=0.05)
            time.sleep(0.5)  # let the abandoned worker drain
            assert engine.queue_depth == 0
            engine._do_search = inner
            assert engine.search(query, 0.5) is not None
        finally:
            engine.close()


class TestContractsUnderConcurrency:
    def test_concurrent_insert_and_search_with_contracts(self, rng, monkeypatch):
        """Sustained mixed read/write traffic under REPRO_CHECK_CONTRACTS=1
        finishes without deadlock and without contract violations on any
        serving path (miss, hit and refine all re-validate)."""
        monkeypatch.setenv("REPRO_CHECK_CONTRACTS", "1")
        database = build_database(rng, count=5)
        queries = [rng.random((9, 2)) for _ in range(2)]
        inserts = [rng.random((24, 2)) for _ in range(4)]
        failures = []

        with QueryEngine(database, workers=4, cache_size=8) as engine:
            def reader(query):
                try:
                    for epsilon in EPSILONS * 3:
                        result = engine.search(query, epsilon)
                        assert set(result.answers) <= set(result.candidates)
                except Exception as error:  # noqa: BLE001 — collected below
                    failures.append(error)

            threads = [
                threading.Thread(target=reader, args=(query,))
                for query in queries
                for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for ordinal, points in enumerate(inserts):
                engine.insert(points, sequence_id=f"w{ordinal}")
            engine.remove("w0")
            for thread in threads:
                thread.join()

        assert not failures, failures[0]


class TestLifecycleAndValidation:
    def test_closed_engine_rejects_requests(self, rng):
        engine = QueryEngine(build_database(rng, count=2), workers=1)
        engine.close()
        query = rng.random((6, 2))
        with pytest.raises(EngineClosed):
            engine.search(query, 0.5)
        with pytest.raises(EngineClosed):
            engine.insert(query)
        engine.close()  # idempotent

    def test_constructor_validation(self, rng):
        database = build_database(rng, count=2)
        with pytest.raises(TypeError):
            QueryEngine(object())
        with pytest.raises(ValueError):
            QueryEngine(database, workers=0)
        with pytest.raises(ValueError):
            QueryEngine(database, queue_cap=-1)
        with pytest.raises(ValueError):
            QueryEngine(database, cache_size=-1)
        with pytest.raises(ValueError):
            QueryEngine(database, default_timeout=0.0)

    def test_request_validation(self, rng):
        with QueryEngine(build_database(rng, count=2), workers=1) as engine:
            with pytest.raises(ValueError):
                engine.search(rng.random((6, 2)), -0.1)
            with pytest.raises(ValueError):
                engine.search(rng.random((6, 2)), 0.1, timeout=-1.0)
            with pytest.raises(ValueError):
                engine.knn(rng.random((6, 2)), 0)
            with pytest.raises(ValueError):
                engine.search(rng.random((6, 3)), 0.1)  # wrong dimension

    def test_dimension_and_len(self, rng):
        with QueryEngine(build_database(rng, count=3), workers=1) as engine:
            assert engine.dimension == 2
            assert len(engine) == 3
            assert engine.sequence_ids() == ["s0", "s1", "s2"]


class TestStatsAndTracing:
    def test_stats_block(self, rng):
        with QueryEngine(build_database(rng), workers=2, cache_size=4) as engine:
            query = rng.random((10, 2))
            engine.search(query, 0.5)
            engine.search(query, 0.5)
            engine.insert(rng.random((20, 2)), sequence_id="w")
            stats = engine.stats()
        assert stats["requests"]["search"] == 2
        assert stats["requests"]["insert"] == 1
        assert stats["completed"] == 3
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["misses"] == 1
        assert 0.0 < stats["cache"]["hit_ratio"] <= 1.0
        assert stats["snapshots_published"] == 1
        assert stats["snapshot_version"] == 1
        assert stats["latency_ms"]["p95"] >= stats["latency_ms"]["p50"] >= 0.0
        assert stats["queue_depth"] == 0
        assert stats["workers"] == 2
        assert stats["sequences"] == 11

    def test_stats_identity_fields(self, rng):
        from repro.util.version import REPRO_VERSION

        with QueryEngine(build_database(rng), workers=1) as engine:
            stats = engine.stats()
        assert stats["repro_version"] == REPRO_VERSION
        assert stats["uptime_s"] >= 0.0
        assert isinstance(stats["snapshot_version"], int)

    def test_trace_records(self, rng, tmp_path):
        trace = tmp_path / "serve_trace.jsonl"
        with QueryEngine(
            build_database(rng, count=4),
            workers=1,
            cache_size=4,
            trace_path=trace,
        ) as engine:
            query = rng.random((10, 2))
            engine.search(query, 0.5)
            engine.search(query, 0.5)
            engine.search(query, 0.25)
        records = read_trace(trace)
        assert [r["cache"] for r in records] == ["miss", "hit", "refine"]
        for record in records:
            assert record["op"] == "search"
            assert record["snapshot_version"] == 0
            assert record["epsilon"] in (0.5, 0.25)
            assert "answers" in record and "candidates" in record
