"""The cluster coordinator: parity, failover, degradation, read-repair.

The tests drive a real :class:`ClusterCoordinator` over in-process
:class:`LocalBackend` engines (JSON-round-tripped, so payloads are
byte-identical to the HTTP transport) and compare against a single-node
engine holding the union corpus.  Backend failures are injected either
through a wrapper that raises transport errors (a killed process) or
through the ``cluster.backend.<i>.request`` fault sites (a mid-scatter
crash), with the paper's result contracts armed via
:func:`checking_contracts` where parity is asserted.
"""

import json

import numpy as np
import pytest

from repro.cluster import (
    ClusterCoordinator,
    HedgePolicy,
    LocalBackend,
    ShardRouter,
)
from repro.cluster.health import HealthTracker
from repro.core.contracts import checking_contracts
from repro.core.database import SequenceDatabase
from repro.service import QueryEngine
from repro.service.errors import (
    CircuitOpen,
    ShardUnavailable,
    WriteQuorumFailed,
)
from repro.service.faults import FaultRule, fault_plan
from repro.service.http import search_payload

DIMENSION = 3


class KillableBackend:
    """A backend whose process can be 'killed' (raises ConnectionError)."""

    def __init__(self, inner):
        self.inner = inner
        self.dead = False
        self.calls = 0

    def _guard(self):
        self.calls += 1
        if self.dead:
            raise ConnectionError("backend killed")

    def healthz(self):
        self._guard()
        return self.inner.healthz()

    def stats(self):
        self._guard()
        return self.inner.stats()

    def search(self, points, epsilon, *, find_intervals=True, timeout=None):
        self._guard()
        return self.inner.search(
            points, epsilon, find_intervals=find_intervals, timeout=timeout
        )

    def knn(self, points, k, *, timeout=None):
        self._guard()
        return self.inner.knn(points, k, timeout=timeout)

    def insert(self, points, sequence_id=None):
        self._guard()
        return self.inner.insert(points, sequence_id=sequence_id)

    def append(self, sequence_id, points):
        self._guard()
        return self.inner.append(sequence_id, points)

    def remove(self, sequence_id):
        self._guard()
        return self.inner.remove(sequence_id)


def make_corpus(count=24, seed=11):
    rng = np.random.default_rng(seed)
    return [
        (f"seq-{i}", rng.random((int(rng.integers(15, 45)), DIMENSION)))
        for i in range(count)
    ]


def make_single(corpus):
    database = SequenceDatabase(DIMENSION)
    for sequence_id, points in corpus:
        database.add(points, sequence_id=sequence_id)
    return QueryEngine(database, workers=1, cache_size=0)


def make_cluster(
    corpus,
    *,
    num_backends=3,
    replication=2,
    num_shards=None,
    hedge=None,
    health=None,
    write_quorum=None,
):
    router = ShardRouter(
        num_backends=num_backends,
        num_shards=num_shards,
        replication=replication,
    )
    databases = [SequenceDatabase(DIMENSION) for _ in range(num_backends)]
    for sequence_id, points in corpus:
        for backend in router.placement(sequence_id).replicas:
            databases[backend].add(points, sequence_id=sequence_id)
    engines = [
        QueryEngine(database, workers=1, cache_size=0)
        for database in databases
    ]
    backends = [
        KillableBackend(LocalBackend(engine, name=f"local-{i}"))
        for i, engine in enumerate(engines)
    ]
    coordinator = ClusterCoordinator(
        backends,
        num_shards=num_shards,
        replication=replication,
        hedge=hedge,
        health=health,
        write_quorum=write_quorum,
    )
    coordinator.seed_order([sequence_id for sequence_id, _ in corpus])
    return engines, backends, coordinator


def close_all(engines, coordinator, single=None):
    coordinator.close()
    for engine in engines:
        engine.close()
    if single is not None:
        single.close()


def single_node_search(single, query, epsilon, *, find_intervals=True):
    """The single-node answer in exact transport shape."""
    response = single.search_detailed(
        query, epsilon, find_intervals=find_intervals
    )
    return json.loads(
        json.dumps(
            search_payload(response, find_intervals=find_intervals),
            default=str,
        )
    )


def single_node_knn(single, query, k):
    neighbors = single.knn(query, k)
    decoded = json.loads(
        json.dumps([[d, sid] for d, sid in neighbors], default=str)
    )
    return [(float(d), sid) for d, sid in decoded]


class TestParity:
    @pytest.mark.parametrize(
        ("num_backends", "replication", "num_shards"),
        [(3, 2, None), (4, 3, None), (2, 1, None), (5, 2, 7)],
    )
    def test_merged_results_match_single_node(
        self, num_backends, replication, num_shards
    ):
        corpus = make_corpus()
        single = make_single(corpus)
        engines, _, coordinator = make_cluster(
            corpus,
            num_backends=num_backends,
            replication=replication,
            num_shards=num_shards,
        )
        rng = np.random.default_rng(5)
        try:
            with checking_contracts():
                for epsilon in (0.3, 0.6):
                    query = rng.random((20, DIMENSION))
                    expected = single_node_search(single, query, epsilon)
                    result = coordinator.search(query, epsilon)
                    assert result.complete
                    assert result.missing_shards == ()
                    assert result.answers == expected["answers"]
                    assert result.candidates == expected["candidates"]
                    assert result.intervals == expected["intervals"]
                    knn = coordinator.knn(query, 6)
                    assert knn.complete
                    assert knn.neighbors == single_node_knn(single, query, 6)
        finally:
            close_all(engines, coordinator, single)

    def test_range_query_skips_intervals(self):
        corpus = make_corpus(10)
        single = make_single(corpus)
        engines, _, coordinator = make_cluster(corpus)
        query = np.random.default_rng(3).random((12, DIMENSION))
        try:
            expected = single_node_search(
                single, query, 0.5, find_intervals=False
            )
            result = coordinator.range_query(query, 0.5)
            assert result.answers == expected["answers"]
            assert result.intervals == {}
        finally:
            close_all(engines, coordinator, single)

    def test_epsilon_is_validated(self):
        corpus = make_corpus(4)
        engines, _, coordinator = make_cluster(corpus)
        try:
            with pytest.raises(ValueError):
                coordinator.search(np.zeros((3, DIMENSION)), -0.5)
        finally:
            close_all(engines, coordinator)


class TestFailover:
    def test_killed_replica_fails_over_with_full_results(self):
        corpus = make_corpus()
        single = make_single(corpus)
        engines, backends, coordinator = make_cluster(corpus, replication=2)
        backends[0].dead = True
        query = np.random.default_rng(9).random((15, DIMENSION))
        try:
            with checking_contracts():
                expected = single_node_search(single, query, 0.5)
                result = coordinator.search(query, 0.5)
            assert result.complete
            assert result.answers == expected["answers"]
            assert result.intervals == expected["intervals"]
            assert coordinator.stats()["failovers"] >= 1
        finally:
            close_all(engines, coordinator, single)

    def test_mid_scatter_crash_is_covered_by_the_replica(self):
        # The per-backend fault site fires inside the scatter itself —
        # the request reaches _call_backend and dies there, exactly a
        # process crash racing the fan-out.
        corpus = make_corpus()
        single = make_single(corpus)
        engines, _, coordinator = make_cluster(corpus, replication=2)
        query = np.random.default_rng(2).random((15, DIMENSION))
        try:
            with checking_contracts():
                expected = single_node_search(single, query, 0.6)
                with fault_plan(
                    FaultRule(
                        "cluster.backend.1.request", "raise", times=None
                    )
                ):
                    result = coordinator.search(query, 0.6)
            assert result.complete
            assert result.answers == expected["answers"]
            assert result.candidates == expected["candidates"]
            assert result.intervals == expected["intervals"]
        finally:
            close_all(engines, coordinator, single)

    def test_repeated_failures_mark_the_backend_down(self):
        corpus = make_corpus(8)
        engines, backends, coordinator = make_cluster(corpus, replication=2)
        backends[2].dead = True
        query = np.random.default_rng(1).random((10, DIMENSION))
        try:
            for _ in range(4):
                coordinator.search(query, 0.4)
            assert coordinator.health.state(2) == "down"
            calls_when_down = backends[2].calls
            coordinator.search(query, 0.4)
            # Down backends are skipped outright, not retried per request.
            assert backends[2].calls == calls_when_down
        finally:
            close_all(engines, coordinator)

    def test_circuit_open_counts_against_health(self):
        # CircuitOpen is a *local* fast-fail (no bytes hit the wire):
        # it must not reset the failure streak and pin a dead backend
        # 'up', and results must still fail over to the live replica.
        corpus = make_corpus(8)
        single = make_single(corpus)
        engines, backends, coordinator = make_cluster(corpus, replication=2)
        query = np.random.default_rng(1).random((8, DIMENSION))

        def breaker_open(*args, **kwargs):
            raise CircuitOpen("breaker open", retry_after=1.0)

        backends[0].search = breaker_open
        try:
            expected = single_node_search(single, query, 0.4)
            for _ in range(4):
                result = coordinator.search(query, 0.4)
                assert result.complete
                assert result.answers == expected["answers"]
            assert coordinator.health.state(0) == "down"
        finally:
            close_all(engines, coordinator, single)

    def test_flapping_backend_keeps_serving_complete_results(self):
        corpus = make_corpus()
        single = make_single(corpus)
        engines, _, coordinator = make_cluster(corpus, replication=2)
        query = np.random.default_rng(8).random((15, DIMENSION))
        try:
            expected = single_node_search(single, query, 0.5)
            # every=2: backend 0 alternates failure and success forever.
            with fault_plan(
                FaultRule(
                    "cluster.backend.0.request",
                    "raise",
                    times=None,
                    every=2,
                )
            ):
                for _ in range(6):
                    result = coordinator.search(query, 0.5)
                    assert result.complete
                    assert result.answers == expected["answers"]
            # Interleaved successes keep resetting the failure streak, so
            # the flapping backend never trips the down threshold.
            assert coordinator.health.state(0) in ("up", "suspect")
        finally:
            close_all(engines, coordinator, single)


class TestPartialResults:
    def test_whole_shard_down_degrades_search_typed(self):
        corpus = make_corpus()
        engines, backends, coordinator = make_cluster(corpus, replication=1)
        backends[1].dead = True
        lost_shards = coordinator.router.shards_of_backend(1)
        query = np.random.default_rng(4).random((12, DIMENSION))
        try:
            result = coordinator.search(query, 0.7)
            assert not result.complete
            assert result.missing_shards == lost_shards
            # Reported answers are still sound: every one comes from a
            # live shard and passed Phase 3 there.
            live = {
                sid
                for sid, _ in corpus
                if coordinator.router.shard_of(sid) not in lost_shards
            }
            assert set(result.answers) <= live
            assert coordinator.stats()["partial_results"] >= 1
            # A few more failures trip the down threshold; only then does
            # the shard count as unavailable in health reporting.
            for _ in range(3):
                coordinator.search(query, 0.7)
            assert coordinator.unavailable_shards() == sorted(lost_shards)
            assert coordinator.healthz()["status"] == "partial"
        finally:
            close_all(engines, coordinator)

    def test_search_fail_closed_raises_typed(self):
        corpus = make_corpus(8)
        engines, backends, coordinator = make_cluster(corpus, replication=1)
        backends[0].dead = True
        query = np.random.default_rng(4).random((8, DIMENSION))
        try:
            with pytest.raises(ShardUnavailable) as excinfo:
                coordinator.search(query, 0.5, fail_closed=True)
            assert excinfo.value.missing_shards == (
                coordinator.router.shards_of_backend(0)
            )
        finally:
            close_all(engines, coordinator)

    def test_knn_fails_closed_by_default_and_degrades_on_request(self):
        corpus = make_corpus()
        engines, backends, coordinator = make_cluster(corpus, replication=1)
        backends[2].dead = True
        query = np.random.default_rng(6).random((10, DIMENSION))
        try:
            with pytest.raises(ShardUnavailable):
                coordinator.knn(query, 5)
            partial = coordinator.knn(query, 5, fail_closed=False)
            assert not partial.complete
            assert partial.missing_shards == (
                coordinator.router.shards_of_backend(2)
            )
            assert len(partial.neighbors) <= 5
        finally:
            close_all(engines, coordinator)

    def test_replication_covers_a_single_dead_backend_completely(self):
        corpus = make_corpus()
        engines, backends, coordinator = make_cluster(corpus, replication=2)
        backends[1].dead = True
        query = np.random.default_rng(6).random((10, DIMENSION))
        try:
            result = coordinator.search(query, 0.5)
            assert result.complete
            assert coordinator.unavailable_shards() == []
        finally:
            close_all(engines, coordinator)


class TestWrites:
    def test_insert_reaches_every_replica(self):
        corpus = make_corpus(6)
        engines, _, coordinator = make_cluster(corpus, replication=2)
        points = np.random.default_rng(3).random((18, DIMENSION))
        try:
            sequence_id = coordinator.insert(points, sequence_id="fresh")
            placement = coordinator.router.placement(sequence_id)
            for backend in placement.replicas:
                assert "fresh" in engines[backend].sequence_ids()
        finally:
            close_all(engines, coordinator)

    def test_write_quorum_failure_is_typed_and_queues_repair(self):
        corpus = make_corpus(6)
        engines, backends, coordinator = make_cluster(corpus, replication=2)
        points = np.random.default_rng(3).random((18, DIMENSION))
        try:
            # Find an id placed on backend 0 so killing it loses a replica.
            probe_id = next(
                f"w-{i}"
                for i in range(1000)
                if 0 in coordinator.router.placement(f"w-{i}").replicas
            )
            backends[0].dead = True
            with pytest.raises(WriteQuorumFailed) as excinfo:
                coordinator.insert(points, sequence_id=probe_id)
            assert excinfo.value.acks == 1
            assert excinfo.value.required == 2
            assert coordinator.repair_pending() == {0: 1}
        finally:
            close_all(engines, coordinator)

    def test_duplicate_insert_raises_key_error_not_quorum(self):
        corpus = make_corpus(6)
        engines, _, coordinator = make_cluster(corpus, replication=2)
        points = np.random.default_rng(3).random((10, DIMENSION))
        try:
            coordinator.insert(points, sequence_id="dup")
            with pytest.raises(KeyError):
                coordinator.insert(points, sequence_id="dup")
            assert coordinator.repair_pending() == {}
        finally:
            close_all(engines, coordinator)

    def test_auto_ids_are_assigned_and_routable(self):
        corpus = make_corpus(4)
        engines, _, coordinator = make_cluster(corpus, replication=2)
        points = np.random.default_rng(3).random((10, DIMENSION))
        try:
            first = coordinator.insert(points)
            second = coordinator.insert(points)
            assert first != second
            assert coordinator.router.placement(first).replicas
        finally:
            close_all(engines, coordinator)

    def test_auto_ids_do_not_collide_across_coordinators(self):
        # A restarted (or concurrent) coordinator over the same backends
        # must not reissue an id a previous coordinator already stored.
        corpus = make_corpus(4)
        engines, backends, coordinator = make_cluster(corpus, replication=2)
        points = np.random.default_rng(3).random((10, DIMENSION))
        try:
            first = coordinator.insert(points)
            second = ClusterCoordinator(backends, replication=2)
            try:
                other = second.insert(points)  # would KeyError on collision
            finally:
                second.close()
            assert other != first
        finally:
            close_all(engines, coordinator)

    def test_divergent_replica_rejection_is_repaired_not_raised(self):
        corpus = make_corpus(6)
        engines, _, coordinator = make_cluster(
            corpus, num_backends=3, replication=3
        )
        rng = np.random.default_rng(5)
        try:
            coordinator.insert(rng.random((10, DIMENSION)), sequence_id="div")
            # Replica 1 silently loses the sequence — the state a replica
            # is in after missing a write while merely "suspect" (still
            # routable, so the miss was never queued for repair).
            engines[1].remove("div")
            coordinator.append("div", rng.random((4, DIMENSION)))
            # The quorum applied the append: the caller sees success and
            # the diverged replica is queued for repair, not raised.
            assert len(engines[0]._snapshot.database.sequence("div")) == 14
            assert coordinator.repair_pending() == {1: 1}
            assert coordinator.stats()["divergent_writes"] == 1
            # The replay rejects deterministically too (the target id is
            # missing): the op is dead-lettered so the queue — and the
            # probe sweep driving it — keeps draining.
            coordinator.probe()
            assert coordinator.repair_pending() == {}
            assert coordinator.stats()["repairs_dropped"] == 1
        finally:
            close_all(engines, coordinator)

    def test_caller_error_still_queues_repairs_for_dead_replicas(self):
        corpus = make_corpus(6)
        engines, backends, coordinator = make_cluster(
            corpus, num_backends=3, replication=3, write_quorum=1
        )
        rng = np.random.default_rng(5)
        try:
            backends[0].dead = True
            with pytest.raises(KeyError):
                coordinator.append("no-such-id", rng.random((3, DIMENSION)))
            # The live replicas agreed the request is bad, but the dead
            # replica's state is unknown — the op must still be queued
            # (replay is idempotent or dead-lettered), not dropped by
            # the raise.
            assert coordinator.repair_pending() == {0: 1}
        finally:
            close_all(engines, coordinator)

    def test_append_and_remove_replicate(self):
        corpus = make_corpus(6)
        engines, _, coordinator = make_cluster(corpus, replication=3)
        rng = np.random.default_rng(7)
        try:
            coordinator.insert(rng.random((12, DIMENSION)), sequence_id="rw")
            coordinator.append("rw", rng.random((5, DIMENSION)))
            for engine in engines:
                assert len(engine._snapshot.database.sequence("rw")) == 17
            coordinator.remove("rw")
            for engine in engines:
                assert "rw" not in engine.sequence_ids()
        finally:
            close_all(engines, coordinator)


class TestReadRepair:
    def test_missed_writes_replay_when_the_backend_recovers(self):
        corpus = make_corpus(6)
        engines, backends, coordinator = make_cluster(
            corpus, num_backends=3, replication=3
        )
        rng = np.random.default_rng(5)
        try:
            backends[1].dead = True
            coordinator.insert(rng.random((14, DIMENSION)), sequence_id="r1")
            coordinator.insert(rng.random((14, DIMENSION)), sequence_id="r2")
            assert coordinator.repair_pending() == {1: 2}
            assert "r1" not in engines[1].sequence_ids()

            backends[1].dead = False
            # Mark it down first so the probe sees a recovery transition.
            for _ in range(3):
                coordinator.health.record_failure(1)
            coordinator.probe()
            assert coordinator.repair_pending() == {}
            assert "r1" in engines[1].sequence_ids()
            assert "r2" in engines[1].sequence_ids()
            assert coordinator.stats()["repairs_replayed"] == 2
        finally:
            close_all(engines, coordinator)

    def test_repair_is_idempotent_when_the_write_already_landed(self):
        corpus = make_corpus(6)
        engines, backends, coordinator = make_cluster(
            corpus, num_backends=3, replication=3
        )
        rng = np.random.default_rng(5)
        try:
            backends[2].dead = True
            coordinator.insert(rng.random((14, DIMENSION)), sequence_id="x1")
            # The write sneaks in through another path before repair runs.
            backends[2].dead = False
            backends[2].inner.insert(
                rng.random((14, DIMENSION)).tolist(), sequence_id="x1"
            )
            for _ in range(3):
                coordinator.health.record_failure(2)
            coordinator.probe()
            assert coordinator.repair_pending() == {}
        finally:
            close_all(engines, coordinator)

    def test_drain_is_single_flight_per_backend(self):
        corpus = make_corpus(6)
        engines, backends, coordinator = make_cluster(
            corpus, num_backends=3, replication=3
        )
        rng = np.random.default_rng(5)
        try:
            backends[1].dead = True
            coordinator.insert(rng.random((8, DIMENSION)), sequence_id="sf")
            assert coordinator.repair_pending() == {1: 1}
            backends[1].dead = False
            # While one thread holds backend 1's drain (a probe racing a
            # down -> up transition), a concurrent drain must skip, not
            # replay the same op a second time.
            assert coordinator._drain_locks[1].acquire(blocking=False)
            try:
                assert coordinator._drain_repairs(1) == 0
                assert coordinator.repair_pending() == {1: 1}
            finally:
                coordinator._drain_locks[1].release()
            assert coordinator._drain_repairs(1) == 1
            assert coordinator.repair_pending() == {}
            assert len(engines[1]._snapshot.database.sequence("sf")) == 8
        finally:
            close_all(engines, coordinator)

    def test_failed_repair_keeps_the_queue(self):
        corpus = make_corpus(6)
        engines, backends, coordinator = make_cluster(
            corpus, num_backends=3, replication=3
        )
        rng = np.random.default_rng(5)
        try:
            backends[0].dead = True
            coordinator.insert(rng.random((10, DIMENSION)), sequence_id="q1")
            assert coordinator.repair_pending() == {0: 1}
            backends[0].dead = False
            for _ in range(3):
                coordinator.health.record_failure(0)
            with fault_plan(
                FaultRule("cluster.read-repair", "raise", times=1)
            ):
                coordinator.probe()
            # The replay failed; the op stays queued for the next probe.
            assert coordinator.repair_pending() == {0: 1}
            coordinator.probe()
            assert coordinator.repair_pending() == {}
        finally:
            close_all(engines, coordinator)


class TestHedging:
    def test_slow_primary_is_hedged_to_a_replica(self):
        corpus = make_corpus(12)
        single = make_single(corpus)
        engines, _, coordinator = make_cluster(
            corpus,
            replication=2,
            hedge=HedgePolicy(min_delay=0.01, max_delay=0.01, seed=7),
        )
        query = np.random.default_rng(10).random((10, DIMENSION))
        try:
            expected = single_node_search(single, query, 0.5)
            with fault_plan(
                FaultRule(
                    "cluster.backend.0.request",
                    "sleep",
                    seconds=0.4,
                    times=None,
                )
            ):
                result = coordinator.search(query, 0.5)
            assert result.complete
            assert result.answers == expected["answers"]
            stats = coordinator.stats()
            assert stats["hedges"] >= 1
            assert stats["hedge_wins"] >= 1
        finally:
            close_all(engines, coordinator, single)

    def test_hedge_policy_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(quantile=1.5)
        with pytest.raises(ValueError):
            HedgePolicy(min_delay=0.5, max_delay=0.1)
        with pytest.raises(ValueError):
            HedgePolicy(jitter=2.0)

    def test_hedge_delay_clamps_to_bounds(self):
        from repro.service.stats import LatencyWindow
        from repro.util.rng import ensure_rng

        policy = HedgePolicy(min_delay=0.05, max_delay=0.2)
        window = LatencyWindow(16)
        rng = ensure_rng(3)
        assert policy.delay(window, rng) == 0.05  # empty window -> floor
        for _ in range(10):
            window.record(5.0)
        assert policy.delay(window, rng) == 0.2  # quantile -> ceiling

    def test_hedge_delay_clamped_by_remaining_budget(self):
        """Regression: a hedge must never be scheduled to fire after the
        request budget is spent — the delay is capped by ``remaining``."""
        from repro.service.stats import LatencyWindow
        from repro.util.rng import ensure_rng

        policy = HedgePolicy(min_delay=0.05, max_delay=0.2)
        window = LatencyWindow(16)
        rng = ensure_rng(3)
        assert policy.delay(window, rng, remaining=0.02) == 0.02
        assert policy.delay(window, rng, remaining=0.0) == 0.0
        # A negative remaining (budget already spent) floors at zero
        # rather than scheduling a hedge in the past.
        assert policy.delay(window, rng, remaining=-1.0) == 0.0
        # No budget constraint: the usual bounds apply untouched.
        assert policy.delay(window, rng, remaining=None) == 0.05


class TestStatsIdentity:
    def test_stats_carry_version_uptime_and_snapshot(self):
        from repro.util.version import REPRO_VERSION

        corpus = make_corpus(8)
        engines, _, coordinator = make_cluster(corpus, replication=2)
        try:
            stats = coordinator.stats()
            assert stats["repro_version"] == REPRO_VERSION
            assert stats["uptime_s"] >= 0.0
            # No probe has run yet: versions default to zero.
            assert stats["snapshot_version"] == 0
            assert stats["snapshot_versions"] == [0, 0, 0]

            points = np.random.default_rng(21).random((12, DIMENSION))
            coordinator.insert(points, sequence_id="stats-probe-seq")
            coordinator.probe()
            stats = coordinator.stats()
            # The write bumped at least the replicas holding the new
            # sequence; the cluster-wide version is their maximum.
            assert stats["snapshot_version"] >= 1
            assert stats["snapshot_version"] == max(
                stats["snapshot_versions"]
            )
            assert len(stats["snapshot_versions"]) == len(engines)
            assert all(
                block["probe"].get("status") == "ok"
                for block in stats["backends"]
            )
        finally:
            close_all(engines, coordinator)


class TestConfiguration:
    def test_rejects_empty_backends_and_bad_quorum(self):
        corpus = make_corpus(4)
        with pytest.raises(ValueError):
            ClusterCoordinator([])
        engines, _, coordinator = make_cluster(corpus, replication=2)
        coordinator.close()
        with pytest.raises(ValueError):
            make_cluster(corpus, replication=2, write_quorum=3)
        with pytest.raises(ValueError):
            ClusterCoordinator(
                [object()] * 2,
                health=HealthTracker(5),
            )
        for engine in engines:
            engine.close()

    def test_healthz_reports_degraded_then_partial(self):
        corpus = make_corpus(8)
        engines, backends, coordinator = make_cluster(corpus, replication=2)
        query = np.random.default_rng(2).random((8, DIMENSION))
        try:
            assert coordinator.healthz()["status"] == "ok"
            backends[0].dead = True
            for _ in range(4):
                coordinator.search(query, 0.4)
            assert coordinator.healthz()["status"] == "degraded"
            backends[1].dead = True
            backends[2].dead = True
            for _ in range(4):
                coordinator.search(query, 0.4)
            health = coordinator.healthz()
            assert health["status"] == "partial"
            assert health["unavailable_shards"]
        finally:
            close_all(engines, coordinator)
