"""Unit tests for query workloads, time-series and image generators."""

import numpy as np
import pytest

from repro.core.distance import sequence_distance
from repro.core.sequence import MultidimensionalSequence
from repro.datagen.image import (
    generate_image_corpus,
    generate_image_grid,
    generate_image_sequence,
)
from repro.datagen.queries import generate_queries
from repro.datagen.timeseries import (
    generate_random_walk,
    generate_seasonal_series,
    generate_stock_series,
    to_unit_interval,
)


class TestQueries:
    def _corpus(self, rng):
        return {
            f"s{i}": MultidimensionalSequence(rng.random((60, 3)))
            for i in range(6)
        }

    def test_count_and_ids(self, rng):
        workload = generate_queries(self._corpus(rng), 5, seed=1)
        assert len(workload) == 5
        assert workload[0].sequence_id == "query-0"

    def test_lengths_within_range(self, rng):
        workload = generate_queries(
            self._corpus(rng), 10, length_range=(8, 20), seed=2
        )
        assert all(8 <= len(q) <= 20 for q in workload)

    def test_length_clamped_to_source(self, rng):
        corpus = {"tiny": MultidimensionalSequence(rng.random((5, 3)))}
        workload = generate_queries(corpus, 3, length_range=(10, 20), seed=3)
        assert all(len(q) == 5 for q in workload)

    def test_sources_recorded_and_consistent(self, rng):
        corpus = self._corpus(rng)
        workload = generate_queries(corpus, 6, noise=0.0, seed=4)
        for query, (source_id, start, length) in zip(
            workload, workload.sources
        ):
            block = corpus[source_id].points[start : start + length]
            np.testing.assert_allclose(query.points, block)

    def test_zero_noise_queries_are_exact_subsequences(self, rng):
        corpus = self._corpus(rng)
        workload = generate_queries(corpus, 4, noise=0.0, seed=5)
        for query, (source_id, _, _) in zip(workload, workload.sources):
            assert sequence_distance(query, corpus[source_id]) < 1e-12

    def test_noise_perturbs_but_stays_in_cube(self, rng):
        workload = generate_queries(self._corpus(rng), 4, noise=0.05, seed=6)
        for query in workload:
            assert query.points.min() >= 0.0
            assert query.points.max() <= 1.0

    def test_accepts_list_corpus(self, rng):
        corpus = [MultidimensionalSequence(rng.random((30, 2))) for _ in range(3)]
        workload = generate_queries(corpus, 2, length_range=(5, 10), seed=7)
        assert len(workload) == 2

    def test_reproducible(self, rng):
        corpus = self._corpus(rng)
        a = generate_queries(corpus, 3, seed=8)
        b = generate_queries(corpus, 3, seed=8)
        assert all(x == y for x, y in zip(a, b))

    def test_validation(self, rng):
        corpus = self._corpus(rng)
        with pytest.raises(ValueError):
            generate_queries(corpus, 0)
        with pytest.raises(ValueError):
            generate_queries(corpus, 1, length_range=(5, 2))
        with pytest.raises(ValueError):
            generate_queries(corpus, 1, noise=-0.1)
        with pytest.raises(ValueError):
            generate_queries({}, 1)


class TestTimeSeries:
    def test_to_unit_interval(self):
        out = to_unit_interval([2.0, 4.0, 6.0])
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_to_unit_interval_constant(self):
        np.testing.assert_allclose(to_unit_interval([3.0, 3.0]), [0.5, 0.5])

    def test_random_walk_bounds_and_start(self):
        walk = generate_random_walk(500, start=0.5, seed=1)
        assert walk.shape == (500,)
        assert walk[0] == 0.5
        assert walk.min() >= 0.0 and walk.max() <= 1.0

    def test_random_walk_step_controls_variance(self):
        calm = generate_random_walk(500, step=0.001, seed=2)
        wild = generate_random_walk(500, step=0.05, seed=2)
        assert np.std(np.diff(calm)) < np.std(np.diff(wild))

    def test_stock_series_normalised(self):
        series = generate_stock_series(300, seed=3)
        assert series.min() == 0.0 and series.max() == 1.0

    def test_seasonal_series_periodicity(self):
        series = generate_seasonal_series(560, period=28, noise=0.0, seed=4)
        # autocorrelation at one period should beat half a period
        centred = series - series.mean()

        def autocorr(lag):
            return float(np.dot(centred[:-lag], centred[lag:]))

        assert autocorr(28) > autocorr(14)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_random_walk(0)
        with pytest.raises(ValueError):
            generate_random_walk(5, step=-1)
        with pytest.raises(ValueError):
            generate_random_walk(5, start=2.0)
        with pytest.raises(ValueError):
            generate_stock_series(0)
        with pytest.raises(ValueError):
            generate_seasonal_series(5, period=0)


class TestImages:
    def test_grid_shape_and_bounds(self):
        grid = generate_image_grid(3, channels=3, seed=1)
        assert grid.shape == (8, 8, 3)
        assert grid.min() >= 0.0 and grid.max() <= 1.0

    def test_sequence_covers_every_region_once(self):
        seq = generate_image_sequence(3, seed=2)
        assert len(seq) == 64
        assert seq.dimension == 3

    def test_hilbert_ordering_is_local(self):
        """Hilbert neighbours are grid neighbours, so consecutive sequence
        elements should be far more similar than random pairs."""
        seq = generate_image_sequence(4, seed=3, curve="hilbert")
        points = seq.points
        consecutive = np.mean(
            np.linalg.norm(np.diff(points, axis=0), axis=1)
        )
        rng = np.random.default_rng(0)
        shuffled = points[rng.permutation(len(points))]
        random_pairs = np.mean(
            np.linalg.norm(np.diff(shuffled, axis=0), axis=1)
        )
        assert consecutive < random_pairs

    def test_zorder_supported(self):
        seq = generate_image_sequence(2, curve="zorder", seed=4)
        assert len(seq) == 16

    def test_unknown_curve_rejected(self):
        with pytest.raises(ValueError, match="curve"):
            generate_image_sequence(2, curve="peano", seed=5)

    def test_corpus(self):
        corpus = generate_image_corpus(4, order=2, seed=6)
        assert len(corpus) == 4
        assert all(len(s) == 16 for s in corpus)
        assert corpus[0].sequence_id == "image-0"

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_image_grid(0)
        with pytest.raises(ValueError):
            generate_image_grid(2, channels=0)
        with pytest.raises(ValueError):
            generate_image_grid(2, n_blobs=-1)
        with pytest.raises(ValueError):
            generate_image_grid(2, blob_radius=0.0)
        with pytest.raises(ValueError):
            generate_image_corpus(0)
