"""End-to-end tests of the HTTP endpoint and its client.

The server binds port 0 (a free ephemeral port) so tests never collide;
each fixture tears the server and engine down deterministically.  Status
codes are asserted at the raw urllib level; the typed-exception round
trip (429 → Overloaded etc.) through :class:`ServiceClient`.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.database import SequenceDatabase
from repro.service import (
    DeadlineExceeded,
    EngineClosed,
    Overloaded,
    QueryEngine,
    ServiceClient,
)
from repro.service.http import serve


def build_database(rng, count=8):
    database = SequenceDatabase(dimension=2)
    for ordinal in range(count):
        database.add(rng.random((25, 2)), sequence_id=f"s{ordinal}")
    return database


def start_server(engine):
    server = serve(engine, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(
        f"http://127.0.0.1:{server.server_address[1]}", timeout=10.0
    )
    return server, client


@pytest.fixture
def served(rng):
    engine = QueryEngine(build_database(rng), workers=2, cache_size=8)
    server, client = start_server(engine)
    yield engine, client
    server.shutdown()
    server.server_close()
    engine.close()


def post_status(client, path, body):
    """Raw POST returning the HTTP status code."""
    request = urllib.request.Request(
        client.base_url + path,
        data=json.dumps(body).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as reply:
            return reply.status
    except urllib.error.HTTPError as error:
        error.read()
        return error.code


class TestRoutes:
    def test_healthz(self, served):
        engine, client = served
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["sequences"] == 8
        assert health["dimension"] == 2
        assert health["snapshot_version"] == 0

    def test_search_matches_embedded_engine(self, rng, served):
        engine, client = served
        query = rng.random((10, 2))
        reply = client.search(query, 0.5)
        embedded = engine.search(query, 0.5)
        assert reply["answers"] == list(embedded.answers)
        assert reply["candidates"] == list(embedded.candidates)
        assert reply["snapshot_version"] == 0
        for sequence_id, interval in embedded.solution_intervals.items():
            assert reply["intervals"][str(sequence_id)] == [
                [start, stop] for start, stop in interval.intervals
            ]

    def test_repeated_search_is_a_cache_hit(self, rng, served):
        _, client = served
        query = rng.random((10, 2))
        first = client.search(query, 0.5)
        again = client.search(query, 0.5)
        assert first["cache"] == "miss"
        assert again["cache"] == "hit"
        assert again["answers"] == first["answers"]
        tighter = client.search(query, 0.2)
        assert tighter["cache"] == "refine"
        assert set(tighter["answers"]) <= set(first["answers"])

    def test_find_intervals_false_omits_intervals(self, rng, served):
        _, client = served
        reply = client.search(rng.random((10, 2)), 0.5, find_intervals=False)
        assert "intervals" not in reply

    def test_knn(self, rng, served):
        engine, client = served
        query = rng.random((10, 2))
        neighbors = client.knn(query, 3)
        assert neighbors == engine.knn(query, 3)
        distances = [distance for distance, _ in neighbors]
        assert distances == sorted(distances)

    def test_insert_then_search_and_remove(self, rng, served):
        engine, client = served
        points = rng.random((25, 2))
        assert client.insert(points, sequence_id="fresh") == "fresh"
        assert client.healthz()["sequences"] == 9
        assert client.healthz()["snapshot_version"] == 1
        reply = client.search(points, 0.05)
        assert "fresh" in reply["answers"]
        client.remove("fresh")
        assert client.healthz()["sequences"] == 8

    def test_stats_endpoint(self, rng, served):
        engine, client = served
        client.search(rng.random((10, 2)), 0.5)
        stats = client.stats()
        assert stats == engine.stats() or stats["requests_total"] >= 1
        for key in (
            "requests",
            "completed",
            "latency_ms",
            "cache",
            "queue_depth",
            "snapshot_version",
            "uptime_s",
            "repro_version",
        ):
            assert key in stats


class TestErrorMapping:
    def test_duplicate_insert_is_409(self, rng, served):
        _, client = served
        points = rng.random((20, 2)).tolist()
        assert post_status(client, "/insert", {"points": points, "sequence_id": "dup"}) == 200
        assert post_status(client, "/insert", {"points": points, "sequence_id": "dup"}) == 409
        with pytest.raises(KeyError):
            client.insert(points, sequence_id="dup")

    def test_unknown_remove_is_404(self, served):
        _, client = served
        assert post_status(client, "/remove", {"sequence_id": "ghost"}) == 404
        with pytest.raises(KeyError):
            client.remove("ghost")

    def test_bad_input_is_400(self, rng, served):
        _, client = served
        points = rng.random((10, 2)).tolist()
        assert post_status(client, "/search", {"points": points, "epsilon": -1}) == 400
        assert post_status(client, "/search", {"epsilon": 0.5}) == 400
        assert post_status(client, "/search", {"points": points, "epsilon": 0.5, "timeout": -2}) == 400
        with pytest.raises(ValueError):
            client.search(points, -1.0)

    def test_unknown_route_is_404(self, served):
        _, client = served
        assert post_status(client, "/nope", {}) == 404

    def test_overloaded_is_429_and_typed(self, rng):
        engine = QueryEngine(build_database(rng, count=3), workers=1, queue_cap=0)
        gate = threading.Event()
        inner = engine._do_search
        engine._do_search = lambda *args: (gate.wait(5), inner(*args))[1]
        server, client = start_server(engine)
        query = rng.random((8, 2))
        blocker = threading.Thread(
            target=lambda: post_status(
                client, "/search", {"points": query.tolist(), "epsilon": 0.5}
            )
        )
        blocker.start()
        try:
            deadline = time.monotonic() + 5
            while engine.queue_depth == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            with pytest.raises(Overloaded) as caught:
                client.search(query, 0.5)
            assert caught.value.capacity == 1
        finally:
            gate.set()
            blocker.join()
            server.shutdown()
            server.server_close()
            engine.close()

    def test_deadline_is_504_and_typed(self, rng):
        engine = QueryEngine(build_database(rng, count=3), workers=1)
        inner = engine._do_search
        engine._do_search = lambda *args: (time.sleep(0.4), inner(*args))[1]
        server, client = start_server(engine)
        try:
            with pytest.raises(DeadlineExceeded) as caught:
                client.search(rng.random((8, 2)), 0.5, timeout=0.05)
            # The server sees the *remaining* budget, not the original
            # 0.05 — the client debits its own overhead before sending.
            assert 0.0 < caught.value.timeout <= 0.05
        finally:
            server.shutdown()
            server.server_close()
            engine.close()

    def test_closed_engine_is_503_and_typed(self, rng):
        engine = QueryEngine(build_database(rng, count=2), workers=1)
        server, client = start_server(engine)
        engine.close()
        try:
            assert client.healthz()["status"] == "closed"
            with pytest.raises(EngineClosed):
                client.search(rng.random((8, 2)), 0.5)
        finally:
            server.shutdown()
            server.server_close()


class TestClientValidation:
    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError):
            ServiceClient("http://127.0.0.1:1", timeout=0.0)

    def test_base_url_normalised(self):
        client = ServiceClient("http://127.0.0.1:9999/")
        assert client.base_url == "http://127.0.0.1:9999"


class TestRetryAfterAndDegraded:
    def test_429_carries_retry_after_header_and_payload(self, rng):
        engine = QueryEngine(
            build_database(rng, count=3), workers=1, queue_cap=0
        )
        gate = threading.Event()
        inner = engine._do_search
        engine._do_search = lambda *args: (gate.wait(5), inner(*args))[1]
        server, client = start_server(engine)
        query = rng.random((8, 2))
        blocker = threading.Thread(
            target=lambda: post_status(
                client, "/search", {"points": query.tolist(), "epsilon": 0.5}
            )
        )
        blocker.start()
        try:
            deadline = time.monotonic() + 5
            while engine.queue_depth == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            request = urllib.request.Request(
                client.base_url + "/search",
                data=json.dumps(
                    {"points": query.tolist(), "epsilon": 0.5}
                ).encode(),
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(request, timeout=10.0)
            error = caught.value
            assert error.code == 429
            # RFC 9110 integral delay-seconds, rounded up from the hint.
            assert int(error.headers["Retry-After"]) >= 1
            detail = json.loads(error.read())["error"]
            assert detail["queue_depth"] == 1
            assert detail["capacity"] == 1
            assert detail["retry_after"] > 0
            # The typed client surfaces the same hint.
            with pytest.raises(Overloaded) as typed:
                client.search(query, 0.5)
            assert typed.value.retry_after is not None
            assert typed.value.queue_depth == 1
        finally:
            gate.set()
            blocker.join()
            server.shutdown()
            server.server_close()
            engine.close()

    def test_healthz_reports_degraded(self, rng):
        engine = QueryEngine(
            build_database(rng, count=2), workers=1, degrade_after=1
        )
        server, client = start_server(engine)
        try:
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["degraded"] is False
            assert health["queue_depth"] == 0
            assert health["durable"] is False
            with engine._health_lock:
                engine._degraded = True
            health = client.healthz()
            assert health["status"] == "degraded"
            assert health["degraded"] is True
        finally:
            server.shutdown()
            server.server_close()
            engine.close()

    def test_healthz_reports_durable(self, rng, tmp_path):
        from repro.service import DurabilityConfig

        engine = QueryEngine(
            build_database(rng, count=2),
            workers=1,
            durability=DurabilityConfig(tmp_path / "data"),
        )
        server, client = start_server(engine)
        try:
            health = client.healthz()
            assert health["durable"] is True
            # Checkpoint age: acknowledged writes not yet folded into a
            # checkpoint, and which checkpoint the engine would recover to.
            assert health["wal_records"] == 0
            assert health["checkpoints"] == 0
            assert health["last_checkpoint_version"] == 0
            client.insert(rng.random((10, 2)), "lagging")
            health = client.healthz()
            assert health["wal_records"] == 1
            assert health["last_checkpoint_version"] == 0
            engine.checkpoint()
            health = client.healthz()
            assert health["wal_records"] == 0
            assert health["checkpoints"] == 1
            assert health["last_checkpoint_version"] >= 1
        finally:
            server.shutdown()
            server.server_close()
            engine.close()


class TestGracefulShutdown:
    def test_draining_server_answers_typed_503(self, rng):
        engine = QueryEngine(build_database(rng, count=2), workers=1)
        server, client = start_server(engine)
        try:
            assert client.healthz()["status"] == "ok"
            server.draining = True
            with pytest.raises(EngineClosed, match="draining"):
                client.healthz()
        finally:
            server.draining = False
            server.shutdown()
            server.server_close()
            engine.close()

    def test_request_racing_shutdown_gets_its_result(self, rng):
        """A search in flight when shutdown starts completes normally."""
        from repro.service.http import shutdown_gracefully

        engine = QueryEngine(build_database(rng), workers=2, cache_size=8)
        release = threading.Event()
        inner = engine._do_search
        engine._do_search = lambda *args: (release.wait(5), inner(*args))[1]
        server, client = start_server(engine)
        query = rng.random((10, 2))
        outcome: dict = {}

        def slow_search():
            try:
                outcome["reply"] = client.search(query, 0.5)
            except Exception as error:  # noqa: BLE001 - recorded for assert
                outcome["error"] = error

        racer = threading.Thread(target=slow_search)
        racer.start()
        deadline = time.monotonic() + 5
        while server.inflight == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        shutdown = threading.Thread(
            target=lambda: shutdown_gracefully(
                server, engine, drain_timeout=10.0
            )
        )
        shutdown.start()
        time.sleep(0.05)  # shutdown is now waiting on the drain
        release.set()
        racer.join(timeout=10.0)
        shutdown.join(timeout=10.0)
        # The racing request got a real JSON response, never a reset.
        assert "error" not in outcome, outcome.get("error")
        assert "answers" in outcome["reply"]
        assert engine.closed

    def test_drain_timeout_reports_false(self, rng):
        from repro.service.http import shutdown_gracefully

        engine = QueryEngine(build_database(rng, count=2), workers=1)
        release = threading.Event()
        inner = engine._do_search
        engine._do_search = lambda *args: (release.wait(1.0), inner(*args))[1]
        server, client = start_server(engine)
        query = rng.random((8, 2))
        racer = threading.Thread(
            target=lambda: post_status(
                client, "/search", {"points": query.tolist(), "epsilon": 0.5}
            )
        )
        racer.start()
        deadline = time.monotonic() + 5
        while server.inflight == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        drained = shutdown_gracefully(server, engine, drain_timeout=0.05)
        assert drained is False
        release.set()
        racer.join(timeout=10.0)

    def test_inflight_counter_balances(self, rng):
        engine = QueryEngine(build_database(rng, count=2), workers=1)
        server, client = start_server(engine)
        try:
            assert server.inflight == 0
            client.healthz()
            client.search(rng.random((8, 2)), 0.5)
            # The client sees the response body before the handler
            # thread runs its finally-block decrement, so give the
            # counter a moment to settle instead of racing it.
            deadline = time.monotonic() + 5.0
            while server.inflight != 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert server.inflight == 0
        finally:
            server.shutdown()
            server.server_close()
            engine.close()
