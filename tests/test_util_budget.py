"""Deadline budgets, cancellation scopes, and the adaptive limiter.

The :mod:`repro.util.budget` primitives are the transport-free core of
the request-budget layer: a :class:`Deadline` every hop debits, and the
``deadline_scope``/``checkpoint`` pair the engine's Phase 2/3 loops use
for cooperative cancellation.  :class:`AdaptiveLimiter` is the AIMD
admission gate built on top of them in the service layer.
"""

import time

import pytest

from repro.service.admission import PRIORITIES, AdaptiveLimiter
from repro.util.budget import (
    Deadline,
    OperationCancelled,
    active_deadline,
    checkpoint,
    deadline_scope,
)


class TestDeadline:
    def test_unbounded(self):
        deadline = Deadline.after(None)
        assert deadline.remaining() is None
        assert not deadline.expired()
        assert not deadline.done()
        assert deadline.clamp(1.5) == 1.5
        assert deadline.clamp(None) is None
        assert "unbounded" in repr(deadline)

    def test_bounded_budget_shrinks(self):
        deadline = Deadline.after(5.0)
        remaining = deadline.remaining()
        assert 0.0 < remaining <= 5.0
        assert deadline.clamp(10.0) <= 5.0
        assert deadline.clamp(0.001) == 0.001
        assert deadline.clamp(None) == pytest.approx(
            deadline.remaining(), abs=0.05
        )

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0)
        with pytest.raises(ValueError):
            Deadline.after(-1.0)

    def test_expired(self):
        deadline = Deadline(time.monotonic() - 0.01)
        assert deadline.expired()
        assert deadline.done()
        assert deadline.remaining() <= 0.0

    def test_cancel_latch(self):
        deadline = Deadline.after(60.0)
        assert not deadline.cancelled
        deadline.cancel()
        assert deadline.cancelled
        assert deadline.done()
        assert not deadline.expired()
        assert "cancelled" in repr(deadline)


class TestCheckpointScopes:
    def test_no_scope_is_noop(self):
        checkpoint("anywhere")

    def test_none_scope_installs_nothing(self):
        with deadline_scope(None):
            assert active_deadline() is None
            checkpoint("still fine")

    def test_healthy_deadline_passes(self):
        with deadline_scope(Deadline.after(60.0)):
            checkpoint("plenty of budget")

    def test_cancelled_deadline_raises(self):
        deadline = Deadline.after(60.0)
        deadline.cancel()
        with deadline_scope(deadline):
            with pytest.raises(OperationCancelled) as caught:
                checkpoint("phase2")
        assert caught.value.cancelled
        assert not caught.value.expired
        assert "phase2" in str(caught.value)

    def test_expired_deadline_raises(self):
        with deadline_scope(Deadline(time.monotonic() - 0.01)):
            with pytest.raises(OperationCancelled) as caught:
                checkpoint()
        assert caught.value.expired
        assert not caught.value.cancelled

    def test_innermost_deadline_governs(self):
        outer = Deadline.after(60.0)
        inner = Deadline.after(60.0)
        inner.cancel()
        with deadline_scope(outer):
            assert active_deadline() is outer
            with deadline_scope(inner):
                assert active_deadline() is inner
                with pytest.raises(OperationCancelled):
                    checkpoint()
            checkpoint()  # the healthy outer deadline governs again
        assert active_deadline() is None


class TestAdaptiveLimiter:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveLimiter(min_limit=0, max_limit=4)
        with pytest.raises(ValueError):
            AdaptiveLimiter(min_limit=4, max_limit=2)
        with pytest.raises(ValueError):
            AdaptiveLimiter(min_limit=1, max_limit=4, target_queue_wait=0.0)
        with pytest.raises(ValueError):
            AdaptiveLimiter(min_limit=1, max_limit=4, decrease=1.0)
        with pytest.raises(ValueError):
            AdaptiveLimiter(min_limit=1, max_limit=4, increase=0.0)

    def test_static_mode_pins_limit(self):
        limiter = AdaptiveLimiter(
            min_limit=2, max_limit=6, target_queue_wait=None
        )
        for _ in range(50):
            limiter.observe(10.0)
        assert limiter.effective_limit() == 6
        assert limiter.snapshot()["adaptive"] is False

    def test_acquire_release_and_shed(self):
        limiter = AdaptiveLimiter(
            min_limit=1, max_limit=2, target_queue_wait=None
        )
        assert limiter.acquire() == 0
        assert limiter.acquire() == 1
        assert limiter.acquire() is None  # at the limit: shed
        limiter.release()
        assert limiter.inflight == 1
        assert limiter.acquire() == 1
        assert limiter.snapshot()["shed_by_priority"]["read"] == 1

    def test_unknown_priority_rejected(self):
        limiter = AdaptiveLimiter(min_limit=1, max_limit=2)
        assert "read" in PRIORITIES
        with pytest.raises(ValueError):
            limiter.acquire("bulk")
        with pytest.raises(ValueError):
            limiter.permits("bulk")

    def test_overlong_waits_shrink_to_the_floor(self):
        limiter = AdaptiveLimiter(
            min_limit=4, max_limit=100, target_queue_wait=0.05, cooldown=0.0
        )
        for _ in range(200):
            limiter.observe(1.0)
        assert limiter.effective_limit() == 4

    def test_good_waits_grow_additively_back(self):
        limiter = AdaptiveLimiter(
            min_limit=2, max_limit=10, target_queue_wait=0.05, cooldown=0.0
        )
        for _ in range(50):
            limiter.observe(1.0)
        shrunk = limiter.effective_limit()
        assert shrunk == 2
        for _ in range(500):
            limiter.observe(0.0)
        grown = limiter.effective_limit()
        assert shrunk < grown <= 10

    def test_cooldown_limits_decrease_rate(self):
        limiter = AdaptiveLimiter(
            min_limit=1, max_limit=100, target_queue_wait=0.05, cooldown=60.0
        )
        limiter.observe(1.0)
        first = limiter.effective_limit()
        assert first == 90  # one multiplicative cut: 100 * 0.9
        for _ in range(20):
            limiter.observe(1.0)
        # Still inside the cooldown: the burst counts as one signal.
        assert limiter.effective_limit() == first

    def test_priority_headroom_sheds_low_classes_first(self):
        limiter = AdaptiveLimiter(
            min_limit=1, max_limit=8, target_queue_wait=None
        )
        for _ in range(4):
            assert limiter.acquire() is not None
        # At 4 of 8: repair (50% headroom) sheds, writes (75%) still fit.
        assert not limiter.permits("repair")
        assert limiter.permits("write")
        for _ in range(2):
            assert limiter.acquire() is not None
        # At 6 of 8: writes shed too, reads take the last slots.
        assert not limiter.permits("write")
        assert limiter.acquire("read") is not None
        shed = limiter.snapshot()["shed_by_priority"]
        assert shed["repair"] >= 1
        assert shed["write"] >= 1
