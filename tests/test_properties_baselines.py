"""Property-based tests for the baseline matchers' guarantees.

The DFT F-index and the ST-index both rest on a lower-bounding feature
transform: their candidate sets must be supersets of the true answers for
*any* data.  Hypothesis hunts for violations.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.dft import DftWholeMatcher, dft_features
from repro.baselines.stindex import STIndexSubsequenceMatcher, window_features

series_strategy = arrays(
    np.float64,
    st.integers(8, 32),
    elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
)


class TestDftProperties:
    @given(
        st.integers(8, 24).flatmap(
            lambda n: st.tuples(
                arrays(np.float64, n,
                       elements=st.floats(0.0, 1.0, allow_nan=False, width=64)),
                arrays(np.float64, n,
                       elements=st.floats(0.0, 1.0, allow_nan=False, width=64)),
                st.integers(1, n),
            )
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_feature_distance_lower_bounds(self, case):
        a, b, coefficients = case
        fa = dft_features(a, coefficients)
        fb = dft_features(b, coefficients)
        true = float(np.linalg.norm(a - b))
        assert float(np.linalg.norm(fa - fb)) <= true + 1e-9

    @given(
        st.lists(
            arrays(np.float64, 16,
                   elements=st.floats(0.0, 1.0, allow_nan=False, width=64)),
            min_size=2,
            max_size=8,
        ),
        st.floats(0.0, 3.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_candidates_superset_of_answers(self, corpus, epsilon):
        matcher = DftWholeMatcher(16, n_coefficients=3)
        for ordinal, series in enumerate(corpus):
            matcher.add(series, ordinal)
        query = corpus[0]
        expected = {
            ordinal
            for ordinal, series in enumerate(corpus)
            if np.linalg.norm(series - query) <= epsilon
        }
        assert expected <= matcher.candidates(query, epsilon)
        assert matcher.search(query, epsilon) == expected


class TestSTIndexProperties:
    @given(
        st.lists(
            arrays(np.float64, st.integers(10, 30),
                   elements=st.floats(0.0, 1.0, allow_nan=False, width=64)),
            min_size=1,
            max_size=5,
        ),
        st.integers(0, 20),
        st.floats(0.0, 2.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_exact_subsequence_matching(self, corpus, query_pick, epsilon):
        window = 4
        matcher = STIndexSubsequenceMatcher(window=window, n_coefficients=2)
        for ordinal, series in enumerate(corpus):
            matcher.add(series, ordinal)
        source = corpus[query_pick % len(corpus)]
        length = min(len(source), window + 3)
        query = source[:length]

        got = {(m.sequence_id, m.offset) for m in matcher.search(query, epsilon)}
        expected = set()
        for ordinal, series in enumerate(corpus):
            for offset in range(series.size - length + 1):
                block = series[offset : offset + length]
                if np.linalg.norm(block - query) <= epsilon:
                    expected.add((ordinal, offset))
        assert got == expected

    @given(series_strategy)
    @settings(max_examples=60, deadline=None)
    def test_window_trail_shape(self, series):
        window = min(6, series.size)
        trail = window_features(series, window, 2)
        assert trail.shape == (series.size - window + 1, 4)
