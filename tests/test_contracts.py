"""The lower-bound contract checker.

Two kinds of coverage:

* the toggle machinery (off by default, env var, ``checking_contracts``
  scoping, the ``lower_bounds`` decorator); and
* *mutation tests*: deliberately break the ``Dnorm`` computation and the
  Phase-3 refinement and assert the contract net catches each — the whole
  point of the subsystem is that a bug violating Lemmas 2-3 cannot pass
  silently while checking is on.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.analysis.contracts as analysis_contracts
import repro.core.distance as distance_module
import repro.core.search as search_module
from repro.analysis.contracts import (
    BoundChain,
    audit_search,
    lower_bound_chain,
)
from repro.core.contracts import (
    CONTRACTS_ENV_VAR,
    ContractViolation,
    checking_contracts,
    contracts_enabled,
    lower_bounds,
)
from repro.core.database import SequenceDatabase
from repro.core.distance import normalized_distance
from repro.core.mbr import MBR
from repro.core.partitioning import partition_sequence
from repro.core.search import SimilaritySearch
from repro.core.sequence import MultidimensionalSequence
from repro.core.solution_interval import (
    IntervalSet,
    _validate_difference,
    _validate_intersection,
    _validate_union,
)


# ----------------------------------------------------------------------
# Toggle machinery
# ----------------------------------------------------------------------
def test_contracts_disabled_by_default(monkeypatch):
    monkeypatch.delenv(CONTRACTS_ENV_VAR, raising=False)
    assert not contracts_enabled()


@pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
def test_env_var_enables_contracts(monkeypatch, value):
    monkeypatch.setenv(CONTRACTS_ENV_VAR, value)
    assert contracts_enabled()


@pytest.mark.parametrize("value", ["", "0", "false", "off"])
def test_falsy_env_values_keep_contracts_off(monkeypatch, value):
    monkeypatch.setenv(CONTRACTS_ENV_VAR, value)
    assert not contracts_enabled()


def test_checking_contracts_scopes_and_nests(monkeypatch):
    monkeypatch.delenv(CONTRACTS_ENV_VAR, raising=False)
    assert not contracts_enabled()
    with checking_contracts():
        assert contracts_enabled()
        with checking_contracts():
            assert contracts_enabled()
        # still on: the outermost scope has not exited yet
        assert contracts_enabled()
    assert not contracts_enabled()


def test_checking_contracts_restores_on_exception(monkeypatch):
    monkeypatch.delenv(CONTRACTS_ENV_VAR, raising=False)
    with pytest.raises(RuntimeError, match="boom"):
        with checking_contracts():
            raise RuntimeError("boom")
    assert not contracts_enabled()


def test_contract_violation_is_a_runtime_error():
    assert issubclass(ContractViolation, RuntimeError)


# ----------------------------------------------------------------------
# The lower_bounds decorator
# ----------------------------------------------------------------------
def test_lower_bounds_validator_runs_only_when_enabled(monkeypatch):
    monkeypatch.delenv(CONTRACTS_ENV_VAR, raising=False)
    calls = []

    def validator(result, x):
        calls.append((result, x))

    @lower_bounds(validator, label="doubling stays even")
    def double(x: int) -> int:
        return 2 * x

    assert double(3) == 6
    assert calls == []  # disabled: zero validator overhead

    with checking_contracts():
        assert double(4) == 8
    assert calls == [(8, 4)]  # validator sees (result, *args)

    assert double.__name__ == "double"  # functools.wraps preserved
    assert double.__contract_label__ == "doubling stays even"
    assert double.__contract_validator__ is validator


def test_lower_bounds_label_defaults_to_validator_name():
    def my_validator(result):
        return None

    @lower_bounds(my_validator)
    def unit() -> None:
        return None

    assert unit.__contract_label__ == "my_validator"


def test_lower_bounds_propagates_validator_failure(monkeypatch):
    monkeypatch.delenv(CONTRACTS_ENV_VAR, raising=False)

    @lower_bounds(lambda result: (_ for _ in ()).throw(ContractViolation("bad")))
    def broken() -> int:
        return 1

    assert broken() == 1  # fine while checking is off
    with checking_contracts():
        with pytest.raises(ContractViolation, match="bad"):
            broken()


# ----------------------------------------------------------------------
# Mutation test A: a broken Dnorm kernel is caught (Lemma 2)
# ----------------------------------------------------------------------
def _dnorm_fixture():
    query_mbr = MBR.of_points([[0.0, 0.0], [0.1, 0.1]])
    data_mbrs = [MBR.of_point([0.8 + 0.01 * i, 0.8]) for i in range(5)]
    return query_mbr, data_mbrs


def test_normalized_distance_passes_contract_unmutated():
    query_mbr, data_mbrs = _dnorm_fixture()
    with checking_contracts():
        result = normalized_distance(query_mbr, 3, data_mbrs, [1] * 5, 2)
    assert result.value > 0.0


def test_broken_dnorm_kernel_is_caught(monkeypatch):
    monkeypatch.delenv(CONTRACTS_ENV_VAR, raising=False)
    query_mbr, data_mbrs = _dnorm_fixture()
    original = distance_module._weighted_window_value

    def undershooting(*args):
        return original(*args) * 0.5  # Dnorm now falls below min window Dmbr

    monkeypatch.setattr(distance_module, "_weighted_window_value", undershooting)

    # Without checking the bug passes silently ...
    normalized_distance(query_mbr, 3, data_mbrs, [1] * 5, 2)

    # ... with checking it cannot.
    with checking_contracts():
        with pytest.raises(ContractViolation, match="Dnorm contract violated"):
            normalized_distance(query_mbr, 3, data_mbrs, [1] * 5, 2)


# ----------------------------------------------------------------------
# Mutation test B: a false dismissal in the search is caught (Lemma 3)
# ----------------------------------------------------------------------
def _loop_corpus():
    t = np.linspace(0.0, 1.0, 60)
    base = np.stack(
        [0.5 + 0.4 * np.sin(2 * np.pi * t), 0.5 + 0.4 * np.cos(2 * np.pi * t)],
        axis=1,
    )
    return base


def _search_fixture():
    base = _loop_corpus()
    database = SequenceDatabase(dimension=2, max_points=8)
    database.add(MultidimensionalSequence(base, "target"))
    database.add(
        MultidimensionalSequence(np.full((30, 2), 0.05), "far-corner")
    )
    engine = SimilaritySearch(database)
    query = MultidimensionalSequence(base[10:40])  # exact subsequence: D = 0
    return engine, query


def test_search_passes_contract_unmutated():
    engine, query = _search_fixture()
    with checking_contracts():
        result = engine.search(query, 0.05)
    assert "target" in result.answers


def test_false_dismissal_is_caught(monkeypatch):
    monkeypatch.delenv(CONTRACTS_ENV_VAR, raising=False)
    engine, query = _search_fixture()
    monkeypatch.setattr(
        search_module, "normalized_distance_row", lambda *args, **kwargs: []
    )

    # Silent wrong answer while checking is off: the true match vanishes.
    assert "target" not in engine.search(query, 0.05).answers

    with checking_contracts():
        with pytest.raises(ContractViolation, match="false dismissal"):
            engine.search(query, 0.05)


# ----------------------------------------------------------------------
# Analysis-level helpers
# ----------------------------------------------------------------------
def test_lower_bound_chain_orders_the_hierarchy():
    base = _loop_corpus()
    query_partition = partition_sequence(base[5:25], max_points=8)
    data_partition = partition_sequence(base, max_points=8)
    chain = lower_bound_chain(query_partition, data_partition)
    assert chain.min_dmbr <= chain.min_dnorm + 1e-9
    assert chain.min_dnorm <= chain.exact_distance + 1e-9
    assert chain.exact_distance == pytest.approx(0.0, abs=1e-9)
    assert chain.holds()


def test_lower_bound_chain_raises_on_broken_chain(monkeypatch):
    base = _loop_corpus()
    query_partition = partition_sequence(base[5:25], max_points=8)
    data_partition = partition_sequence(base, max_points=8)
    monkeypatch.setattr(
        analysis_contracts,
        "min_normalized_distance",
        lambda *args, **kwargs: -1.0,
    )
    with pytest.raises(ContractViolation, match="out of order"):
        lower_bound_chain(query_partition, data_partition)
    # verify=False returns the (broken) chain for inspection instead.
    chain = lower_bound_chain(query_partition, data_partition, verify=False)
    assert not chain.holds()


def test_bound_chain_holds_tolerance():
    assert BoundChain(1.0, 1.0, 1.0).holds()
    assert BoundChain(1.0, 0.5, 2.0).holds() is False
    assert BoundChain(0.5, 2.0, 1.0).holds() is False
    # within the round-off tolerance the chain still counts as ordered
    assert BoundChain(1.0 + 1e-12, 1.0, 1.0).holds()


def test_audit_search_counts_and_validates(monkeypatch):
    engine, query = _search_fixture()
    queries = [query, MultidimensionalSequence(_loop_corpus()[0:12])]
    assert audit_search(engine, queries, 0.05) == 2

    # audit_search enables checking itself, so a broken kernel surfaces
    # without any explicit checking_contracts() at the call site.
    monkeypatch.setattr(
        search_module, "normalized_distance_row", lambda *args, **kwargs: []
    )
    with pytest.raises(ContractViolation, match="false dismissal"):
        audit_search(engine, queries, 0.05)


# ----------------------------------------------------------------------
# Interval-algebra validators
# ----------------------------------------------------------------------
def test_interval_algebra_validated_clean_under_checking():
    left = IntervalSet([(0, 5), (10, 15)])
    right = IntervalSet([(3, 12)])
    with checking_contracts():
        assert left.union(right) == IntervalSet([(0, 15)])
        assert left.intersection(right) == IntervalSet([(3, 5), (10, 12)])
        assert left.difference(right) == IntervalSet([(0, 3), (12, 15)])


def test_union_validator_rejects_lost_input():
    left = IntervalSet([(0, 5)])
    right = IntervalSet([(10, 12)])
    wrong = IntervalSet([(0, 5)])  # lost the right operand entirely
    with pytest.raises(ContractViolation, match="union lost"):
        _validate_union(wrong, left, right)


def test_union_validator_rejects_non_canonical_result():
    left = IntervalSet([(0, 5)])
    right = IntervalSet([(4, 8)])
    corrupt = IntervalSet([(0, 8)])
    corrupt._intervals = [(0, 5), (4, 8)]  # overlapping: canonical form broken
    with pytest.raises(ContractViolation, match="canonical form broken"):
        _validate_union(corrupt, left, right)


def test_intersection_validator_rejects_escaping_result():
    left = IntervalSet([(0, 5)])
    right = IntervalSet([(3, 8)])
    wrong = IntervalSet([(0, 20)])  # not contained in either input
    with pytest.raises(ContractViolation, match="outside an input"):
        _validate_intersection(wrong, left, right)


def test_difference_validator_rejects_kept_overlap():
    left = IntervalSet([(0, 10)])
    right = IntervalSet([(4, 6)])
    wrong = IntervalSet([(0, 10)])  # failed to subtract anything
    with pytest.raises(ContractViolation, match="overlapping the subtracted"):
        _validate_difference(wrong, left, right)
