"""Unit tests for R-tree serialisation and streaming append / calibration."""

import numpy as np
import pytest

from repro.analysis.calibration import calibrate_epsilon, selectivity_curve
from repro.core.database import SequenceDatabase
from repro.core.distance import sequence_distance
from repro.core.mbr import MBR
from repro.core.search import SimilaritySearch
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree
from repro.index.serialize import load_tree, save_tree
from tests.test_rtree import random_boxes


@pytest.mark.parametrize("cls", [RTree, RStarTree])
class TestTreeSerialization:
    def test_round_trip_structure(self, rng, tmp_path, cls):
        tree = cls(dimension=3, max_entries=5)
        tree.extend(random_boxes(rng, 90, dimension=3))
        path = tmp_path / "tree.npz"
        save_tree(tree, path)
        loaded = load_tree(path)

        assert type(loaded) is cls
        assert len(loaded) == len(tree)
        assert loaded.height == tree.height
        assert loaded.max_entries == tree.max_entries
        assert loaded.min_entries == tree.min_entries
        loaded.check_invariants()
        assert {e.payload for e in loaded.entries()} == {
            e.payload for e in tree.entries()
        }

    def test_round_trip_query_identical(self, rng, tmp_path, cls):
        tree = cls(dimension=2, max_entries=4)
        tree.extend(random_boxes(rng, 70))
        path = tmp_path / "tree.npz"
        save_tree(tree, path)
        loaded = load_tree(path)

        for _ in range(10):
            low = rng.random(2) * 0.7
            probe = MBR(low, low + 0.2)
            epsilon = float(rng.random() * 0.2)
            original = {e.payload for e in tree.search_within(probe, epsilon)}
            reloaded = {
                e.payload for e in loaded.search_within(probe, epsilon)
            }
            assert reloaded == original

    def test_access_counts_identical(self, rng, tmp_path, cls):
        """Identical layout means identical node-access counts."""
        tree = cls(dimension=2, max_entries=4)
        tree.extend(random_boxes(rng, 80))
        path = tmp_path / "tree.npz"
        save_tree(tree, path)
        loaded = load_tree(path)
        probe = MBR([0.3, 0.3], [0.5, 0.5])
        tree.stats.reset_query_counters()
        loaded.stats.reset_query_counters()
        tree.search_within(probe, 0.1)
        loaded.search_within(probe, 0.1)
        assert loaded.stats.node_accesses == tree.stats.node_accesses

    def test_empty_tree(self, tmp_path, cls, rng):
        tree = cls(dimension=2)
        path = tmp_path / "empty.npz"
        save_tree(tree, path)
        loaded = load_tree(path)
        assert len(loaded) == 0
        assert loaded.search_within(MBR([0, 0], [1, 1]), 1.0) == []

    def test_insert_after_load(self, rng, tmp_path, cls):
        tree = cls(dimension=2, max_entries=4)
        tree.extend(random_boxes(rng, 30))
        path = tmp_path / "tree.npz"
        save_tree(tree, path)
        loaded = load_tree(path)
        loaded.insert(MBR([0.9, 0.9], [0.95, 0.95]), "late")
        assert len(loaded) == 31
        loaded.check_invariants()


class TestSerializeValidation:
    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_tree("not a tree", tmp_path / "x.npz")


class TestAppendPoints:
    def test_append_extends_and_index_tracks(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((40, 2)), sequence_id="s")
        db.append_points("s", rng.random((25, 2)))
        assert len(db.sequence("s")) == 65
        assert len(db.index) == db.segment_count
        db.index.check_invariants()
        # The patched index must equal a from-scratch rebuild semantically.
        fresh = SequenceDatabase(dimension=2)
        fresh.add(db.sequence("s").points, sequence_id="s")
        assert [s.start for s in fresh.partition("s")] == [
            s.start for s in db.partition("s")
        ]

    def test_append_matches_full_rebuild_partition(self, rng):
        """Greedy partitioning is prefix-deterministic, so appending must
        give the exact same partition as re-partitioning from scratch."""
        db = SequenceDatabase(dimension=3)
        base = rng.random((60, 3))
        extra = rng.random((30, 3))
        db.add(base, sequence_id=0)
        db.append_points(0, extra)
        from repro.core.partitioning import partition_sequence

        expected = partition_sequence(
            np.vstack([base, extra]),
            cost_constant=db.cost_constant,
            max_points=db.max_points,
        )
        got = db.partition(0)
        assert [s.start for s in got] == [s.start for s in expected]
        assert got.mbrs == expected.mbrs

    def test_append_search_consistency(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((30, 2)), sequence_id="grow")
        tail = rng.random((20, 2))
        db.append_points("grow", tail)
        engine = SimilaritySearch(db)
        result = engine.search(tail[:10], 0.01, find_intervals=False)
        assert "grow" in result.answers

    def test_append_empty_is_noop(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((10, 2)), sequence_id=0)
        before = len(db.sequence(0))
        db.append_points(0, np.empty((0, 2)))
        assert len(db.sequence(0)) == before

    def test_append_validation(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((10, 2)), sequence_id=0)
        with pytest.raises(KeyError):
            db.append_points("missing", rng.random((5, 2)))
        with pytest.raises(ValueError, match="dimension"):
            db.append_points(0, rng.random((5, 3)))

    def test_append_with_str_index(self, rng):
        db = SequenceDatabase(dimension=2, index_kind="str")
        db.add(rng.random((30, 2)), sequence_id=0)
        _ = db.index
        db.append_points(0, rng.random((15, 2)))
        assert len(db.index) == db.segment_count


class TestCalibration:
    def _database(self, rng):
        db = SequenceDatabase(dimension=2)
        for i in range(15):
            walk = np.clip(
                0.5 + np.cumsum(rng.normal(0, 0.02, (40, 2)), axis=0), 0, 1
            )
            db.add(walk, sequence_id=i)
        return db

    def test_selectivity_curve_monotone(self, rng):
        db = self._database(rng)
        queries = [db.sequence(0).points[5:15]]
        curve = selectivity_curve(db, queries, [0.05, 0.2, 0.5, 1.0])
        values = [sel for _, sel in curve]
        assert values == sorted(values)
        assert values[-1] == 1.0  # diagonal-scale threshold catches all

    def test_calibrated_epsilon_hits_target(self, rng):
        db = self._database(rng)
        queries = [db.sequence(i).points[0:12] for i in (1, 4, 9)]
        target = 0.4
        epsilon = calibrate_epsilon(db, queries, target, tolerance=0.05)
        sequences = [db.sequence(sid) for sid in db.ids()]
        achieved = np.mean(
            [
                np.mean(
                    [
                        sequence_distance(q, s) <= epsilon
                        for s in sequences
                    ]
                )
                for q in queries
            ]
        )
        assert abs(achieved - target) <= 0.1

    def test_validation(self, rng):
        db = self._database(rng)
        queries = [db.sequence(0).points[:5]]
        with pytest.raises(ValueError):
            calibrate_epsilon(db, queries, 0.0)
        with pytest.raises(ValueError):
            calibrate_epsilon(db, queries, 1.0)
        with pytest.raises(ValueError):
            calibrate_epsilon(db, [], 0.5)
        with pytest.raises(ValueError):
            selectivity_curve(db, [], [0.1])
