"""Unit tests for R-tree serialisation and streaming append / calibration."""

import os

import numpy as np
import pytest

from repro.analysis.calibration import calibrate_epsilon, selectivity_curve
from repro.core.database import SequenceDatabase
from repro.core.distance import sequence_distance
from repro.core.mbr import MBR
from repro.core.search import SimilaritySearch
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree
from repro.index.serialize import load_tree, save_tree
from tests.test_rtree import random_boxes


@pytest.mark.parametrize("cls", [RTree, RStarTree])
class TestTreeSerialization:
    def test_round_trip_structure(self, rng, tmp_path, cls):
        tree = cls(dimension=3, max_entries=5)
        tree.extend(random_boxes(rng, 90, dimension=3))
        path = tmp_path / "tree.npz"
        save_tree(tree, path)
        loaded = load_tree(path)

        assert type(loaded) is cls
        assert len(loaded) == len(tree)
        assert loaded.height == tree.height
        assert loaded.max_entries == tree.max_entries
        assert loaded.min_entries == tree.min_entries
        loaded.check_invariants()
        assert {e.payload for e in loaded.entries()} == {
            e.payload for e in tree.entries()
        }

    def test_round_trip_query_identical(self, rng, tmp_path, cls):
        tree = cls(dimension=2, max_entries=4)
        tree.extend(random_boxes(rng, 70))
        path = tmp_path / "tree.npz"
        save_tree(tree, path)
        loaded = load_tree(path)

        for _ in range(10):
            low = rng.random(2) * 0.7
            probe = MBR(low, low + 0.2)
            epsilon = float(rng.random() * 0.2)
            original = {e.payload for e in tree.search_within(probe, epsilon)}
            reloaded = {
                e.payload for e in loaded.search_within(probe, epsilon)
            }
            assert reloaded == original

    def test_access_counts_identical(self, rng, tmp_path, cls):
        """Identical layout means identical node-access counts."""
        tree = cls(dimension=2, max_entries=4)
        tree.extend(random_boxes(rng, 80))
        path = tmp_path / "tree.npz"
        save_tree(tree, path)
        loaded = load_tree(path)
        probe = MBR([0.3, 0.3], [0.5, 0.5])
        tree.stats.reset_query_counters()
        loaded.stats.reset_query_counters()
        tree.search_within(probe, 0.1)
        loaded.search_within(probe, 0.1)
        assert loaded.stats.node_accesses == tree.stats.node_accesses

    def test_empty_tree(self, tmp_path, cls, rng):
        tree = cls(dimension=2)
        path = tmp_path / "empty.npz"
        save_tree(tree, path)
        loaded = load_tree(path)
        assert len(loaded) == 0
        assert loaded.search_within(MBR([0, 0], [1, 1]), 1.0) == []

    def test_insert_after_load(self, rng, tmp_path, cls):
        tree = cls(dimension=2, max_entries=4)
        tree.extend(random_boxes(rng, 30))
        path = tmp_path / "tree.npz"
        save_tree(tree, path)
        loaded = load_tree(path)
        loaded.insert(MBR([0.9, 0.9], [0.95, 0.95]), "late")
        assert len(loaded) == 31
        loaded.check_invariants()


class TestSerializeValidation:
    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_tree("not a tree", tmp_path / "x.npz")


class TestAppendPoints:
    def test_append_extends_and_index_tracks(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((40, 2)), sequence_id="s")
        db.append_points("s", rng.random((25, 2)))
        assert len(db.sequence("s")) == 65
        assert len(db.index) == db.segment_count
        db.index.check_invariants()
        # The patched index must equal a from-scratch rebuild semantically.
        fresh = SequenceDatabase(dimension=2)
        fresh.add(db.sequence("s").points, sequence_id="s")
        assert [s.start for s in fresh.partition("s")] == [
            s.start for s in db.partition("s")
        ]

    def test_append_matches_full_rebuild_partition(self, rng):
        """Greedy partitioning is prefix-deterministic, so appending must
        give the exact same partition as re-partitioning from scratch."""
        db = SequenceDatabase(dimension=3)
        base = rng.random((60, 3))
        extra = rng.random((30, 3))
        db.add(base, sequence_id=0)
        db.append_points(0, extra)
        from repro.core.partitioning import partition_sequence

        expected = partition_sequence(
            np.vstack([base, extra]),
            cost_constant=db.cost_constant,
            max_points=db.max_points,
        )
        got = db.partition(0)
        assert [s.start for s in got] == [s.start for s in expected]
        assert got.mbrs == expected.mbrs

    def test_append_search_consistency(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((30, 2)), sequence_id="grow")
        tail = rng.random((20, 2))
        db.append_points("grow", tail)
        engine = SimilaritySearch(db)
        result = engine.search(tail[:10], 0.01, find_intervals=False)
        assert "grow" in result.answers

    def test_append_empty_is_noop(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((10, 2)), sequence_id=0)
        before = len(db.sequence(0))
        db.append_points(0, np.empty((0, 2)))
        assert len(db.sequence(0)) == before

    def test_append_validation(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((10, 2)), sequence_id=0)
        with pytest.raises(KeyError):
            db.append_points("missing", rng.random((5, 2)))
        with pytest.raises(ValueError, match="dimension"):
            db.append_points(0, rng.random((5, 3)))

    def test_append_with_str_index(self, rng):
        db = SequenceDatabase(dimension=2, index_kind="str")
        db.add(rng.random((30, 2)), sequence_id=0)
        _ = db.index
        db.append_points(0, rng.random((15, 2)))
        assert len(db.index) == db.segment_count


class TestCalibration:
    def _database(self, rng):
        db = SequenceDatabase(dimension=2)
        for i in range(15):
            walk = np.clip(
                0.5 + np.cumsum(rng.normal(0, 0.02, (40, 2)), axis=0), 0, 1
            )
            db.add(walk, sequence_id=i)
        return db

    def test_selectivity_curve_monotone(self, rng):
        db = self._database(rng)
        queries = [db.sequence(0).points[5:15]]
        curve = selectivity_curve(db, queries, [0.05, 0.2, 0.5, 1.0])
        values = [sel for _, sel in curve]
        assert values == sorted(values)
        assert values[-1] == 1.0  # diagonal-scale threshold catches all

    def test_calibrated_epsilon_hits_target(self, rng):
        db = self._database(rng)
        queries = [db.sequence(i).points[0:12] for i in (1, 4, 9)]
        target = 0.4
        epsilon = calibrate_epsilon(db, queries, target, tolerance=0.05)
        sequences = [db.sequence(sid) for sid in db.ids()]
        achieved = np.mean(
            [
                np.mean(
                    [
                        sequence_distance(q, s) <= epsilon
                        for s in sequences
                    ]
                )
                for q in queries
            ]
        )
        assert abs(achieved - target) <= 0.1

    def test_validation(self, rng):
        db = self._database(rng)
        queries = [db.sequence(0).points[:5]]
        with pytest.raises(ValueError):
            calibrate_epsilon(db, queries, 0.0)
        with pytest.raises(ValueError):
            calibrate_epsilon(db, queries, 1.0)
        with pytest.raises(ValueError):
            calibrate_epsilon(db, [], 0.5)
        with pytest.raises(ValueError):
            selectivity_curve(db, [], [0.1])


class TestRestrictedUnpickling:
    """The payload pickle is resolved through an allowlist-only unpickler:
    archives naming any global outside SAFE_PICKLE_GLOBALS must fail
    before the reference is resolved, never execute it."""

    def _tampered_archive(self, rng, tmp_path, payload_bytes):
        import io

        tree = RTree(dimension=2, max_entries=4)
        tree.extend(random_boxes(rng, 20))
        buffer = io.BytesIO()
        save_tree(tree, buffer)
        buffer.seek(0)
        with np.load(buffer, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["payloads"] = np.frombuffer(payload_bytes, dtype=np.uint8)
        out = tmp_path / "tampered.npz"
        np.savez(out, **arrays)
        return out

    def test_forbidden_global_rejected(self, rng, tmp_path):
        import pickle

        evil = pickle.dumps([os.system for _ in range(1)])
        path = self._tampered_archive(rng, tmp_path, evil)
        with pytest.raises(pickle.UnpicklingError, match="forbidden global"):
            load_tree(path)

    def test_reduce_based_payload_rejected(self, rng, tmp_path):
        import pickle

        class Exploit:
            def __reduce__(self):
                return (os.system, ("true",))

        evil = pickle.dumps([Exploit()])
        path = self._tampered_archive(rng, tmp_path, evil)
        with pytest.raises(pickle.UnpicklingError, match="forbidden global"):
            load_tree(path)

    def test_non_list_payload_rejected(self, rng, tmp_path):
        import pickle

        path = self._tampered_archive(rng, tmp_path, pickle.dumps({"a": 1}))
        with pytest.raises(pickle.UnpicklingError, match="must unpickle to a list"):
            load_tree(path)

    def test_allowlist_names_segment_key_and_primitives(self):
        from repro.index.serialize import SAFE_PICKLE_GLOBALS

        assert ("repro.core.database", "SegmentKey") in SAFE_PICKLE_GLOBALS
        assert ("builtins", "tuple") in SAFE_PICKLE_GLOBALS
        assert not any(module == "os" for module, _ in SAFE_PICKLE_GLOBALS)
        assert not any(module == "posix" for module, _ in SAFE_PICKLE_GLOBALS)

    def test_legitimate_payloads_still_load(self, rng, tmp_path):
        from repro.core.database import SegmentKey

        tree = RTree(dimension=2, max_entries=4)
        for ordinal, (mbr, _) in enumerate(random_boxes(rng, 25)):
            tree.insert(mbr, SegmentKey(f"s{ordinal}", ordinal))
        path = tmp_path / "legit.npz"
        save_tree(tree, path)
        loaded = load_tree(path)
        payloads = {entry.payload for entry in loaded.entries()}
        assert payloads == {entry.payload for entry in tree.entries()}
        assert all(isinstance(p, SegmentKey) for p in payloads)


class TestBytesRoundTrip:
    def test_dumps_loads_tree(self, rng):
        from repro.index.serialize import dumps_tree, loads_tree

        tree = RStarTree(dimension=3, max_entries=5)
        tree.extend(random_boxes(rng, 60, dimension=3))
        blob = dumps_tree(tree)
        assert isinstance(blob, bytes) and blob
        loaded = loads_tree(blob)
        assert type(loaded) is RStarTree
        assert len(loaded) == len(tree)
        assert loaded.height == tree.height
        loaded.check_invariants()

    def test_backend_registry_serialization(self, rng):
        from repro.core.backends import (
            create_index,
            deserialize_index,
            get_backend,
            serialize_index,
        )

        for kind in ("rtree", "rstar"):
            spec = get_backend(kind)
            assert spec.dumps is not None and spec.loads is not None
            index = create_index(kind, 2, max_entries=8)
            for ordinal, (mbr, payload) in enumerate(random_boxes(rng, 15)):
                index.insert(mbr, payload)
            blob = serialize_index(kind, index)
            assert blob is not None
            restored = deserialize_index(kind, blob)
            assert len(restored) == 15


class TestDatabaseIndexEmbedding:
    """save() embeds the flat index tree; load() restores it directly
    instead of re-inserting every segment."""

    def _database(self, rng, count=8, **kwargs):
        db = SequenceDatabase(dimension=2, **kwargs)
        for ordinal in range(count):
            db.add(rng.random((22, 2)), sequence_id=f"s{ordinal}")
        return db

    def test_archive_contains_index_blob(self, rng, tmp_path):
        db = self._database(rng)
        path = tmp_path / "db.npz"
        db.save(path)
        with np.load(path) as archive:
            assert "_index" in archive.files

    def test_include_index_false_falls_back(self, rng, tmp_path):
        db = self._database(rng)
        path = tmp_path / "db.npz"
        db.save(path, include_index=False)
        with np.load(path) as archive:
            assert "_index" not in archive.files
        loaded = SequenceDatabase.load(path)
        query = rng.random((9, 2))
        assert (
            SimilaritySearch(loaded).search(query, 0.3).answers
            == SimilaritySearch(db).search(query, 0.3).answers
        )

    def test_loaded_index_layout_identical(self, rng, tmp_path):
        """The restored tree has the same node layout: identical answers
        AND identical node-access counts."""
        db = self._database(rng)
        path = tmp_path / "db.npz"
        db.save(path)
        loaded = SequenceDatabase.load(path)
        assert len(loaded.index) == db.index.__len__() == db.segment_count

        query = rng.random((9, 2))
        db.index.stats.reset_query_counters()
        loaded.index.stats.reset_query_counters()
        original = SimilaritySearch(db).search(query, 0.25)
        restored = SimilaritySearch(loaded).search(query, 0.25)
        assert restored.answers == original.answers
        assert restored.candidates == original.candidates
        assert restored.solution_intervals == original.solution_intervals
        assert restored.stats.node_accesses == original.stats.node_accesses

    def test_str_backend_roundtrip_with_index(self, rng, tmp_path):
        db = self._database(rng, index_kind="str")
        path = tmp_path / "db_str.npz"
        db.save(path)
        with np.load(path) as archive:
            assert "_index" in archive.files
        loaded = SequenceDatabase.load(path)
        query = rng.random((9, 2))
        assert (
            SimilaritySearch(loaded).search(query, 0.3).answers
            == SimilaritySearch(db).search(query, 0.3).answers
        )

    def test_mismatched_index_rejected(self, rng, tmp_path):
        small = self._database(rng, count=3)
        big = self._database(rng, count=6)
        small_path = tmp_path / "small.npz"
        big_path = tmp_path / "big.npz"
        small.save(small_path)
        big.save(big_path)
        with np.load(small_path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        with np.load(big_path) as archive:
            arrays["_index"] = archive["_index"]
        spliced = tmp_path / "spliced.npz"
        np.savez(spliced, **arrays)
        with pytest.raises(ValueError, match="corrupt archive"):
            SequenceDatabase.load(spliced)
