"""Smoke tests: every shipped example must run end to end.

The examples double as integration tests of the public API (each contains
its own correctness assertions); these tests execute their ``main()``
functions in-process so a broken example fails the suite, not a user.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "video_scene_search",
    "stock_timeseries",
    "image_region_search",
    "long_query_search",
    "raw_video_pipeline",
    "serve_and_query",
]


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load_example(name)
    module.main()  # each example asserts its own correctness claims
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"
