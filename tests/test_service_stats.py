"""Quantile math of the serving metrics block.

The p50/p95/p99 numbers in ``/stats`` (and every ``BENCH_service.json``
stamped from them) come from :class:`LatencyWindow`'s nearest-rank
quantile over a ring buffer — these tests pin its behaviour at the
edges (empty, capacity one, wrap-around) and cross-check it against the
standard library on a seeded stream.
"""

import math
import random
import statistics

import pytest

from repro.service.stats import LatencyWindow, ServiceStats


class TestLatencyWindowEdges:
    def test_empty_window_quantiles_are_zero(self):
        window = LatencyWindow(8)
        assert len(window) == 0
        assert window.quantile(0.5) == 0.0
        assert window.quantile(0.99) == 0.0

    def test_capacity_one_always_reports_latest(self):
        window = LatencyWindow(1)
        window.record(5.0)
        assert window.quantile(0.5) == 5.0
        window.record(9.0)  # overwrites the only slot
        assert len(window) == 1
        assert window.quantile(0.01) == 9.0
        assert window.quantile(1.0) == 9.0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            LatencyWindow(0)

    def test_quantile_bounds_enforced(self):
        window = LatencyWindow(4)
        with pytest.raises(ValueError):
            window.quantile(-0.1)
        with pytest.raises(ValueError):
            window.quantile(1.1)

    def test_wraparound_keeps_only_the_recent_window(self):
        window = LatencyWindow(4)
        for value in (100.0, 200.0, 300.0, 400.0):
            window.record(value)
        # Two more overwrite the two oldest: window is {300,400,1,2}.
        window.record(1.0)
        window.record(2.0)
        assert len(window) == 4
        assert window.quantile(1.0) == 400.0
        assert window.quantile(0.25) == 1.0
        # The overwritten 100/200 must be gone.
        assert window.quantile(0.5) == 2.0

    def test_full_wraparound_replaces_everything(self):
        window = LatencyWindow(3)
        for value in (7.0, 8.0, 9.0):
            window.record(value)
        for value in (1.0, 2.0, 3.0):
            window.record(value)
        assert window.quantile(1.0) == 3.0
        assert window.quantile(0.01) == 1.0


class TestLatencyWindowNonFinite:
    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_observations_rejected(self, bad):
        window = LatencyWindow(4)
        window.record(1.0)
        with pytest.raises(ValueError, match="finite"):
            window.record(bad)
        # The rejection must not have consumed a slot.
        assert len(window) == 1
        assert window.quantile(0.99) == 1.0

    def test_rejection_cannot_poison_quantiles(self):
        window = LatencyWindow(8)
        for value in (1.0, 2.0, 3.0):
            window.record(value)
        with pytest.raises(ValueError):
            window.record(float("nan"))
        assert math.isfinite(window.quantile(0.5))
        assert window.quantile(0.5) == 2.0


class TestQuantileCrossCheck:
    def test_matches_statistics_quantiles_on_seeded_stream(self):
        """Nearest-rank must agree with the stdlib's inclusive method at
        the cut points it defines exactly (n divisible by the bucket
        count, q on a bucket boundary)."""
        rng = random.Random(20260808)
        values = [rng.uniform(0.001, 2.0) for _ in range(1000)]
        window = LatencyWindow(1000)
        for value in values:
            window.record(value)
        cuts = statistics.quantiles(values, n=100, method="inclusive")
        ordered = sorted(values)
        for q in (0.50, 0.90, 0.95, 0.99):
            nearest = window.quantile(q)
            stdlib = cuts[round(q * 100) - 1]
            # Nearest-rank picks an order statistic adjacent to the
            # stdlib's interpolated cut; they can differ by at most one
            # sample spacing at that rank.
            rank = max(0, math.ceil(q * len(ordered)) - 1)
            neighbourhood = ordered[max(0, rank - 1) : rank + 2]
            assert nearest == ordered[rank]
            assert min(neighbourhood) <= stdlib <= max(neighbourhood) or (
                abs(stdlib - nearest) <= 1e-9
            )

    def test_quantiles_are_monotone_in_q(self):
        rng = random.Random(7)
        window = LatencyWindow(256)
        for _ in range(256):
            window.record(rng.expovariate(10.0))
        quantiles = [window.quantile(q / 100) for q in range(1, 101)]
        assert quantiles == sorted(quantiles)


class TestServiceStatsQuantiles:
    def test_snapshot_reports_window_quantiles_in_ms(self):
        stats = ServiceStats(latency_window=64)
        for i in range(1, 101):  # seconds: 0.001 .. 0.1, window keeps 64
            stats.record_completed("search", i / 1000.0)
        block = stats.snapshot()["latency_ms"]
        assert block["window"] == 64
        # Window holds 37..100 ms; nearest-rank p50 is the 32nd of 64.
        assert block["p50"] == pytest.approx(68.0)
        assert block["p99"] == pytest.approx(100.0)

    def test_non_finite_latency_rejected_by_stats(self):
        stats = ServiceStats()
        with pytest.raises(ValueError, match="finite"):
            stats.record_completed("search", float("nan"))
