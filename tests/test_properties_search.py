"""Property-based end-to-end tests of the full search pipeline.

The paper's headline guarantee — no false dismissals for sequence
selection — must hold for *any* corpus, any query and any threshold, so it
is tested here with hypothesis-generated inputs through the complete
pipeline (partitioning, indexing, Phase 2, Phase 3), not just at the
distance level.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.sequential import exact_range_search, exact_solution_interval
from repro.core.database import SequenceDatabase
from repro.core.search import SimilaritySearch
from repro.core.sequence import MultidimensionalSequence


def corpora(min_sequences=2, max_sequences=6, dims=(1, 3)):
    """Strategy: a small corpus plus a query of the same dimension."""

    def build(dimension):
        sequence = arrays(
            np.float64,
            st.tuples(st.integers(3, 25), st.just(dimension)),
            elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
        )
        return st.tuples(
            st.lists(sequence, min_size=min_sequences, max_size=max_sequences),
            sequence,
            st.floats(0.0, 0.8),
        )

    return st.integers(dims[0], dims[1]).flatmap(build)


class TestEndToEndGuarantees:
    @given(corpora())
    @settings(max_examples=50, deadline=None)
    def test_no_false_dismissals_anywhere(self, case):
        sequences, query, epsilon = case
        database = SequenceDatabase(dimension=sequences[0].shape[1], max_points=4)
        corpus = {}
        for ordinal, points in enumerate(sequences):
            corpus[ordinal] = MultidimensionalSequence(points)
            database.add(corpus[ordinal], sequence_id=ordinal)
        engine = SimilaritySearch(database)

        result = engine.search(query, epsilon, find_intervals=False)
        relevant = exact_range_search(query, corpus, epsilon)

        assert relevant <= set(result.candidates), "Phase 2 false dismissal"
        assert relevant <= set(result.answers), "Phase 3 false dismissal"
        assert set(result.answers) <= set(result.candidates)

    @given(corpora(dims=(2, 2)))
    @settings(max_examples=30, deadline=None)
    def test_solution_intervals_well_formed(self, case):
        sequences, query, epsilon = case
        database = SequenceDatabase(dimension=2, max_points=4)
        for ordinal, points in enumerate(sequences):
            database.add(points, sequence_id=ordinal)
        engine = SimilaritySearch(database)

        result = engine.search(query, epsilon, find_intervals=True)
        assert set(result.solution_intervals) == set(result.answers)
        for sequence_id, interval in result.solution_intervals.items():
            length = len(database.sequence(sequence_id))
            for start, stop in interval.intervals:
                assert 0 <= start < stop <= length

    @given(corpora(dims=(2, 2)))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_epsilon(self, case):
        """A larger threshold can only grow the answer set."""
        sequences, query, epsilon = case
        database = SequenceDatabase(dimension=2, max_points=4)
        for ordinal, points in enumerate(sequences):
            database.add(points, sequence_id=ordinal)
        engine = SimilaritySearch(database)

        tight = engine.search(query, epsilon, find_intervals=False)
        loose = engine.search(query, epsilon + 0.2, find_intervals=False)
        assert set(tight.answers) <= set(loose.answers)
        assert set(tight.candidates) <= set(loose.candidates)

    @given(corpora(dims=(1, 2), max_sequences=4))
    @settings(max_examples=30, deadline=None)
    def test_knn_first_hit_is_true_minimum(self, case):
        from repro.core.distance import sequence_distance

        sequences, query, _ = case
        database = SequenceDatabase(dimension=sequences[0].shape[1], max_points=4)
        corpus = {}
        for ordinal, points in enumerate(sequences):
            corpus[ordinal] = MultidimensionalSequence(points)
            database.add(corpus[ordinal], sequence_id=ordinal)
        engine = SimilaritySearch(database)
        best_distance, _ = engine.knn(query, 1)[0]
        true_minimum = min(
            sequence_distance(query, seq) for seq in corpus.values()
        )
        assert abs(best_distance - true_minimum) <= 1e-9


class TestSolutionIntervalQuality:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(12, 40), st.just(2)),
            elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
        ),
        st.floats(0.05, 0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_interval_never_escapes_approximation_by_much(
        self, points, epsilon
    ):
        """For a query cut from the sequence itself, the exact interval of
        the source must be almost fully covered (the paper's recall claim,
        asserted at >= 50% per instance to allow adversarial partitions;
        corpus-level recall is asserted at 0.95+ in the benchmarks)."""
        sequence = MultidimensionalSequence(points)
        query = MultidimensionalSequence(points[3:9])
        database = SequenceDatabase(dimension=2, max_points=4)
        database.add(sequence, sequence_id=0)
        engine = SimilaritySearch(database)

        result = engine.search(query, epsilon, find_intervals=True)
        assert 0 in result.answers  # exact subsequence: distance 0
        exact = exact_solution_interval(query, sequence, epsilon)
        approx = result.solution_intervals[0]
        assert len(exact) > 0
        covered = approx.intersection_size(exact)
        assert covered / len(exact) >= 0.5
