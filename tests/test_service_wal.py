"""Tests for the write-ahead log and crash recovery (repro.service.wal).

The durability contract: an acknowledged write survives any crash, a torn
or corrupt log tail is truncated (never fatal), and replay is idempotent —
the exact invariant a crash between checkpoint save and WAL reset relies
on.  Recovery is also exercised with the no-false-dismissal contracts
enabled, so a recovered engine is held to the same correctness bar as a
never-crashed one.
"""

import os
import struct
import zlib

import numpy as np
import pytest

from repro.core.contracts import checking_contracts
from repro.core.database import SequenceDatabase
from repro.core.search import SimilaritySearch
from repro.service import (
    DurabilityConfig,
    QueryEngine,
    WalRecord,
    WriteAheadLog,
    replay_into,
)

_MAGIC = b"REPROWAL1\n"
_HEADER = struct.Struct("<II")


def build_database(rng, count=6, dimension=2):
    database = SequenceDatabase(dimension=dimension)
    for ordinal in range(count):
        length = int(rng.integers(20, 50))
        database.add(rng.random((length, dimension)), sequence_id=f"s{ordinal}")
    return database


def read_raw(path):
    return path.read_bytes()


class TestWalRecord:
    def test_round_trip_all_ops(self):
        records = [
            WalRecord("insert", "a", points=[[0.1, 0.2], [0.3, 0.4]]),
            WalRecord("append", 7, points=[[0.5, 0.6]], length=12),
            WalRecord("remove", "gone"),
        ]
        for record in records:
            rebuilt = WalRecord.from_payload(record.to_payload())
            assert rebuilt == record

    def test_int_id_preserves_type(self):
        rebuilt = WalRecord.from_payload(WalRecord("remove", 42).to_payload())
        assert rebuilt.sequence_id == 42
        assert isinstance(rebuilt.sequence_id, int)

    def test_rejects_unloggable_ids_and_ops(self):
        with pytest.raises(TypeError, match="sequence ids"):
            WalRecord("insert", ("tuple", "id"), points=[[0.0]])
        with pytest.raises(TypeError, match="sequence ids"):
            WalRecord("remove", True)
        with pytest.raises(ValueError, match="op"):
            WalRecord("upsert", "a")


class TestWriteAheadLog:
    def test_empty_log_recovers_to_nothing(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        assert wal.recovered_records == []
        assert len(wal) == 0
        wal.close()
        # Re-open the now-existing (but record-free) file.
        wal = WriteAheadLog(path)
        assert wal.recovered_records == []
        wal.close()

    def test_append_then_recover(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(WalRecord("insert", "a", points=[[0.1, 0.2]]))
        wal.append(WalRecord("remove", "a"))
        assert len(wal) == 2
        wal.close()
        recovered = WriteAheadLog(path)
        ops = [record.op for record in recovered.recovered_records]
        assert ops == ["insert", "remove"]
        recovered.close()

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(WalRecord("insert", "a", points=[[0.1, 0.2]]))
        wal.close()
        intact = read_raw(path)
        # Simulate a crash mid-append: a header promising more bytes than
        # the file holds.
        payload = WalRecord("insert", "b", points=[[0.3, 0.4]]).to_payload()
        torn = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload[:5]
        path.write_bytes(intact + torn)
        recovered = WriteAheadLog(path)
        assert [r.sequence_id for r in recovered.recovered_records] == ["a"]
        recovered.close()
        # The tear was physically removed, so the next open is clean.
        assert read_raw(path) == intact

    def test_checksum_mismatch_truncates_from_bad_record(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(WalRecord("insert", "a", points=[[0.1, 0.2]]))
        offset_after_first = path.stat().st_size
        wal.append(WalRecord("insert", "b", points=[[0.3, 0.4]]))
        wal.append(WalRecord("insert", "c", points=[[0.5, 0.6]]))
        wal.close()
        # Flip one payload byte of the second record: it and everything
        # after it must be discarded (no resynchronisation guessing).
        data = bytearray(read_raw(path))
        data[offset_after_first + _HEADER.size] ^= 0xFF
        path.write_bytes(bytes(data))
        recovered = WriteAheadLog(path)
        assert [r.sequence_id for r in recovered.recovered_records] == ["a"]
        recovered.close()
        assert path.stat().st_size == offset_after_first

    def test_bad_magic_is_fatal(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWAL!!\n")
        with pytest.raises(ValueError, match="magic"):
            WriteAheadLog(path)

    def test_reset_empties_the_log(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append(WalRecord("remove", "a"))
        wal.reset()
        assert len(wal) == 0
        wal.append(WalRecord("remove", "b"))
        wal.close()
        recovered = WriteAheadLog(path)
        assert [r.sequence_id for r in recovered.recovered_records] == ["b"]
        recovered.close()

    def test_closed_log_refuses_writes(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        assert wal.closed
        with pytest.raises(RuntimeError, match="closed"):
            wal.append(WalRecord("remove", "a"))
        with pytest.raises(RuntimeError, match="closed"):
            wal.reset()


class TestReplay:
    def test_replay_is_idempotent(self, rng):
        database = build_database(rng, count=3)
        records = [
            WalRecord(
                "insert", "new", points=rng.random((10, 2)).tolist()
            ),
            WalRecord("remove", "s0"),
            WalRecord(
                "append",
                "s1",
                points=[[0.5, 0.5]],
                length=len(database.sequence("s1")) + 1,
            ),
        ]
        applied_first = replay_into(database, records)
        ids_after_first = database.ids()
        lengths_first = {
            sid: len(database.sequence(sid)) for sid in ids_after_first
        }
        applied_second = replay_into(database, records)
        assert applied_first == 3
        assert applied_second == 0
        assert database.ids() == ids_after_first
        assert {
            sid: len(database.sequence(sid)) for sid in database.ids()
        } == lengths_first

    def test_replay_over_partial_prefix(self, rng):
        """The mid-checkpoint-crash state: snapshot already holds a prefix."""
        base = build_database(rng, count=2)
        ahead = base.clone()
        records = [
            WalRecord("insert", "x", points=rng.random((8, 2)).tolist()),
            WalRecord("remove", "s0"),
        ]
        replay_into(ahead, records[:1])  # snapshot saved after record 1
        replay_into(ahead, records)  # full replay over the partial state
        expected = base.clone()
        replay_into(expected, records)
        assert ahead.ids() == expected.ids()

    def test_replay_rejects_malformed_records(self, rng):
        database = build_database(rng, count=2)
        with pytest.raises(ValueError, match="no points"):
            replay_into(database, [WalRecord("insert", "zzz")])
        with pytest.raises(ValueError, match="unknown id"):
            replay_into(
                database,
                [WalRecord("append", "zzz", points=[[0.1, 0.2]], length=1)],
            )


class TestEngineRecovery:
    def test_engine_recovers_acknowledged_writes(self, rng, tmp_path):
        database = build_database(rng)
        config = DurabilityConfig(tmp_path / "data")
        new_points = rng.random((15, 2))
        with QueryEngine(database, workers=2, durability=config) as engine:
            engine.insert(new_points, sequence_id="durable")
            engine.remove("s0")
            # Simulate a crash: drop the engine without checkpointing by
            # bypassing close() — re-open from disk only.
            engine.durability = DurabilityConfig(
                config.directory, checkpoint_on_close=False
            )
        with QueryEngine(None, workers=2, durability=config) as recovered:
            ids = recovered.sequence_ids()
            assert "durable" in ids
            assert "s0" not in ids
            got = recovered._snapshot.database.sequence("durable").points
            np.testing.assert_allclose(got, new_points)

    def test_recovered_search_matches_never_crashed_engine(self, rng, tmp_path):
        seed = build_database(rng)
        config = DurabilityConfig(
            tmp_path / "data", checkpoint_on_close=False
        )
        extra = rng.random((25, 2))
        query = rng.random((10, 2))
        with QueryEngine(seed.clone(), workers=2, durability=config) as engine:
            engine.insert(extra, sequence_id="added")
            engine.remove("s1")
        # Ground truth: the same mutations applied without any crash.
        pristine = seed.clone()
        pristine.add(extra, sequence_id="added")
        pristine.remove("s1")
        reference = SimilaritySearch(pristine)
        with checking_contracts():
            with QueryEngine(None, durability=config) as recovered:
                for epsilon in (0.5, 0.25):
                    got = recovered.search(query, epsilon)
                    expected = reference.search(query, epsilon)
                    assert got.answers == expected.answers
                    assert (
                        got.solution_intervals == expected.solution_intervals
                    )

    def test_double_recovery_is_deterministic(self, rng, tmp_path):
        config = DurabilityConfig(
            tmp_path / "data", checkpoint_on_close=False
        )
        with QueryEngine(
            build_database(rng), workers=1, durability=config
        ) as engine:
            engine.insert(rng.random((10, 2)), sequence_id="w1")
            engine.insert(rng.random((10, 2)), sequence_id="w2")
        versions = []
        for _ in range(2):
            with QueryEngine(None, workers=1, durability=config) as engine:
                versions.append(engine.snapshot_version)
                assert set(engine.sequence_ids()) >= {"w1", "w2"}
        assert versions[0] == versions[1]

    def test_checkpoint_rotates_the_log(self, rng, tmp_path):
        config = DurabilityConfig(tmp_path / "data")
        with QueryEngine(
            build_database(rng), workers=1, durability=config
        ) as engine:
            engine.insert(rng.random((10, 2)), sequence_id="w1")
            assert engine.wal_records == 1
            version = engine.checkpoint()
            assert version == engine.snapshot_version
            assert engine.wal_records == 0
            block = engine.stats()["durability"]
            assert block["enabled"] is True
            assert block["checkpoints"] == 1
            assert block["last_checkpoint_version"] == version
        # Clean close checkpoints again; restart replays an empty log.
        with QueryEngine(None, workers=1, durability=config) as engine:
            assert engine.wal_records == 0
            assert "w1" in engine.sequence_ids()

    def test_auto_checkpoint_every_n_records(self, rng, tmp_path):
        config = DurabilityConfig(tmp_path / "data", checkpoint_every=2)
        with QueryEngine(
            build_database(rng), workers=1, durability=config
        ) as engine:
            engine.insert(rng.random((10, 2)), sequence_id="w1")
            assert engine.stats()["durability"]["checkpoints"] == 0
            engine.insert(rng.random((10, 2)), sequence_id="w2")
            block = engine.stats()["durability"]
            assert block["checkpoints"] == 1
            assert block["wal_records"] == 0

    def test_fsync_disabled_still_recovers_cleanly(self, rng, tmp_path):
        config = DurabilityConfig(
            tmp_path / "data", fsync=False, checkpoint_on_close=False
        )
        with QueryEngine(
            build_database(rng), workers=1, durability=config
        ) as engine:
            engine.insert(rng.random((10, 2)), sequence_id="w1")
        with QueryEngine(None, workers=1, durability=config) as engine:
            assert "w1" in engine.sequence_ids()

    def test_database_none_without_snapshot_is_an_error(self, tmp_path):
        config = DurabilityConfig(tmp_path / "empty")
        with pytest.raises(TypeError, match="no snapshot"):
            QueryEngine(None, durability=config)

    def test_database_none_without_durability_is_an_error(self):
        with pytest.raises(TypeError, match="durability"):
            QueryEngine(None)

    def test_unloggable_write_fails_before_publishing(self, rng, tmp_path):
        """A write the WAL cannot represent is rejected, not half-applied."""
        config = DurabilityConfig(tmp_path / "data")
        with QueryEngine(
            build_database(rng), workers=1, durability=config
        ) as engine:
            before = engine.snapshot_version
            with pytest.raises(TypeError, match="sequence ids"):
                engine.insert(rng.random((10, 2)), sequence_id=("t", 1))
            assert engine.snapshot_version == before
            assert ("t", 1) not in engine.sequence_ids()


class TestCrashSafeSave:
    def test_save_is_atomic_via_replace(self, rng, tmp_path):
        database = build_database(rng, count=3)
        target = tmp_path / "corpus.npz"
        database.save(target)
        loaded = SequenceDatabase.load(target)
        assert loaded.ids() == database.ids()
        # No temp litter left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["corpus.npz"]

    def test_save_overwrite_keeps_old_archive_on_crash(self, rng, tmp_path):
        from repro.service.faults import FaultInjected, FaultRule, fault_plan

        database = build_database(rng, count=3)
        target = tmp_path / "corpus.npz"
        database.save(target)
        bigger = build_database(rng, count=5)
        with fault_plan(FaultRule("database.save.replace", "raise")):
            with pytest.raises(FaultInjected):
                bigger.save(target)
        # The old archive is intact and loadable; the temp file is gone.
        survivor = SequenceDatabase.load(target)
        assert survivor.ids() == database.ids()
        assert [p.name for p in tmp_path.iterdir()] == ["corpus.npz"]

    def test_save_appends_npz_suffix_like_savez(self, rng, tmp_path):
        database = build_database(rng, count=2)
        database.save(tmp_path / "corpus")
        assert (tmp_path / "corpus.npz").exists()
        loaded = SequenceDatabase.load(tmp_path / "corpus.npz")
        assert loaded.ids() == database.ids()


class TestWalFilePermanence:
    def test_magic_header_present(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        assert read_raw(tmp_path / "wal.log").startswith(_MAGIC)

    def test_records_survive_process_style_reopen(self, rng, tmp_path):
        """Write with one handle, read with a brand-new one (no shared state)."""
        path = tmp_path / "wal.log"
        points = rng.random((5, 2)).tolist()
        wal = WriteAheadLog(path)
        wal.append(WalRecord("insert", "a", points=points))
        # Crash-style: no close(), only the OS-level file contents matter
        # (fsync already ran).
        os.stat(path)
        recovered = WriteAheadLog(path)
        [record] = recovered.recovered_records
        assert record.points == points
        recovered.close()
        wal.close()
