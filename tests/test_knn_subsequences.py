"""Unit tests for the k-best-subsequence search extension."""

import numpy as np
import pytest

from repro.core.database import SequenceDatabase
from repro.core.distance import sliding_mean_distances
from repro.core.search import SimilaritySearch, SubsequenceHit
from repro.core.sequence import MultidimensionalSequence
from tests.test_search import smooth_walk


def brute_force_best_local_minima(corpus, query, k):
    """Reference: local-minimum alignments across the corpus, sorted."""
    hits = []
    length = len(query)
    for sequence_id, sequence in corpus.items():
        if len(sequence) < length:
            continue
        distances = sliding_mean_distances(query, sequence)
        n = distances.shape[0]
        for offset in range(n):
            left_ok = offset == 0 or distances[offset] <= distances[offset - 1]
            right_ok = (
                offset == n - 1 and n > 1 and distances[offset] < distances[offset - 1]
            ) or (offset < n - 1 and distances[offset] <= distances[offset + 1])
            if n == 1:
                left_ok = right_ok = True
            if offset == 0:
                keep = n == 1 or distances[0] <= distances[1]
            elif offset == n - 1:
                keep = distances[-1] < distances[-2]
            else:
                keep = left_ok and distances[offset] <= distances[offset + 1]
            if keep:
                hits.append((float(distances[offset]), sequence_id, offset))
    hits.sort()
    return hits[:k]


@pytest.fixture
def corpus_db(rng):
    db = SequenceDatabase(dimension=3, max_points=16)
    corpus = {}
    for i in range(15):
        seq = MultidimensionalSequence(
            smooth_walk(rng, int(rng.integers(30, 90))), sequence_id=i
        )
        corpus[i] = seq
        db.add(seq)
    return db, corpus


class TestKnnSubsequences:
    def test_planted_best_match_found_first(self, corpus_db, rng):
        db, corpus = corpus_db
        engine = SimilaritySearch(db)
        source = corpus[6]
        query = source.points[10:25]
        hits = engine.knn_subsequences(query, 3)
        assert hits[0].sequence_id == 6
        assert hits[0].offset == 10
        assert hits[0].distance == pytest.approx(0.0)
        assert hits[0].length == 15

    def test_matches_brute_force_ranking(self, corpus_db, rng):
        db, corpus = corpus_db
        engine = SimilaritySearch(db)
        query = smooth_walk(rng, 12)
        for k in (1, 4, 8):
            hits = engine.knn_subsequences(query, k)
            expected = brute_force_best_local_minima(corpus, query, k)
            got = [(h.distance, h.sequence_id, h.offset) for h in hits]
            np.testing.assert_allclose(
                [g[0] for g in got], [e[0] for e in expected], atol=1e-12
            )

    def test_distances_ascending(self, corpus_db, rng):
        db, _ = corpus_db
        engine = SimilaritySearch(db)
        hits = engine.knn_subsequences(smooth_walk(rng, 10), 6)
        distances = [hit.distance for hit in hits]
        assert distances == sorted(distances)

    def test_include_overlapping_returns_every_alignment(self, corpus_db, rng):
        db, corpus = corpus_db
        engine = SimilaritySearch(db)
        query = corpus[2].points[5:15]
        dense = engine.knn_subsequences(
            query, 10, exclude_overlapping=False
        )
        sparse = engine.knn_subsequences(query, 10)
        # Without dedup, neighbours of the best alignment flood the top-k.
        offsets = [h.offset for h in dense if h.sequence_id == 2]
        assert any(abs(a - b) == 1 for a in offsets for b in offsets if a != b)
        assert len(sparse) <= len(dense)

    def test_shorter_sequences_skipped(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((5, 2)), sequence_id="short")
        db.add(rng.random((40, 2)), sequence_id="long")
        engine = SimilaritySearch(db)
        hits = engine.knn_subsequences(rng.random((10, 2)), 5)
        assert all(hit.sequence_id == "long" for hit in hits)

    def test_k_larger_than_alignments(self, rng):
        db = SequenceDatabase(dimension=2)
        db.add(rng.random((12, 2)), sequence_id=0)
        engine = SimilaritySearch(db)
        hits = engine.knn_subsequences(rng.random((10, 2)), 50)
        assert 1 <= len(hits) <= 3  # only 3 alignments exist, deduped

    def test_validation(self, corpus_db, rng):
        db, _ = corpus_db
        engine = SimilaritySearch(db)
        with pytest.raises(ValueError):
            engine.knn_subsequences(smooth_walk(rng, 5), 0)
        with pytest.raises(ValueError, match="dimension"):
            engine.knn_subsequences(rng.random((5, 2)), 1)

    def test_hit_type(self, corpus_db, rng):
        db, _ = corpus_db
        engine = SimilaritySearch(db)
        hits = engine.knn_subsequences(smooth_walk(rng, 8), 2)
        assert all(isinstance(hit, SubsequenceHit) for hit in hits)
