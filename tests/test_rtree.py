"""Unit tests for the Guttman R-tree."""

import numpy as np
import pytest

from repro.core.mbr import MBR
from repro.index.rtree import RTree
from tests.conftest import brute_force_within


def random_boxes(rng, count, dimension=2, max_side=0.1):
    """Random small boxes in the unit cube with integer payloads."""
    items = []
    for i in range(count):
        low = rng.random(dimension) * (1 - max_side)
        side = rng.random(dimension) * max_side
        items.append((MBR(low, low + side), i))
    return items


class TestConstruction:
    def test_empty_tree(self):
        tree = RTree(dimension=2)
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.search_within(MBR([0, 0], [1, 1]), 10.0) == []
        assert tree.nearest(MBR([0, 0], [1, 1]), 3) == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RTree(dimension=0)
        with pytest.raises(ValueError):
            RTree(dimension=2, max_entries=1)
        with pytest.raises(ValueError):
            RTree(dimension=2, max_entries=8, min_entries=5)
        with pytest.raises(ValueError):
            RTree(dimension=2, max_entries=8, min_entries=0)

    def test_insert_dimension_checked(self):
        tree = RTree(dimension=2)
        with pytest.raises(ValueError, match="dimension"):
            tree.insert(MBR([0.1], [0.2]), "x")

    def test_query_dimension_checked(self):
        tree = RTree(dimension=2)
        with pytest.raises(ValueError, match="dimension"):
            tree.search_within(MBR([0.1], [0.2]), 0.1)
        with pytest.raises(TypeError):
            tree.search_within("box", 0.1)

    def test_negative_epsilon_rejected(self):
        tree = RTree(dimension=1)
        with pytest.raises(ValueError):
            tree.search_within(MBR([0.1], [0.2]), -0.5)


class TestInsertAndGrow:
    def test_size_tracks_inserts(self, rng):
        tree = RTree(dimension=2, max_entries=4)
        for mbr, payload in random_boxes(rng, 25):
            tree.insert(mbr, payload)
        assert len(tree) == 25
        assert tree.height > 1
        tree.check_invariants()

    def test_extend(self, rng):
        tree = RTree(dimension=2, max_entries=4)
        tree.extend(random_boxes(rng, 10))
        assert len(tree) == 10

    def test_invariants_across_scales(self, rng):
        for count in (1, 5, 17, 64, 200):
            tree = RTree(dimension=3, max_entries=6)
            tree.extend(random_boxes(rng, count, dimension=3))
            tree.check_invariants()
            assert len(tree) == count

    def test_all_entries_preserved(self, rng):
        items = random_boxes(rng, 120)
        tree = RTree(dimension=2, max_entries=5)
        tree.extend(items)
        assert {entry.payload for entry in tree.entries()} == set(range(120))

    def test_duplicate_rectangles_allowed(self):
        tree = RTree(dimension=1, max_entries=4)
        box = MBR([0.4], [0.5])
        for i in range(10):
            tree.insert(box, i)
        found = {e.payload for e in tree.search_within(box, 0.0)}
        assert found == set(range(10))


class TestQueries:
    def test_within_matches_brute_force(self, rng):
        items = random_boxes(rng, 150)
        tree = RTree(dimension=2, max_entries=8)
        tree.extend(items)
        for _ in range(25):
            low = rng.random(2) * 0.8
            query = MBR(low, low + rng.random(2) * 0.2)
            epsilon = float(rng.random() * 0.3)
            expected = brute_force_within(items, query, epsilon)
            got = {e.payload for e in tree.search_within(query, epsilon)}
            assert got == expected

    def test_intersect_matches_brute_force(self, rng):
        items = random_boxes(rng, 100)
        tree = RTree(dimension=2, max_entries=8)
        tree.extend(items)
        for _ in range(20):
            low = rng.random(2) * 0.7
            query = MBR(low, low + rng.random(2) * 0.3)
            expected = {p for m, p in items if m.intersects(query)}
            got = {e.payload for e in tree.search_intersect(query)}
            assert got == expected

    def test_point_radius(self, rng):
        items = random_boxes(rng, 60)
        tree = RTree(dimension=2, max_entries=8)
        tree.extend(items)
        point = np.array([0.5, 0.5])
        expected = {
            p for m, p in items if m.min_distance_to_point(point) <= 0.2
        }
        got = {e.payload for e in tree.search_point_radius(point, 0.2)}
        assert got == expected

    def test_zero_epsilon_means_touching(self):
        tree = RTree(dimension=1, max_entries=4)
        tree.insert(MBR([0.0], [0.3]), "a")
        tree.insert(MBR([0.5], [0.8]), "b")
        got = {e.payload for e in tree.search_within(MBR([0.3], [0.4]), 0.0)}
        assert got == {"a"}

    def test_node_access_accounting(self, rng):
        tree = RTree(dimension=2, max_entries=4)
        tree.extend(random_boxes(rng, 80))
        tree.stats.reset_query_counters()
        tree.search_within(MBR([0.1, 0.1], [0.15, 0.15]), 0.01)
        selective = tree.stats.node_accesses
        tree.stats.reset_query_counters()
        tree.search_within(MBR([0.0, 0.0], [1.0, 1.0]), 1.0)
        full = tree.stats.node_accesses
        assert 0 < selective <= full

    def test_pruning_actually_happens(self, rng):
        """A tiny query must not touch every node of a big tree."""
        tree = RTree(dimension=2, max_entries=4)
        tree.extend(random_boxes(rng, 400, max_side=0.02))
        total_nodes = 0
        stack = [tree.root]
        while stack:
            node = stack.pop()
            total_nodes += 1
            if not node.is_leaf:
                stack.extend(node.children)
        tree.stats.reset_query_counters()
        tree.search_within(MBR([0.5, 0.5], [0.51, 0.51]), 0.01)
        assert tree.stats.node_accesses < total_nodes


class TestNearest:
    def test_nearest_matches_brute_force(self, rng):
        items = random_boxes(rng, 90)
        tree = RTree(dimension=2, max_entries=8)
        tree.extend(items)
        query = MBR([0.42, 0.42], [0.44, 0.44])
        for k in (1, 3, 10):
            got = tree.nearest(query, k)
            assert len(got) == k
            distances = [d for d, _ in got]
            assert distances == sorted(distances)
            brute = sorted(m.min_distance(query) for m, _ in items)
            np.testing.assert_allclose(distances, brute[:k], atol=1e-12)

    def test_nearest_k_larger_than_size(self, rng):
        tree = RTree(dimension=2, max_entries=4)
        tree.extend(random_boxes(rng, 3))
        assert len(tree.nearest(MBR([0, 0], [1, 1]), 10)) == 3

    def test_nearest_validates_k(self):
        tree = RTree(dimension=1)
        with pytest.raises(ValueError):
            tree.nearest(MBR([0], [1]), 0)


class TestSplitInternals:
    def test_split_counted(self, rng):
        tree = RTree(dimension=2, max_entries=4)
        tree.extend(random_boxes(rng, 50))
        assert tree.stats.splits > 0

    def test_min_fill_after_splits(self, rng):
        tree = RTree(dimension=2, max_entries=4, min_entries=2)
        tree.extend(random_boxes(rng, 300))
        tree.check_invariants()  # includes the min-fill assertion
