"""Unit tests for R-tree deletion (Guttman Delete / CondenseTree)."""

import numpy as np
import pytest

from repro.core.mbr import MBR
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree
from tests.test_rtree import random_boxes


@pytest.mark.parametrize("cls", [RTree, RStarTree])
class TestDelete:
    def test_delete_existing(self, rng, cls):
        items = random_boxes(rng, 40)
        tree = cls(dimension=2, max_entries=4)
        tree.extend(items)
        mbr, payload = items[7]
        assert tree.delete(mbr, payload)
        assert len(tree) == 39
        remaining = {e.payload for e in tree.entries()}
        assert payload not in remaining
        tree.check_invariants()

    def test_delete_missing_returns_false(self, rng, cls):
        tree = cls(dimension=2, max_entries=4)
        tree.extend(random_boxes(rng, 10))
        assert not tree.delete(MBR([0.99, 0.99], [1.0, 1.0]), "ghost")
        assert len(tree) == 10

    def test_delete_requires_matching_payload(self, rng, cls):
        tree = cls(dimension=2, max_entries=4)
        box = MBR([0.2, 0.2], [0.3, 0.3])
        tree.insert(box, "a")
        assert not tree.delete(box, "b")
        assert tree.delete(box, "a")
        assert len(tree) == 0

    def test_delete_everything(self, rng, cls):
        items = random_boxes(rng, 60)
        tree = cls(dimension=2, max_entries=4)
        tree.extend(items)
        order = rng.permutation(60)
        for i in order:
            mbr, payload = items[int(i)]
            assert tree.delete(mbr, payload)
        assert len(tree) == 0
        assert tree.root.mbr is None
        assert tree.search_within(MBR([0, 0], [1, 1]), 10.0) == []

    def test_queries_stay_exact_through_churn(self, rng, cls):
        """Interleave inserts and deletes; queries must track brute force."""
        tree = cls(dimension=2, max_entries=4)
        live = {}
        counter = 0
        for round_number in range(12):
            for mbr, _ in random_boxes(rng, 8):
                live[counter] = mbr
                tree.insert(mbr, counter)
                counter += 1
            victims = rng.choice(list(live), size=min(5, len(live)), replace=False)
            for victim in victims:
                assert tree.delete(live.pop(int(victim)), int(victim))
            tree.check_invariants()
            low = rng.random(2) * 0.7
            query = MBR(low, low + 0.25)
            expected = {
                p for p, m in live.items() if m.min_distance(query) <= 0.1
            }
            got = {e.payload for e in tree.search_within(query, 0.1)}
            assert got == expected
        assert len(tree) == len(live)

    def test_dimension_checked(self, rng, cls):
        tree = cls(dimension=2)
        with pytest.raises(ValueError, match="dimension"):
            tree.delete(MBR([0.1], [0.2]), "x")

    def test_root_shrinks_after_mass_delete(self, rng, cls):
        items = random_boxes(rng, 120)
        tree = cls(dimension=2, max_entries=4)
        tree.extend(items)
        tall = tree.height
        for mbr, payload in items[:110]:
            assert tree.delete(mbr, payload)
        assert tree.height <= tall
        tree.check_invariants()
        assert {e.payload for e in tree.entries()} == {
            p for _, p in items[110:]
        }

    def test_duplicate_rectangles_delete_one_at_a_time(self, cls, rng):
        tree = cls(dimension=1, max_entries=4)
        box = MBR([0.4], [0.5])
        for i in range(6):
            tree.insert(box, i)
        assert tree.delete(box, 3)
        remaining = {e.payload for e in tree.entries()}
        assert remaining == {0, 1, 2, 4, 5}
