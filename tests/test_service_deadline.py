"""The request budget end to end: client debit, propagation, cancellation.

ISSUE 9's acceptance tests for the deadline layer:

* a deadline handed to the coordinator arrives at every
  :class:`LocalBackend` *shrunk* by the time already spent (queue wait,
  injected network stalls) — never the caller's original budget;
* the dispatch floor refuses sub-calls whose remaining budget could only
  answer after the caller stopped caring, with a typed error and counter;
* the client's token-bucket retry budget surfaces
  :class:`RetryBudgetExhausted` with ``transport_stats`` counters;
* backoff sleeps debit the budget, so a retry schedule can never outlive
  the request;
* the 504 mapping round-trips (and the legacy 408 still parses);
* cooperative cancellation checkpoints fire inside the Phase 2/3 loops,
  under contracts and through the engine's worker pool alike.
"""

import time
import urllib.request

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator, LocalBackend
from repro.core.contracts import checking_contracts
from repro.core.database import SequenceDatabase
from repro.core.search import SimilaritySearch
from repro.service import QueryEngine
from repro.service.client import (
    RetryBudget,
    RetryPolicy,
    ServiceClient,
    _raise_typed,
)
from repro.service.errors import (
    DeadlineExceeded,
    Overloaded,
    RetryBudgetExhausted,
)
from repro.service.faults import FaultRule, fault_plan
from repro.service.http import error_status, request_budget
from repro.util.budget import Deadline, OperationCancelled, deadline_scope

DIMENSION = 3


def make_database(count=4, seed=0, length=24):
    rng = np.random.default_rng(seed)
    database = SequenceDatabase(dimension=DIMENSION)
    for i in range(count):
        database.add(rng.random((length, DIMENSION)), sequence_id=f"seq-{i}")
    return database


class RecordingBackend:
    """A backend wrapper that records the ``timeout`` each search carries."""

    def __init__(self, inner):
        self.inner = inner
        self.search_timeouts = []

    def search(self, points, epsilon, *, find_intervals=True, timeout=None):
        self.search_timeouts.append(timeout)
        return self.inner.search(
            points, epsilon, find_intervals=find_intervals, timeout=timeout
        )

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestCoordinatorBudgetPropagation:
    def _cluster(self):
        engines = [
            QueryEngine(SequenceDatabase(DIMENSION), workers=2, cache_size=0)
            for _ in range(2)
        ]
        recorders = [
            RecordingBackend(LocalBackend(engine, name=f"backend-{i}"))
            for i, engine in enumerate(engines)
        ]
        coordinator = ClusterCoordinator(
            list(recorders), replication=2, probe_interval=3600.0
        )
        return engines, recorders, coordinator

    def test_backend_sees_budget_shrunk_by_time_already_spent(self):
        engines, recorders, coordinator = self._cluster()
        rng = np.random.default_rng(5)
        try:
            for i in range(6):
                coordinator.insert(
                    rng.random((20, DIMENSION)), sequence_id=f"seq-{i}"
                )
            stall = FaultRule(
                "cluster.backend.slow", "sleep", seconds=0.05, times=None
            )
            with fault_plan(stall):
                result = coordinator.search(
                    rng.random((8, DIMENSION)), 0.5, timeout=0.8
                )
            assert result.complete
            observed = [
                timeout
                for recorder in recorders
                for timeout in recorder.search_timeouts
            ]
            assert observed  # the fan-out really hit the backends
            for timeout in observed:
                # The ISSUE's invariant: what a backend observes is at
                # most the coordinator's remaining budget at dispatch —
                # the injected 50 ms stall (plus real overhead) has
                # already been debited from the caller's 0.8 s.
                assert timeout is not None
                assert 0.0 < timeout <= 0.8 - 0.04
        finally:
            coordinator.close()
            for engine in engines:
                engine.close()

    def test_dispatch_floor_refuses_futile_subcalls(self):
        engines, recorders, coordinator = self._cluster()
        rng = np.random.default_rng(6)
        try:
            for i in range(4):
                coordinator.insert(
                    rng.random((20, DIMENSION)), sequence_id=f"seq-{i}"
                )
            # Each attempt stalls past the whole 50 ms budget, so the
            # failover relaunch finds less than min_subcall_budget left
            # and must refuse to dispatch rather than hedge into the
            # void.
            stall = FaultRule(
                "cluster.backend.slow", "sleep", seconds=0.08, times=None
            )
            with fault_plan(stall):
                with pytest.raises(DeadlineExceeded, match="dispatch floor"):
                    coordinator.search(
                        rng.random((8, DIMENSION)), 0.5, timeout=0.05
                    )
            assert coordinator.stats().get("budget_floor_skips", 0) >= 1
        finally:
            coordinator.close()
            for engine in engines:
                engine.close()


class TestClientRetryBudget:
    def test_bucket_spends_and_refills(self):
        budget = RetryBudget(capacity=2.0, fill_per_request=1.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()  # empty: denied
        budget.deposit()
        assert budget.try_spend()
        stats = budget.stats()
        assert stats["spent"] == 3
        assert stats["denied"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(capacity=0.5)
        with pytest.raises(ValueError):
            RetryBudget(fill_per_request=-0.1)

    def test_exhaustion_is_typed_and_counted(self):
        client = ServiceClient(
            "http://127.0.0.1:9",  # never dialled: transport is stubbed
            retry=RetryPolicy(max_attempts=4, base_delay=0.0, jitter=False),
            retry_budget=RetryBudget(capacity=1.0, fill_per_request=0.0),
        )
        calls = []

        def always_reset(method, path, body, deadline=None):
            calls.append(path)
            raise ConnectionResetError("peer reset")

        client._request_once = always_reset
        with pytest.raises(RetryBudgetExhausted) as caught:
            client.healthz()
        # One free first attempt plus the single budgeted retry; the
        # second retry is denied before it touches the wire.
        assert len(calls) == 2
        assert isinstance(caught.value.__cause__, ConnectionResetError)
        assert caught.value.tokens < 1.0
        assert caught.value.capacity == 1.0
        stats = client.transport_stats()
        assert stats["retry_budget_exhausted"] == 1
        assert stats["retry_budget"]["spent"] == 1
        assert stats["retry_budget"]["denied"] == 1


class TestClientDeadlineDebit:
    def test_backoff_sleep_debits_the_budget(self):
        client = ServiceClient(
            "http://127.0.0.1:9",
            retry=RetryPolicy(max_attempts=5, base_delay=1.0, jitter=False),
        )
        calls = []

        def always_busy(method, path, body, deadline=None):
            calls.append(body)
            raise Overloaded(
                "busy", queue_depth=1, capacity=1, retry_after=1.0
            )

        client._request_once = always_busy
        with pytest.raises(DeadlineExceeded) as caught:
            client.search(np.zeros((4, DIMENSION)), 0.5, timeout=0.05)
        # The server asked for a 1 s backoff but only ~50 ms of budget
        # remained: the sleep is clamped to it and the next dispatch is
        # refused locally instead of granting the attempt a fresh budget.
        assert len(calls) == 1
        assert isinstance(caught.value.__cause__, Overloaded)
        assert caught.value.timeout == 0.05
        stats = client.transport_stats()
        assert stats["deadline_exhausted"] == 1
        assert stats["retries"] == 1
        assert stats["retry_wait_s"] <= 0.06

    def test_wire_carries_shrunk_budget(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:9", timeout=30.0)
        captured = {}

        class _Reply:
            def read(self):
                return b"{}"

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

        def fake_urlopen(request, timeout):
            captured["headers"] = {
                key.lower(): value for key, value in request.headers.items()
            }
            captured["body"] = request.data
            captured["socket_timeout"] = timeout
            return _Reply()

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        deadline = Deadline.after(0.5)
        time.sleep(0.02)
        client._request_once(
            "POST",
            "/search",
            {"points": [], "epsilon": 0.1, "timeout": 0.5},
            deadline,
        )
        import json

        body = json.loads(captured["body"])
        # The body's timeout was rewritten to the *remaining* budget and
        # mirrored into the header for proxies/logs; the socket timeout
        # is clamped near it (plus slack so the typed 504 wins the race).
        assert 0.0 < body["timeout"] <= 0.48
        header = captured["headers"].get("x-repro-budget")
        assert header is not None
        assert 0.0 < float(header) <= 0.48
        assert captured["socket_timeout"] <= body["timeout"] + 0.3


class TestStatusMapping:
    def test_504_and_legacy_408_both_parse_as_deadline(self):
        for status in (504, 408):
            with pytest.raises(DeadlineExceeded) as caught:
                _raise_typed(status, {"message": "late", "timeout": 0.25})
            assert caught.value.timeout == 0.25

    def test_deadline_maps_to_504_on_the_wire(self):
        assert error_status(DeadlineExceeded("late", timeout=0.1), "search") == 504

    def test_request_budget_takes_the_tighter_bound(self):
        assert request_budget({}, {}) is None
        assert request_budget({}, None) is None
        assert request_budget({}, {"timeout": 0.5}) == 0.5
        assert request_budget({"X-Repro-Budget": "0.3"}, {}) == 0.3
        assert request_budget({"X-Repro-Budget": "0.2"}, {"timeout": 0.5}) == 0.2
        assert request_budget({"X-Repro-Budget": "0.9"}, {"timeout": 0.5}) == 0.5


class TestCooperativeCancellation:
    def test_core_search_checkpoint_fires_under_contracts(self):
        database = make_database(count=4, seed=0)
        searcher = SimilaritySearch(database)
        query = np.random.default_rng(2).random((12, DIMENSION))
        abandoned = Deadline.after(60.0)
        abandoned.cancel()
        with checking_contracts():
            with deadline_scope(abandoned):
                with pytest.raises(OperationCancelled) as caught:
                    searcher.search(query, 0.5)
            assert caught.value.cancelled
            # The same search completes once no deadline governs it.
            searcher.search(query, 0.5)

    def test_engine_counts_cancelled_scans(self):
        database = make_database(count=3, seed=1)
        engine = QueryEngine(database, workers=1, cache_size=0)
        query = np.random.default_rng(3).random((8, DIMENSION))
        stall = FaultRule("engine.worker", "sleep", seconds=0.15, times=None)
        try:
            with fault_plan(stall):
                # The worker stalls past the 50 ms budget before the scan
                # starts; the caller times out (cancelling the deadline)
                # and the worker's first checkpoint stops the scan.
                with pytest.raises(DeadlineExceeded):
                    engine.search(query, 0.5, timeout=0.05)
            waited_until = time.monotonic() + 2.0
            while time.monotonic() < waited_until:
                if engine.stats()["cancelled"] >= 1:
                    break
                time.sleep(0.01)
            stats = engine.stats()
            assert stats["deadline_exceeded"] >= 1
            assert stats["cancelled"] >= 1
        finally:
            engine.close()
