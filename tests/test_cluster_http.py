"""The coordinator's HTTP endpoint, driven by an unmodified ServiceClient.

The cluster server speaks the same wire dialect as ``repro serve``, so
the standard :class:`ServiceClient` — written for a single backend —
must work against a whole cluster without modification, including the
typed-exception round trip for the new failure classes
(:class:`ShardUnavailable` over a dead shard).
"""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator, LocalBackend, serve_cluster
from repro.core.database import SequenceDatabase
from repro.service import QueryEngine, ServiceClient
from repro.service.errors import ShardUnavailable
from tests.test_cluster_coordinator import (
    DIMENSION,
    KillableBackend,
    make_corpus,
    make_single,
    single_node_knn,
    single_node_search,
)


def build_cluster(corpus, *, replication=2):
    from repro.cluster import ShardRouter

    router = ShardRouter(num_backends=3, replication=replication)
    databases = [SequenceDatabase(DIMENSION) for _ in range(3)]
    for sequence_id, points in corpus:
        for backend in router.placement(sequence_id).replicas:
            databases[backend].add(points, sequence_id=sequence_id)
    engines = [
        QueryEngine(database, workers=1, cache_size=0)
        for database in databases
    ]
    backends = [
        KillableBackend(LocalBackend(engine)) for engine in engines
    ]
    coordinator = ClusterCoordinator(
        backends, replication=replication, hedge=None
    )
    coordinator.seed_order([sequence_id for sequence_id, _ in corpus])
    return engines, backends, coordinator


@pytest.fixture
def cluster_served():
    corpus = make_corpus(16)
    engines, backends, coordinator = build_cluster(corpus)
    server = serve_cluster(coordinator, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(
        f"http://127.0.0.1:{server.server_address[1]}", timeout=10.0
    )
    single = make_single(corpus)
    yield corpus, backends, coordinator, client, single
    server.shutdown()
    server.server_close()
    coordinator.close()
    single.close()
    for engine in engines:
        engine.close()


class TestClusterOverHttp:
    def test_search_matches_single_node_and_reports_complete(
        self, cluster_served
    ):
        _, _, _, client, single = cluster_served
        query = np.random.default_rng(3).random((15, DIMENSION))
        expected = single_node_search(single, query, 0.5)
        reply = client.search(query, 0.5)
        assert reply["complete"] is True
        assert reply["missing_shards"] == []
        assert reply["answers"] == expected["answers"]
        assert reply["candidates"] == expected["candidates"]
        assert reply["intervals"] == expected["intervals"]

    def test_knn_matches_single_node(self, cluster_served):
        _, _, _, client, single = cluster_served
        query = np.random.default_rng(5).random((12, DIMENSION))
        assert client.knn(query, 4) == single_node_knn(single, query, 4)

    def test_insert_append_remove_through_the_coordinator(
        self, cluster_served
    ):
        _, _, coordinator, client, _ = cluster_served
        rng = np.random.default_rng(8)
        sequence_id = client.insert(rng.random((14, DIMENSION)), "via-http")
        assert sequence_id == "via-http"
        client.append("via-http", rng.random((6, DIMENSION)))
        result = coordinator.search(
            rng.random((5, DIMENSION)), 2.5, find_intervals=False
        )
        assert "via-http" in result.answers
        client.remove("via-http")
        result = coordinator.search(
            rng.random((5, DIMENSION)), 2.5, find_intervals=False
        )
        assert "via-http" not in result.answers

    def test_healthz_and_stats_describe_the_cluster(self, cluster_served):
        _, _, _, client, _ = cluster_served
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["backends"] == 3
        assert health["replication"] == 2
        stats = client.stats()
        assert stats["router"]["shards"] == 3
        assert len(stats["backends"]) == 3

    def test_degraded_search_is_complete_false_over_the_wire(
        self, cluster_served
    ):
        _, backends, _, client, _ = cluster_served
        for backend in backends[:2]:
            backend.dead = True
        # Replication 2 over 3 backends: some shard has both replicas on
        # the two dead backends only if its replica pair is {0,1}.
        query = np.random.default_rng(2).random((10, DIMENSION))
        reply = client.search(query, 0.5)
        assert reply["complete"] is False
        assert reply["missing_shards"] == [
            s
            for s in range(3)
            if set((s, (s + 1) % 3)) <= {0, 1}
        ]

    def test_dead_shard_knn_is_typed_shard_unavailable(self, cluster_served):
        _, backends, _, client, _ = cluster_served
        for backend in backends[:2]:
            backend.dead = True
        query = np.random.default_rng(2).random((10, DIMENSION))
        with pytest.raises(ShardUnavailable) as excinfo:
            client.knn(query, 3)
        assert excinfo.value.missing_shards != ()

    def test_probe_endpoint_reports_reachability(self, cluster_served):
        _, backends, _, client, _ = cluster_served
        backends[1].dead = True
        request = urllib.request.Request(
            client.base_url + "/probe", data=b"{}", method="POST"
        )
        with urllib.request.urlopen(request, timeout=10.0) as reply:
            body = json.loads(reply.read())
        assert body["probed"] == 3
        assert body["unreachable"] == [1]
        assert sorted(body["reachable"] + body["unreachable"]) == [0, 1, 2]
