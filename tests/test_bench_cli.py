"""The ``repro bench`` / ``repro bench-diff`` commands, end to end.

The quick profile really runs here (a few seconds): the acceptance
criteria for the bench subsystem are that ``repro bench --quick`` leaves
one valid ``BENCH_<suite>.json`` per suite and that ``--assert-slo``
exits non-zero when a floor is deliberately broken.
"""

import json

import pytest

from repro.bench import load_trajectory, validate_trajectory
from repro.cli import main


@pytest.fixture(scope="module")
def quick_run(tmp_path_factory):
    """One full --quick run shared by the inspection tests (module-scoped
    because it is the expensive part)."""
    out = tmp_path_factory.mktemp("bench-out")
    code = main(["bench", "--quick", "--out", str(out), "--seed", "7"])
    return code, out


class TestBenchCommand:
    def test_quick_run_succeeds(self, quick_run):
        code, _ = quick_run
        assert code == 0

    def test_writes_one_file_per_suite(self, quick_run):
        _, out = quick_run
        names = sorted(p.name for p in out.glob("BENCH_*.json"))
        assert names == [
            "BENCH_cluster.json",
            "BENCH_engine.json",
            "BENCH_service.json",
        ]

    def test_every_file_validates(self, quick_run):
        _, out = quick_run
        for path in out.glob("BENCH_*.json"):
            payload = load_trajectory(path)
            validate_trajectory(payload)
            assert payload["profile"] == "quick"
            assert payload["seed"] == 7

    def test_service_file_has_expected_scenarios(self, quick_run):
        _, out = quick_run
        payload = load_trajectory(out / "BENCH_service.json")
        assert set(payload["scenarios"]) == {
            "end_to_end",
            "cache_hit_ratio",
            "wal_recovery",
            "overload_goodput",
        }

    def test_suite_filter_writes_only_that_suite(self, tmp_path):
        code = main(
            [
                "bench",
                "--quick",
                "--suite",
                "engine",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        names = [p.name for p in tmp_path.glob("BENCH_*.json")]
        assert names == ["BENCH_engine.json"]

    def test_broken_floor_fails_the_gate(self, tmp_path, capsys):
        """The acceptance criterion: a deliberately unreachable floor
        makes --assert-slo exit non-zero with the typed violation."""
        code = main(
            [
                "bench",
                "--quick",
                "--suite",
                "engine",
                "--assert-slo",
                "--slo",
                "engine/single_query:qps>=1e12",
                "--out",
                str(tmp_path),
            ]
        )
        assert code != 0
        captured = capsys.readouterr()
        assert "SloViolation" in captured.err
        assert "engine/single_query:qps" in captured.err

    def test_broken_floor_without_assert_still_writes(self, tmp_path):
        code = main(
            [
                "bench",
                "--quick",
                "--suite",
                "engine",
                "--slo",
                "engine/single_query:qps>=1e12",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0  # reported, not enforced, without --assert-slo
        assert (tmp_path / "BENCH_engine.json").exists()

    def test_invalid_slo_expression_is_a_usage_error(self, tmp_path):
        code = main(
            [
                "bench",
                "--quick",
                "--slo",
                "not-an-slo",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 2

    def test_list_prints_registry_without_running(self, tmp_path, capsys):
        code = main(["bench", "--list", "--out", str(tmp_path)])
        assert code == 0
        captured = capsys.readouterr()
        for name in (
            "engine/single_query",
            "service/end_to_end",
            "service/cache_hit_ratio",
            "service/wal_recovery",
            "cluster/scatter_gather",
        ):
            assert name in captured.out
        assert list(tmp_path.glob("BENCH_*.json")) == []


class TestBenchDiffCommand:
    def test_identical_points_exit_zero(self, quick_run, capsys):
        _, out = quick_run
        path = str(out / "BENCH_engine.json")
        assert main(["bench-diff", path, path]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_one(self, quick_run, tmp_path, capsys):
        _, out = quick_run
        baseline = load_trajectory(out / "BENCH_engine.json")
        worse = json.loads(json.dumps(baseline))
        metrics = worse["scenarios"]["single_query"]["metrics"]
        metrics["qps"] = metrics["qps"] / 10.0
        worse_path = tmp_path / "BENCH_engine.json"
        worse_path.write_text(json.dumps(worse))
        code = main(
            ["bench-diff", str(out / "BENCH_engine.json"), str(worse_path)]
        )
        assert code == 1
        assert "regression" in capsys.readouterr().err

    def test_missing_file_is_a_usage_error(self, tmp_path):
        ghost = str(tmp_path / "nope.json")
        assert main(["bench-diff", ghost, ghost]) == 2
