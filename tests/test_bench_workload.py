"""The bench load generator: determinism, skew, mixes, both loop modes."""

import numpy as np
import pytest

from repro.bench import (
    OperationMix,
    WorkloadSpec,
    generate_operations,
    nearest_rank_quantile,
    run_closed_loop,
    run_open_loop,
    zipf_weights,
)
from repro.service.errors import ServiceError


class RecordingTarget:
    """A WorkloadTarget that records every call instead of searching."""

    def __init__(self, fail_every: int = 0) -> None:
        self.calls: list[tuple] = []
        self.fail_every = fail_every

    def search(self, query, epsilon):
        self.calls.append(("search", float(epsilon)))
        if self.fail_every and len(self.calls) % self.fail_every == 0:
            # A typed serving failure: the drivers *measure* these.
            raise ServiceError("injected search failure")
        return None

    def insert(self, points, sequence_id=None):
        self.calls.append(("insert", sequence_id))
        return sequence_id

    def append(self, sequence_id, points):
        self.calls.append(("append", sequence_id))
        return sequence_id


def make_spec(operations=60, **overrides) -> WorkloadSpec:
    defaults = dict(
        operations=operations,
        query_pool=8,
        dimension=3,
        mix=OperationMix(search=0.7, insert=0.2, append=0.1),
        epsilons=(0.05, 0.15),
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


def make_queries(spec: WorkloadSpec):
    rng = np.random.default_rng(0)
    return [
        rng.random((10, spec.dimension)) for _ in range(spec.query_pool)
    ]


class TestGenerateOperations:
    def test_same_seed_identical_streams(self):
        """The acceptance criterion: seeding is fully deterministic."""
        spec = make_spec(operations=200)
        ids = ("a", "b", "c")
        first = generate_operations(spec, seed=77, existing_ids=ids)
        second = generate_operations(spec, seed=77, existing_ids=ids)
        assert first == second

    def test_different_seeds_differ(self):
        spec = make_spec(operations=200)
        ids = ("a", "b")
        first = generate_operations(spec, seed=1, existing_ids=ids)
        second = generate_operations(spec, seed=2, existing_ids=ids)
        assert first != second

    def test_mix_proportions_roughly_honoured(self):
        spec = make_spec(
            operations=2000,
            mix=OperationMix(search=0.5, insert=0.3, append=0.2),
        )
        operations = generate_operations(
            spec, seed=5, existing_ids=("s0", "s1")
        )
        kinds = [operation.kind for operation in operations]
        assert abs(kinds.count("search") / 2000 - 0.5) < 0.05
        assert abs(kinds.count("insert") / 2000 - 0.3) < 0.05
        assert abs(kinds.count("append") / 2000 - 0.2) < 0.05

    def test_search_epsilons_round_robin(self):
        spec = make_spec(
            operations=40,
            mix=OperationMix(search=1.0),
            epsilons=(0.05, 0.10, 0.20),
        )
        operations = generate_operations(spec, seed=3)
        seen = [operation.epsilon for operation in operations]
        assert seen[:3] == [0.05, 0.10, 0.20]
        assert seen[3:6] == [0.05, 0.10, 0.20]

    def test_appends_require_existing_ids(self):
        spec = make_spec(mix=OperationMix(search=0.5, append=0.5))
        with pytest.raises(ValueError, match="existing_ids"):
            generate_operations(spec, seed=1, existing_ids=())

    def test_appends_target_only_existing_ids(self):
        spec = make_spec(
            operations=300, mix=OperationMix(search=0.2, append=0.8)
        )
        ids = ("x", "y", "z")
        operations = generate_operations(spec, seed=9, existing_ids=ids)
        targets = {
            operation.sequence_id
            for operation in operations
            if operation.kind == "append"
        }
        assert targets  # the 0.8 weight produced appends
        assert targets <= set(ids)

    def test_zipf_skews_query_selection(self):
        spec = make_spec(
            operations=3000,
            query_pool=16,
            mix=OperationMix(search=1.0),
            zipf_s=1.5,
        )
        operations = generate_operations(spec, seed=4)
        counts = np.bincount(
            [operation.query_index for operation in operations], minlength=16
        )
        # Rank 0 must dominate the tail under s=1.5 skew.
        assert counts[0] > 3 * counts[8]


class TestZipfWeights:
    def test_normalised_and_decreasing(self):
        weights = zipf_weights(10, 1.1)
        assert weights.shape == (10,)
        assert np.isclose(weights.sum(), 1.0)
        assert np.all(np.diff(weights) < 0)

    def test_s_zero_is_uniform(self):
        weights = zipf_weights(4, 0.0)
        assert np.allclose(weights, 0.25)

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)


class TestNearestRankQuantile:
    def test_empty_is_zero(self):
        assert nearest_rank_quantile([], 0.5) == 0.0

    def test_single_value(self):
        assert nearest_rank_quantile([7.0], 0.5) == 7.0
        assert nearest_rank_quantile([7.0], 0.99) == 7.0

    def test_matches_sorted_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert nearest_rank_quantile(values, 0.5) == 3.0
        assert nearest_rank_quantile(values, 1.0) == 5.0


class TestClosedLoop:
    def test_executes_every_operation(self):
        spec = make_spec(operations=50)
        target = RecordingTarget()
        operations = generate_operations(
            spec, seed=11, existing_ids=("base-0",)
        )
        report = run_closed_loop(
            target,
            operations,
            queries=make_queries(spec),
            dimension=spec.dimension,
            concurrency=4,
            seed=11,
        )
        assert report.total == 50
        assert report.completed == 50
        assert report.errors == 0
        assert len(target.calls) == 50
        metrics = report.metrics()
        assert metrics["qps"] > 0
        assert metrics["error_ratio"] == 0.0
        assert metrics["p50_ms"] <= metrics["p99_ms"]

    def test_errors_counted_not_raised(self):
        spec = make_spec(operations=30, mix=OperationMix(search=1.0))
        target = RecordingTarget(fail_every=3)
        operations = generate_operations(spec, seed=2)
        # concurrency=1 keeps the fail-every-3rd pattern deterministic.
        report = run_closed_loop(
            target,
            operations,
            queries=make_queries(spec),
            dimension=spec.dimension,
            concurrency=1,
            seed=2,
        )
        assert report.total == 30
        assert report.errors == 10
        assert report.completed == 20
        assert report.metrics()["error_ratio"] == pytest.approx(1 / 3)

    def test_harness_bug_propagates_not_counted(self):
        """Regression: only *typed* failures are measured as errors.

        The workers used to count every exception into ``errors`` —
        a genuine TypeError from a harness bug (wrong payload shape,
        broken target adapter) silently skewed the error rate instead
        of failing the run.  Unexpected errors must now surface after
        the workers join.
        """

        class BuggyTarget(RecordingTarget):
            def search(self, query, epsilon):
                raise TypeError("harness bug: bad payload shape")

        spec = make_spec(operations=10, mix=OperationMix(search=1.0))
        operations = generate_operations(spec, seed=3)
        with pytest.raises(TypeError, match="harness bug"):
            run_closed_loop(
                BuggyTarget(),
                operations,
                queries=make_queries(spec),
                dimension=spec.dimension,
                concurrency=2,
                seed=3,
            )


class TestOpenLoop:
    def test_executes_every_operation_at_rate(self):
        spec = make_spec(operations=40, mix=OperationMix(search=1.0))
        target = RecordingTarget()
        operations = generate_operations(spec, seed=6)
        report = run_open_loop(
            target,
            operations,
            queries=make_queries(spec),
            dimension=spec.dimension,
            rate=2000.0,
            workers=4,
            seed=6,
        )
        assert report.total == 40
        assert report.completed == 40
        assert report.errors == 0
        assert len(report.latencies_ms) == 40


class TestSpecValidation:
    def test_rejects_nonpositive_operations(self):
        with pytest.raises(ValueError):
            make_spec(operations=0)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            make_spec(epsilons=(-0.1,))
        with pytest.raises(ValueError):
            make_spec(epsilons=())

    def test_rejects_all_zero_mix(self):
        with pytest.raises(ValueError):
            OperationMix(search=0.0, insert=0.0, append=0.0)

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            OperationMix(search=1.0, insert=-0.1)
