"""Trajectory files: round-trip, schema validation, regression diffing."""

import json

import pytest

from repro.bench import (
    BenchResult,
    diff_trajectories,
    load_trajectory,
    metric_direction,
    trajectory_filename,
    validate_trajectory,
    write_trajectory,
)


def make_results(qps=100.0, p99=20.0):
    return [
        BenchResult(
            suite="service",
            scenario="end_to_end",
            metrics={"qps": qps, "p99_ms": p99},
            meta={"operations": 120},
        ),
        BenchResult(
            suite="service",
            scenario="cache_hit_ratio",
            metrics={"hit_ratio": 0.5},
        ),
    ]


def write_point(tmp_path, qps=100.0, p99=20.0):
    return write_trajectory(
        tmp_path,
        "service",
        make_results(qps=qps, p99=p99),
        machine="test-host",
        git_sha="deadbeef",
        timestamp="2026-08-08T00:00:00+00:00",
        profile="quick",
        seed=2000,
    )


class TestWriteAndLoad:
    def test_round_trip(self, tmp_path):
        path = write_point(tmp_path)
        assert path.name == trajectory_filename("service")
        payload = load_trajectory(path)
        validate_trajectory(payload)
        assert payload["suite"] == "service"
        assert payload["machine"] == "test-host"
        assert payload["git_sha"] == "deadbeef"
        assert payload["seed"] == 2000
        assert payload["scenarios"]["end_to_end"]["metrics"]["qps"] == 100.0

    def test_rejects_result_from_other_suite(self, tmp_path):
        stray = BenchResult(
            suite="engine", scenario="x", metrics={"qps": 1.0}
        )
        with pytest.raises(ValueError, match="does not belong"):
            write_trajectory(
                tmp_path,
                "service",
                [stray],
                machine="m",
                git_sha="s",
                timestamp="t",
                profile="quick",
                seed=0,
            )

    def test_rejects_duplicate_scenario(self, tmp_path):
        twice = [
            BenchResult(suite="service", scenario="a", metrics={"qps": 1.0}),
            BenchResult(suite="service", scenario="a", metrics={"qps": 2.0}),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            write_trajectory(
                tmp_path,
                "service",
                twice,
                machine="m",
                git_sha="s",
                timestamp="t",
                profile="quick",
                seed=0,
            )

    def test_rejects_empty_results(self, tmp_path):
        with pytest.raises(ValueError, match="no results"):
            write_trajectory(
                tmp_path,
                "service",
                [],
                machine="m",
                git_sha="s",
                timestamp="t",
                profile="quick",
                seed=0,
            )


class TestValidation:
    def test_missing_key_rejected(self, tmp_path):
        payload = load_trajectory(write_point(tmp_path))
        del payload["git_sha"]
        with pytest.raises(ValueError, match="git_sha"):
            validate_trajectory(payload)

    def test_wrong_schema_version_rejected(self, tmp_path):
        payload = load_trajectory(write_point(tmp_path))
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            validate_trajectory(payload)

    def test_non_finite_metric_rejected(self, tmp_path):
        path = write_point(tmp_path)
        payload = json.loads(path.read_text())
        payload["scenarios"]["end_to_end"]["metrics"]["qps"] = "NaN"
        with pytest.raises(ValueError):
            validate_trajectory(payload)

    def test_empty_scenarios_rejected(self, tmp_path):
        payload = load_trajectory(write_point(tmp_path))
        payload["scenarios"] = {}
        with pytest.raises(ValueError, match="scenarios"):
            validate_trajectory(payload)

    def test_bool_seed_rejected(self, tmp_path):
        payload = load_trajectory(write_point(tmp_path))
        payload["seed"] = True
        with pytest.raises(ValueError, match="seed"):
            validate_trajectory(payload)


class TestMetricDirection:
    def test_latency_suffix_is_lower_better(self):
        assert metric_direction("p99_ms") == "lower"
        assert metric_direction("recovery_ms") == "lower"

    def test_throughput_is_higher_better(self):
        assert metric_direction("qps") == "higher"
        assert metric_direction("hit_ratio") == "higher"

    def test_counters_of_bad_events_are_lower_better(self):
        assert metric_direction("failovers") == "lower"
        assert metric_direction("misses") == "lower"


class TestDiff:
    def test_identical_points_no_regressions(self, tmp_path):
        baseline = load_trajectory(write_point(tmp_path / "a"))
        current = load_trajectory(write_point(tmp_path / "b"))
        assert diff_trajectories(baseline, current) == []

    def test_qps_drop_is_a_regression(self, tmp_path):
        baseline = load_trajectory(write_point(tmp_path / "a", qps=100.0))
        current = load_trajectory(write_point(tmp_path / "b", qps=50.0))
        regressions = diff_trajectories(baseline, current, tolerance=0.25)
        assert any(
            r.metric == "qps" and r.direction == "higher"
            for r in regressions
        )

    def test_latency_rise_is_a_regression(self, tmp_path):
        baseline = load_trajectory(write_point(tmp_path / "a", p99=20.0))
        current = load_trajectory(write_point(tmp_path / "b", p99=40.0))
        regressions = diff_trajectories(baseline, current, tolerance=0.25)
        assert any(
            r.metric == "p99_ms" and r.direction == "lower"
            for r in regressions
        )

    def test_qps_rise_is_not_a_regression(self, tmp_path):
        baseline = load_trajectory(write_point(tmp_path / "a", qps=100.0))
        current = load_trajectory(write_point(tmp_path / "b", qps=200.0))
        assert diff_trajectories(baseline, current) == []

    def test_within_tolerance_is_quiet(self, tmp_path):
        baseline = load_trajectory(write_point(tmp_path / "a", qps=100.0))
        current = load_trajectory(write_point(tmp_path / "b", qps=90.0))
        assert diff_trajectories(baseline, current, tolerance=0.25) == []

    def test_cross_suite_diff_rejected(self, tmp_path):
        baseline = load_trajectory(write_point(tmp_path))
        other = dict(baseline)
        other["suite"] = "engine"
        with pytest.raises(ValueError, match="different suites"):
            diff_trajectories(baseline, other)

    def test_describe_mentions_the_metric(self, tmp_path):
        baseline = load_trajectory(write_point(tmp_path / "a", qps=100.0))
        current = load_trajectory(write_point(tmp_path / "b", qps=50.0))
        (regression,) = [
            r
            for r in diff_trajectories(baseline, current)
            if r.metric == "qps"
        ]
        text = regression.describe()
        assert "qps" in text
        assert "end_to_end" in text
