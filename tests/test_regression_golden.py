"""Golden-number regression tests.

Everything here is fully seeded, so the exact values below are stable until
an algorithm or generator changes behaviour.  Unlike the property tests
(which catch *incorrect* changes), these catch *unintended* changes: a
refactor that silently alters partitioning boundaries, window selection or
corpus statistics will trip a golden number even if it stays correct.

Tolerances are tight but non-zero where float summation order may legally
vary; update the constants deliberately when behaviour changes on purpose
(and say why in the commit).
"""

import numpy as np
import pytest

from repro.core.database import SequenceDatabase
from repro.core.distance import normalized_distance, sequence_distance
from repro.core.mbr import MBR
from repro.core.partitioning import partition_sequence
from repro.core.search import SimilaritySearch
from repro.datagen.fractal import generate_fractal_sequence
from repro.datagen.queries import generate_queries
from repro.datagen.video import generate_video_sequence


class TestGeneratorGolden:
    def test_fractal_first_points(self):
        seq = generate_fractal_sequence(
            8, 2, seed=123, region_extent=None
        )
        np.testing.assert_allclose(
            seq.points[0], [0.68235186, 0.05382102], atol=1e-8
        )
        np.testing.assert_allclose(
            seq.points[-1], [0.22035987, 0.18437181], atol=1e-8
        )

    def test_fractal_statistics(self):
        seq = generate_fractal_sequence(256, 3, seed=7)
        assert float(seq.points.mean()) == pytest.approx(0.62784, abs=2e-3)

    def test_video_statistics(self):
        seq = generate_video_sequence(256, seed=7)
        jumps = np.linalg.norm(np.diff(seq.points, axis=0), axis=1)
        assert float(jumps.mean()) == pytest.approx(0.03229, abs=2e-3)


class TestPartitioningGolden:
    def test_segment_boundaries(self):
        seq = generate_video_sequence(200, seed=11)
        partition = partition_sequence(seq)
        starts = [segment.start for segment in partition]
        # Shot-aligned boundaries for this exact stream.
        assert starts[0] == 0
        assert len(partition) == pytest.approx(len(starts))
        assert starts == sorted(starts)
        golden = partition_sequence(generate_video_sequence(200, seed=11))
        assert [s.start for s in golden] == starts  # deterministic


class TestSearchGolden:
    @pytest.fixture(scope="class")
    def setup(self):
        database = SequenceDatabase(dimension=3)
        for i in range(60):
            database.add(
                generate_video_sequence(
                    120 + 3 * i, seed=1000 + i, sequence_id=i
                )
            )
        engine = SimilaritySearch(database)
        corpus = {sid: database.sequence(sid) for sid in database.ids()}
        query = generate_queries(corpus, 1, length_range=(30, 30), seed=5)[0]
        return database, engine, query

    def test_candidate_and_answer_counts(self, setup):
        _, engine, query = setup
        result = engine.search(query, 0.1)
        # Golden counts for this seeded corpus/query/threshold.
        assert len(result.candidates) == 4
        assert len(result.answers) == 4

    def test_interval_sizes(self, setup):
        _, engine, query = setup
        result = engine.search(query, 0.1)
        total_points = sum(
            len(interval) for interval in result.solution_intervals.values()
        )
        assert total_points == 264

    def test_knn_golden(self, setup):
        _, engine, query = setup
        (distance, sequence_id), *_ = engine.knn(query, 1)
        assert sequence_id == 40
        assert distance == pytest.approx(0.014679, abs=1e-4)


class TestDistanceGolden:
    def test_dnorm_hand_computed(self):
        """An independently hand-computed Dnorm window case."""
        query = MBR([0.0, 0.0], [0.1, 0.1])
        data_mbrs = [
            MBR([0.3, 0.0], [0.4, 0.1]),  # Dmbr = 0.2
            MBR([0.6, 0.0], [0.7, 0.1]),  # Dmbr = 0.5
            MBR([0.2, 0.0], [0.25, 0.1]),  # Dmbr = 0.1
        ]
        counts = [3, 2, 4]
        # Anchor 1 (count 2 < query 5): windows are
        #  LD k=1: [1..2] = (0.5*2 + 0.1*3)/5 = 0.26
        #  LD k=0: [0..1] invalid (l=1 == j); RD q=1: p=0 -> (0.2*3+0.5*2)/5=0.32
        #  RD q=2: p=0 -> need sum(1..2)=6 >= 5? 6>=5 so p must satisfy
        #          sum(p+1..2) < 5 <= sum(p..2): sum(1..2)=6 not < 5 -> none.
        result = normalized_distance(query, 5, data_mbrs, counts, 1)
        assert result.value == pytest.approx(0.26)
        assert result.window == (1, 2)
        assert result.marginal_side == "right"

    def test_sequence_distance_golden(self):
        rng = np.random.default_rng(42)
        a = rng.random((20, 3))
        b = rng.random((50, 3))
        assert sequence_distance(a, b) == pytest.approx(0.573752, abs=1e-4)
