"""Unit tests for the key-frame baseline (the paper's §1 motivation)."""

import numpy as np
import pytest

from repro.baselines.keyframe import KeyFrameSearch, detect_shots, select_key_frames
from repro.baselines.sequential import exact_range_search
from repro.datagen.video import VideoConfig, generate_video_sequence


class TestShotDetection:
    def test_single_shot(self):
        points = np.full((10, 2), 0.5)
        assert detect_shots(points, 0.1) == [(0, 10)]

    def test_cut_detected(self):
        points = np.vstack([np.full((5, 2), 0.1), np.full((5, 2), 0.9)])
        assert detect_shots(points, 0.1) == [(0, 5), (5, 10)]

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            detect_shots(np.zeros((3, 2)), 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            detect_shots(np.zeros((0, 2)), 0.1)

    def test_shots_tile_stream(self):
        stream = generate_video_sequence(200, seed=1)
        shots = detect_shots(stream.points, 0.1)
        offset = 0
        for start, stop in shots:
            assert start == offset
            offset = stop
        assert offset == 200


class TestKeyFrameSelection:
    def test_one_key_per_shot(self):
        points = np.vstack([np.full((4, 2), 0.2), np.full((6, 2), 0.8)])
        keys = select_key_frames(points, [(0, 4), (4, 10)])
        assert keys.shape == (2, 2)
        np.testing.assert_allclose(keys[0], [0.2, 0.2])
        np.testing.assert_allclose(keys[1], [0.8, 0.8])

    def test_key_is_nearest_to_centroid(self):
        points = np.array([[0.0, 0.0], [0.4, 0.4], [1.0, 1.0]])
        keys = select_key_frames(points, [(0, 3)])
        np.testing.assert_allclose(keys[0], [0.4, 0.4])


class TestKeyFrameSearch:
    def test_add_and_search_self(self):
        engine = KeyFrameSearch()
        stream = generate_video_sequence(150, seed=2)
        engine.add(stream, "clip")
        assert len(engine) == 1
        assert "clip" in engine.search(stream, 0.01)

    def test_duplicate_id_rejected(self):
        engine = KeyFrameSearch()
        stream = generate_video_sequence(60, seed=3)
        engine.add(stream, "x")
        with pytest.raises(KeyError):
            engine.add(stream, "x")

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            KeyFrameSearch().key_frames("nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            KeyFrameSearch(shot_threshold=0.0)
        engine = KeyFrameSearch()
        engine.add(generate_video_sequence(50, seed=4), 0)
        with pytest.raises(ValueError):
            engine.search(generate_video_sequence(20, seed=5), -0.1)

    def test_key_frame_search_can_miss_true_answers(self):
        """The paper's claim: key frames 'cannot always summarize all the
        frames of a shot', so the scheme has false dismissals that the
        exact scan exposes.  Verified statistically over a small corpus."""
        config = VideoConfig(jitter=0.02, drift=0.01)
        corpus = {
            i: generate_video_sequence(200, config, seed=100 + i)
            for i in range(15)
        }
        engine = KeyFrameSearch()
        for sequence_id, stream in corpus.items():
            engine.add(stream, sequence_id)

        epsilon = 0.05
        missed_any = False
        rng = np.random.default_rng(9)
        for _ in range(10):
            source = corpus[int(rng.integers(0, 15))]
            start = int(rng.integers(0, len(source) - 30))
            query = source.points[start : start + 30]
            relevant = exact_range_search(query, corpus, epsilon)
            retrieved = engine.search(query, epsilon)
            if relevant - retrieved:
                missed_any = True
                break
        assert missed_any, (
            "expected at least one false dismissal from key-frame search"
        )
