"""Unit tests for the R*-tree variant."""

import pytest

from repro.core.mbr import MBR
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree
from tests.conftest import brute_force_within
from tests.test_rtree import random_boxes


class TestConstruction:
    def test_reinsert_fraction_validated(self):
        with pytest.raises(ValueError):
            RStarTree(dimension=2, reinsert_fraction=0.0)
        with pytest.raises(ValueError):
            RStarTree(dimension=2, reinsert_fraction=1.0)

    def test_is_an_rtree(self):
        assert isinstance(RStarTree(dimension=2), RTree)


class TestCorrectness:
    def test_within_matches_brute_force(self, rng):
        items = random_boxes(rng, 150)
        tree = RStarTree(dimension=2, max_entries=8)
        tree.extend(items)
        assert len(tree) == 150
        tree.check_invariants()
        for _ in range(25):
            low = rng.random(2) * 0.8
            query = MBR(low, low + rng.random(2) * 0.2)
            epsilon = float(rng.random() * 0.3)
            expected = brute_force_within(items, query, epsilon)
            got = {e.payload for e in tree.search_within(query, epsilon)}
            assert got == expected

    def test_all_entries_preserved_through_reinserts(self, rng):
        items = random_boxes(rng, 200, dimension=3)
        tree = RStarTree(dimension=3, max_entries=5)
        tree.extend(items)
        assert {e.payload for e in tree.entries()} == set(range(200))
        tree.check_invariants()

    def test_forced_reinsert_happens(self, rng):
        tree = RStarTree(dimension=2, max_entries=4)
        tree.extend(random_boxes(rng, 100))
        assert tree.stats.reinserts > 0

    def test_invariants_across_scales(self, rng):
        for count in (1, 7, 30, 120):
            tree = RStarTree(dimension=2, max_entries=6)
            tree.extend(random_boxes(rng, count))
            tree.check_invariants()
            assert len(tree) == count


class TestQuality:
    def test_no_worse_leaf_overlap_than_random_order_guttman(self, rng):
        """R* should produce tighter trees: compare total leaf-level overlap.

        Not a strict theorem, so assert only a generous bound: R* overlap
        must not exceed twice the Guttman overlap on clustered data.
        """
        items = []
        for cluster in range(10):
            centre = rng.random(2) * 0.9
            for i in range(20):
                low = centre + rng.normal(0, 0.01, 2).clip(-0.05, 0.05)
                low = low.clip(0, 0.95)
                items.append((MBR(low, low + 0.01), (cluster, i)))

        def leaf_overlap(tree):
            leaves = []
            stack = [tree.root]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    leaves.append(node.mbr)
                else:
                    stack.extend(node.children)
            total = 0.0
            for i, a in enumerate(leaves):
                for b in leaves[i + 1 :]:
                    total += a.overlap_volume(b)
            return total

        guttman = RTree(dimension=2, max_entries=6)
        guttman.extend(items)
        rstar = RStarTree(dimension=2, max_entries=6)
        rstar.extend(items)
        assert leaf_overlap(rstar) <= 2.0 * leaf_overlap(guttman) + 1e-9
