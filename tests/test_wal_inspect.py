"""Read-only WAL inspection (`inspect_wal`) and the `wal-inspect` CLI."""

import threading

import pytest

from repro.cli import main
from repro.service.wal import WalRecord, WriteAheadLog, inspect_wal


def write_wal(path, records):
    wal = WriteAheadLog(path, fsync=False)
    for record in records:
        wal.append(record)
    wal.close()


@pytest.fixture
def wal_path(tmp_path):
    path = tmp_path / "wal.log"
    write_wal(
        path,
        [
            WalRecord("insert", "a", points=[[0.1, 0.2]]),
            WalRecord("append", "a", points=[[0.3, 0.4]], length=2),
            WalRecord("remove", "a"),
        ],
    )
    return path


class TestInspectWal:
    def test_clean_log_round_trips_every_record(self, wal_path):
        inspection = inspect_wal(wal_path)
        assert inspection.magic_ok
        assert inspection.clean
        assert not inspection.torn
        assert inspection.valid_bytes == inspection.size
        assert [r.op for r in inspection.records] == [
            "insert",
            "append",
            "remove",
        ]
        assert inspection.records[1].length == 2
        assert all(entry.crc_ok for entry in inspection.entries)

    def test_flipped_payload_byte_is_a_crc_mismatch(self, wal_path):
        data = bytearray(wal_path.read_bytes())
        data[-2] ^= 0xFF  # inside the last record's JSON payload
        wal_path.write_bytes(bytes(data))
        inspection = inspect_wal(wal_path)
        assert inspection.torn
        assert not inspection.clean
        assert len(inspection.records) == 2  # first two still valid
        tail = inspection.entries[-1]
        assert not tail.crc_ok
        assert tail.error is not None and "crc" in tail.error.lower()

    def test_truncated_record_is_a_torn_tail(self, wal_path):
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[:-5])
        inspection = inspect_wal(wal_path)
        assert inspection.torn
        assert len(inspection.records) == 2
        assert inspection.valid_bytes < inspection.size

    def test_garbage_file_fails_the_magic_check(self, tmp_path):
        path = tmp_path / "junk.log"
        path.write_bytes(b"this is not a wal at all")
        inspection = inspect_wal(path)
        assert not inspection.magic_ok
        assert inspection.valid_bytes == 0
        assert not inspection.clean
        assert inspection.records == ()

    def test_empty_log_is_clean(self, tmp_path):
        path = tmp_path / "fresh.log"
        WriteAheadLog(path, fsync=False).close()
        inspection = inspect_wal(path)
        assert inspection.magic_ok
        assert inspection.clean
        assert inspection.records == ()


class TestReadOnlyContract:
    """Pins the contract in the ``inspect_wal`` docstring: strictly
    read-only — no lock taken, no byte written — so ``wal-inspect`` is
    safe against the live log of a running engine."""

    def test_inspect_completes_while_writer_lock_is_held(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync=False)
        try:
            wal.append(WalRecord("insert", "a", points=[[0.1, 0.2]]))
            before = path.read_bytes()
            results = []
            # Hold the log's own lock (as a mid-append writer would) and
            # require inspection to finish anyway: it must not block on it.
            with wal._lock:
                worker = threading.Thread(
                    target=lambda: results.append(inspect_wal(path)),
                    daemon=True,
                )
                worker.start()
                worker.join(timeout=5.0)
                assert not results or results[0] is not None
                assert not worker.is_alive(), (
                    "inspect_wal blocked on the writer lock"
                )
            inspection = results[0]
            assert inspection.clean
            assert [r.op for r in inspection.records] == ["insert"]
            assert path.read_bytes() == before
        finally:
            wal.close()

    def test_torn_tail_is_reported_never_repaired(self, wal_path):
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[:-5])
        truncated = wal_path.read_bytes()
        inspection = inspect_wal(wal_path)
        assert inspection.torn
        assert wal_path.read_bytes() == truncated


class TestWalInspectCli:
    def test_clean_log_exits_zero(self, wal_path, capsys):
        assert main(["wal-inspect", str(wal_path)]) == 0
        out = capsys.readouterr().out
        assert "3 valid record(s)" in out
        assert "clean" in out

    def test_records_flag_dumps_each_entry(self, wal_path, capsys):
        assert main(["wal-inspect", str(wal_path), "--records"]) == 0
        out = capsys.readouterr().out
        assert "insert" in out and "append" in out and "remove" in out
        assert "id='a'" in out

    def test_corrupt_tail_exits_nonzero_and_says_corrupt(
        self, wal_path, capsys
    ):
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[:-5])
        assert main(["wal-inspect", str(wal_path)]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_bad_magic_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "junk.log"
        path.write_bytes(b"garbage")
        assert main(["wal-inspect", str(path)]) == 1
        assert "bad magic" in capsys.readouterr().out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["wal-inspect", str(tmp_path / "absent.log")]) == 2
        assert "no such file" in capsys.readouterr().err
