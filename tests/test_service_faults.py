"""Chaos tests: deterministic fault injection across the serving stack.

Each test arms a :func:`repro.service.faults.fault_plan` (or the
``REPRO_FAULTS`` environment variable, for subprocess kills) and asserts
the recovery invariant the durability design promises: a fault may fail a
request, but it never corrupts state — post-recovery search results are
identical to a never-crashed engine's, verified with the
no-false-dismissal contracts enabled.
"""

import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.contracts import checking_contracts
from repro.core.database import SequenceDatabase
from repro.core.search import SimilaritySearch
from repro.service import (
    DeadlineExceeded,
    DurabilityConfig,
    Overloaded,
    QueryEngine,
)
from repro.service.faults import (
    FAULT_SITES,
    FaultInjected,
    FaultRule,
    active_plan,
    fault_plan,
    inject,
    parse_fault_spec,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


def build_database(rng, count=6, dimension=2):
    database = SequenceDatabase(dimension=dimension)
    for ordinal in range(count):
        length = int(rng.integers(20, 50))
        database.add(rng.random((length, dimension)), sequence_id=f"s{ordinal}")
    return database


class TestFaultSpec:
    def test_parse_grammar(self):
        rules = parse_fault_spec(
            "wal.fsync=raise, checkpoint.before-reset=kill:1,"
            "engine.worker=sleep:0.25:2:3, http.response=raise:2:1"
        )
        by_site = {rule.site: rule for rule in rules}
        assert by_site["wal.fsync"].action == "raise"
        assert by_site["wal.fsync"].times == 1
        assert by_site["checkpoint.before-reset"].action == "kill"
        assert by_site["checkpoint.before-reset"].skip == 1
        assert by_site["engine.worker"].seconds == pytest.approx(0.25)
        assert by_site["engine.worker"].times == 2
        assert by_site["engine.worker"].skip == 3
        assert by_site["http.response"].times == 2
        assert by_site["http.response"].skip == 1

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="site=action"):
            parse_fault_spec("justasite")
        with pytest.raises(ValueError, match="unknown fault action"):
            parse_fault_spec("x=explode")
        with pytest.raises(ValueError, match="seconds"):
            parse_fault_spec("x=sleep")

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="action"):
            FaultRule("x", "explode")
        with pytest.raises(ValueError, match="times"):
            FaultRule("x", "raise", times=0)
        with pytest.raises(ValueError, match="skip"):
            FaultRule("x", "raise", skip=-1)

    def test_documented_sites_are_exposed(self):
        assert "wal.fsync" in FAULT_SITES
        assert "checkpoint.before-reset" in FAULT_SITES
        assert "database.save.replace" in FAULT_SITES
        assert "cluster.backend.request" in FAULT_SITES
        assert "cluster.health.probe" in FAULT_SITES
        assert "cluster.read-repair" in FAULT_SITES

    def test_parse_every_and_unlimited_times(self):
        rules = parse_fault_spec(
            "a=raise:0:0:2, b=sleep:0.1:2:1:3, c=raise:0"
        )
        by_site = {rule.site: rule for rule in rules}
        assert by_site["a"].times is None  # 0 means unlimited
        assert by_site["a"].skip == 0
        assert by_site["a"].every == 2
        assert by_site["b"].seconds == pytest.approx(0.1)
        assert by_site["b"].times == 2
        assert by_site["b"].skip == 1
        assert by_site["b"].every == 3
        assert by_site["c"].times is None

    def test_rejects_bad_every(self):
        with pytest.raises(ValueError, match="every"):
            FaultRule("x", "raise", every=0)


class TestFaultPlan:
    def test_inject_is_noop_without_a_plan(self):
        inject("not.a.site")  # must not raise

    def test_skip_then_fire_then_burn_out(self):
        with fault_plan(
            FaultRule("site", "raise", times=2, skip=1)
        ) as plan:
            inject("site")  # skipped
            with pytest.raises(FaultInjected):
                inject("site")
            with pytest.raises(FaultInjected):
                inject("site")
            inject("site")  # burned out
            assert plan.hits["site"] == 4
            assert plan.fired("site") == 2

    def test_unarmed_sites_are_counted_not_fired(self):
        with fault_plan(FaultRule("armed", "raise")) as plan:
            inject("other")
            assert plan.hits == {"other": 1}
            assert plan.fired("other") == 0

    def test_sleep_action_delays(self):
        with fault_plan(FaultRule("slow", "sleep", seconds=0.05)):
            started = time.monotonic()
            inject("slow")
            assert time.monotonic() - started >= 0.05

    def test_every_flaps_on_a_cadence(self):
        # every=2 with unlimited times: fail, pass, fail, pass, ...
        with fault_plan(
            FaultRule("flap", "raise", times=None, every=2)
        ) as plan:
            for hit in range(6):
                if hit % 2 == 0:
                    with pytest.raises(FaultInjected):
                        inject("flap")
                else:
                    inject("flap")
            assert plan.fired("flap") == 3

    def test_every_counts_after_skip_and_respects_times(self):
        with fault_plan(
            FaultRule("site", "raise", times=2, skip=2, every=2)
        ) as plan:
            inject("site")  # skipped
            inject("site")  # skipped
            with pytest.raises(FaultInjected):
                inject("site")  # eligible hit 0 -> fires
            inject("site")  # eligible hit 1 -> passes
            with pytest.raises(FaultInjected):
                inject("site")  # eligible hit 2 -> fires, burns out
            inject("site")
            assert plan.fired("site") == 2

    def test_custom_exception_factory(self):
        with fault_plan(
            FaultRule("site", "raise", exception=lambda: OSError("disk gone"))
        ):
            with pytest.raises(OSError, match="disk gone"):
                inject("site")

    def test_duplicate_sites_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            fault_plan(
                FaultRule("site", "raise"), FaultRule("site", "sleep", seconds=0)
            ).__enter__()

    def test_env_plan_is_loaded_lazily(self, monkeypatch):
        import repro.util.faults as faults_module

        monkeypatch.setenv(faults_module.FAULTS_ENV_VAR, "env.site=raise")
        monkeypatch.setattr(faults_module, "_env_loaded", False)
        monkeypatch.setattr(faults_module, "_active", None)
        assert active_plan() is not None
        with pytest.raises(FaultInjected):
            inject("env.site")

    def test_context_plan_shadows_env_plan(self, monkeypatch):
        import repro.util.faults as faults_module

        monkeypatch.setenv(faults_module.FAULTS_ENV_VAR, "env.site=raise")
        monkeypatch.setattr(faults_module, "_env_loaded", False)
        monkeypatch.setattr(faults_module, "_active", None)
        with fault_plan(FaultRule("other", "raise")):
            inject("env.site")  # the env rule is shadowed
        with pytest.raises(FaultInjected):
            inject("env.site")  # and restored afterwards


class TestWalFaults:
    def test_fsync_failure_fails_the_write_cleanly(self, rng, tmp_path):
        """A failed fsync rejects the insert; nothing is acknowledged."""
        config = DurabilityConfig(
            tmp_path / "data", checkpoint_on_close=False
        )
        seed = build_database(rng)
        query = rng.random((10, 2))
        with QueryEngine(seed.clone(), workers=1, durability=config) as engine:
            with fault_plan(FaultRule("wal.fsync", "raise")) as plan:
                with pytest.raises(FaultInjected):
                    engine.insert(rng.random((10, 2)), sequence_id="lost")
                assert plan.fired("wal.fsync") == 1
            # The failed write published nothing...
            assert "lost" not in engine.sequence_ids()
            assert engine.snapshot_version == 0
            # ...and the engine still accepts writes afterwards.
            engine.insert(rng.random((12, 2)), sequence_id="kept")
        # Recovery sees exactly the acknowledged state.
        pristine = seed.clone()
        with QueryEngine(None, workers=1, durability=config) as recovered:
            assert "lost" not in recovered.sequence_ids()
            assert "kept" in recovered.sequence_ids()
            with checking_contracts():
                got = recovered.search(query, 0.4)
            reference = pristine
            reference.add(
                recovered._snapshot.database.sequence("kept").points,
                sequence_id="kept",
            )
            expected = SimilaritySearch(reference).search(query, 0.4)
            assert got.answers == expected.answers

    def test_crash_between_checkpoint_save_and_reset(self, rng, tmp_path):
        """The snapshot lands but the WAL survives: replay is idempotent."""
        config = DurabilityConfig(
            tmp_path / "data", checkpoint_on_close=False
        )
        seed = build_database(rng)
        extra = rng.random((20, 2))
        query = rng.random((10, 2))
        with QueryEngine(seed.clone(), workers=1, durability=config) as engine:
            engine.insert(extra, sequence_id="added")
            engine.remove("s0")
            with fault_plan(FaultRule("checkpoint.before-reset", "raise")):
                with pytest.raises(FaultInjected):
                    engine.checkpoint()
            # Snapshot now contains the writes AND the WAL still holds them.
            assert engine.wal_records == 2
        pristine = seed.clone()
        pristine.add(extra, sequence_id="added")
        pristine.remove("s0")
        reference = SimilaritySearch(pristine)
        with checking_contracts():
            with QueryEngine(None, workers=1, durability=config) as recovered:
                assert "added" in recovered.sequence_ids()
                assert "s0" not in recovered.sequence_ids()
                got = recovered.search(query, 0.4)
                expected = reference.search(query, 0.4)
                assert got.answers == expected.answers
                assert got.solution_intervals == expected.solution_intervals

    def test_crash_before_checkpoint_save(self, rng, tmp_path):
        """A checkpoint that fails before saving changes nothing on disk."""
        config = DurabilityConfig(
            tmp_path / "data", checkpoint_on_close=False
        )
        with QueryEngine(
            build_database(rng), workers=1, durability=config
        ) as engine:
            engine.insert(rng.random((10, 2)), sequence_id="w1")
            with fault_plan(FaultRule("checkpoint.before-save", "raise")):
                with pytest.raises(FaultInjected):
                    engine.checkpoint()
            assert engine.wal_records == 1
        with QueryEngine(None, workers=1, durability=config) as recovered:
            assert "w1" in recovered.sequence_ids()


class TestKillSubprocess:
    def test_kill_mid_checkpoint_loses_no_acknowledged_write(
        self, rng, tmp_path
    ):
        """A real os._exit mid-checkpoint, then recovery in this process."""
        data_dir = tmp_path / "data"
        script = f"""
import numpy as np
from repro.core.database import SequenceDatabase
from repro.service import DurabilityConfig, QueryEngine

rng = np.random.default_rng(7)
db = SequenceDatabase(dimension=2)
for i in range(4):
    db.add(rng.random((25, 2)), sequence_id=f"s{{i}}")
engine = QueryEngine(
    db, workers=1, durability=DurabilityConfig({str(data_dir)!r})
)
engine.insert(rng.random((25, 2)), sequence_id="durable")
print("ACK", flush=True)
engine.checkpoint()  # REPRO_FAULTS kills the process mid-checkpoint
print("UNREACHABLE", flush=True)
"""
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env={
                "PYTHONPATH": SRC,
                "PATH": "/usr/bin:/bin",
                "REPRO_FAULTS": "checkpoint.before-reset=kill",
            },
        )
        assert completed.returncode == 137, completed.stderr
        assert "ACK" in completed.stdout
        assert "UNREACHABLE" not in completed.stdout
        with checking_contracts():
            with QueryEngine(
                None, workers=1, durability=DurabilityConfig(data_dir)
            ) as recovered:
                assert "durable" in recovered.sequence_ids()
                assert len(recovered) == 5


class TestAdmissionFaults:
    def test_admission_delay_debits_the_deadline(self, rng):
        """A stalled admission path spends the caller's budget, not extra."""
        with QueryEngine(build_database(rng, count=3), workers=1) as engine:
            with fault_plan(
                FaultRule("engine.admission.delay", "sleep", seconds=0.4)
            ) as plan:
                with pytest.raises(DeadlineExceeded):
                    engine.search(rng.random((8, 2)), 0.5, timeout=0.05)
                assert plan.fired("engine.admission.delay") == 1
            # The stall consumed no permanent capacity.
            result = engine.search(rng.random((8, 2)), 0.5)
            assert isinstance(result.answers, list)


class TestShipHandshakeFaults:
    def test_handshake_fault_fails_the_tail_not_the_leader(self, rng, tmp_path):
        """A broken handshake rejects one wal_tail; serving continues."""
        config = DurabilityConfig(
            tmp_path / "data", checkpoint_on_close=False
        )
        with QueryEngine(
            build_database(rng), workers=1, durability=config
        ) as engine:
            engine.insert(rng.random((10, 2)), sequence_id="shipped")
            with fault_plan(
                FaultRule("wal.ship.handshake", "raise")
            ) as plan:
                with pytest.raises(FaultInjected):
                    engine.wal_tail(0)
                assert plan.fired("wal.ship.handshake") == 1
            # The failed handshake left the leader fully serviceable.
            batch = engine.wal_tail(0)
            assert batch["count"] >= 1
            result = engine.search(rng.random((8, 2)), 0.5)
            assert isinstance(result.answers, list)


class TestWorkerFaults:
    def test_slow_worker_trips_the_deadline(self, rng):
        with QueryEngine(build_database(rng, count=3), workers=1) as engine:
            with fault_plan(
                FaultRule("engine.worker", "sleep", seconds=0.4)
            ):
                with pytest.raises(DeadlineExceeded):
                    engine.search(rng.random((8, 2)), 0.5, timeout=0.05)

    def test_failed_worker_surfaces_and_recovers(self, rng):
        with QueryEngine(build_database(rng, count=3), workers=1) as engine:
            query = rng.random((8, 2))
            with fault_plan(FaultRule("engine.worker", "raise")):
                with pytest.raises(FaultInjected):
                    engine.search(query, 0.5)
            # The failure consumed no permanent capacity.
            result = engine.search(query, 0.5)
            assert isinstance(result.answers, list)
            assert engine.stats()["failures"].get("search") == 1


class TestGracefulDegradation:
    def _degrade(self, engine, query):
        """Block the single worker, then reject until degraded."""
        gate = threading.Event()
        inner = engine._do_search
        engine._do_search = lambda *args: (gate.wait(5), inner(*args))[1]
        blocked = threading.Thread(target=lambda: engine.search(query, 0.5))
        blocked.start()
        deadline = time.monotonic() + 5
        while engine.queue_depth == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        while not engine.degraded:
            with pytest.raises(Overloaded):
                engine.search(query, 0.5)
        engine._do_search = inner
        return gate, blocked

    def test_degraded_mode_sheds_writes_then_recovers(self, rng):
        engine = QueryEngine(
            build_database(rng, count=3),
            workers=1,
            queue_cap=0,
            degrade_after=2,
        )
        query = rng.random((8, 2))
        gate, blocked = self._degrade(engine, query)
        try:
            with pytest.raises(Overloaded) as caught:
                engine.insert(rng.random((10, 2)), sequence_id="shed-me")
            assert "shed" in str(caught.value)
            assert caught.value.retry_after is not None
            assert "shed-me" not in engine.sequence_ids()
        finally:
            gate.set()
            blocked.join()
        # Once the queue drains, the next admitted request clears the mode.
        result = engine.search(query, 0.5)
        assert isinstance(result.answers, list)
        assert not engine.degraded
        engine.insert(rng.random((10, 2)), sequence_id="accepted")
        stats = engine.stats()
        engine.close()
        assert stats["shed"].get("insert") == 1
        assert stats["degraded_transitions"] == {"entered": 1, "exited": 1}

    def test_degraded_cache_only_serves_hits_and_sheds_misses(self, rng):
        """The cache-only mechanism, driven at the serving-path level."""
        engine = QueryEngine(
            build_database(rng, count=3),
            workers=1,
            cache_size=8,
            degrade_after=1,
            degraded_cache_only=True,
        )
        try:
            from repro.core.sequence import MultidimensionalSequence

            warm = MultidimensionalSequence(rng.random((8, 2)))
            cold = MultidimensionalSequence(rng.random((8, 2)))
            engine.search(warm, 0.5)  # populate the cache
            snapshot = engine._snapshot
            # A warm fingerprint is served even in cache-only mode...
            result, outcome = engine._search_cached(
                snapshot, warm, 0.5, True, cache_only=True
            )
            assert outcome == "hit"
            # ...a cold one is shed instead of occupying a worker.
            with pytest.raises(Overloaded) as caught:
                engine._search_cached(
                    snapshot, cold, 0.5, True, cache_only=True
                )
            assert "shed" in str(caught.value)
            assert engine.stats()["shed"].get("search") == 1
        finally:
            engine.close()

    def test_cache_only_requires_a_cache(self, rng):
        with pytest.raises(ValueError, match="cache"):
            QueryEngine(
                build_database(rng, count=2),
                cache_size=0,
                degrade_after=1,
                degraded_cache_only=True,
            )


class TestDroppedResponses:
    def test_client_retries_through_a_dropped_response(self, rng):
        from repro.service import RetryPolicy, ServiceClient
        from repro.service.http import serve

        engine = QueryEngine(build_database(rng), workers=2, cache_size=8)
        server = serve(engine, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}",
            timeout=10.0,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01, seed=7),
        )
        try:
            with fault_plan(FaultRule("http.response", "raise")):
                health = client.healthz()
            assert health["status"] == "ok"
            stats = client.transport_stats()
            assert stats["retries"] >= 1
            assert stats["transport_errors"] >= 1
            assert server.dropped_responses >= 1
        finally:
            server.shutdown()
            server.server_close()
            engine.close()
