"""Deterministic fault injection at named sites.

A durability claim is untestable unless the failure it defends against can
be produced on demand: "the WAL survives a torn fsync" means nothing if no
test can make ``fsync`` fail at exactly the right instruction.  This module
provides the seam.  Production code calls :func:`inject` at *named sites* —
``"wal.fsync"``, ``"checkpoint.before-reset"``, ``"database.save.replace"``,
``"engine.worker"``, ``"http.response"`` — and the call is a no-op (one
global read) unless a fault plan is active.

Plans come from two places, mirroring ``REPRO_CHECK_CONTRACTS``:

* the ``REPRO_FAULTS`` environment variable, parsed once on first use, for
  subprocess crash tests (``REPRO_FAULTS="checkpoint.before-reset=kill"``
  makes the process die like ``kill -9`` mid-checkpoint);
* the :func:`fault_plan` context manager, for deterministic in-process
  tests (it shadows any environment plan for its scope).

Each :class:`FaultRule` names a site and an action:

========  ==========================================================
action    effect when the site is hit
========  ==========================================================
raise     raise :class:`FaultInjected` (or the rule's ``exception``)
kill      ``os._exit(code)`` — no cleanup, like SIGKILL
sleep     block for ``seconds`` (slow-worker / latency injection)
========  ==========================================================

Rules fire deterministically: ``skip`` hits pass through first, then the
rule triggers on every ``every``-th remaining hit (``every=1``, the
default, is every hit; ``every=2`` alternates fail/pass — a *flapping*
backend, the failure mode health trackers find hardest) until it has
fired ``times`` times (``None`` = forever), then it burns out.  Every hit
on every site is counted while a plan is active, so tests can assert a
site was actually reached (a fault test that silently stops covering its
site is worse than no test).

The environment grammar is comma-separated ``site=action`` tokens::

    REPRO_FAULTS="wal.fsync=raise,engine.worker=sleep:0.2"
    REPRO_FAULTS="checkpoint.before-reset=kill"
    REPRO_FAULTS="http.response=raise:2:1"   # skip 1 hit, then fail twice
    REPRO_FAULTS="cluster.backend.0.request=raise:0:0:2"  # flap forever

with optional ``:`` parameters — ``raise[:times[:skip[:every]]]``,
``kill[:skip]``, ``sleep:seconds[:times[:skip[:every]]]``; a ``times`` of
``0`` means unlimited.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "FAULTS_ENV_VAR",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "fault_plan",
    "inject",
    "parse_fault_spec",
]

#: Environment variable holding a fault specification for subprocesses.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Exit status used by ``kill`` actions — the shell's code for SIGKILL.
_KILL_EXIT_CODE = 137


class FaultInjected(RuntimeError):
    """The default exception raised by a ``raise`` fault rule."""


@dataclass
class FaultRule:
    """One deterministic failure: a site, an action, and a trigger window.

    Parameters
    ----------
    site:
        The injection-site name this rule arms (exact match).
    action:
        ``"raise"``, ``"kill"`` or ``"sleep"``.
    times:
        Triggers before the rule burns out; ``None`` means every hit.
    skip:
        Hits allowed through before the first trigger.
    every:
        Trigger cadence after ``skip``: fire on hit 1, then every
        ``every``-th hit.  ``2`` alternates fail/pass (a flapping
        backend); ``1`` (default) fires on each hit.
    seconds:
        Sleep duration for ``"sleep"`` rules.
    exception:
        Factory for the exception a ``"raise"`` rule throws; defaults to
        :class:`FaultInjected`.
    exit_code:
        Process exit status for ``"kill"`` rules (default 137, SIGKILL's).
    """

    site: str
    action: str = "raise"
    times: int | None = 1
    skip: int = 0
    every: int = 1
    seconds: float = 0.0
    exception: Callable[[], BaseException] | None = None
    exit_code: int = _KILL_EXIT_CODE

    def __post_init__(self) -> None:
        if self.action not in ("raise", "kill", "sleep"):
            raise ValueError(
                f"fault action must be raise/kill/sleep, got {self.action!r}"
            )
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if self.skip < 0:
            raise ValueError(f"skip must be >= 0, got {self.skip}")
        if self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


class FaultPlan:
    """An armed set of :class:`FaultRule`, with per-site hit counters."""

    def __init__(self, rules: Iterator[FaultRule] | list[FaultRule]) -> None:
        self._lock = threading.Lock()
        self._rules: dict[str, FaultRule] = {}
        self._fired: dict[str, int] = {}
        self._passed: dict[str, int] = {}
        self._eligible: dict[str, int] = {}
        self.hits: dict[str, int] = {}
        for rule in rules:
            if rule.site in self._rules:
                raise ValueError(f"duplicate fault rule for site {rule.site!r}")
            self._rules[rule.site] = rule

    def fired(self, site: str) -> int:
        """How many times the rule for ``site`` has triggered."""
        with self._lock:
            return self._fired.get(site, 0)

    def trigger(self, site: str) -> None:
        """Record a hit on ``site`` and apply its rule, if any is armed."""
        with self._lock:
            self.hits[site] = self.hits.get(site, 0) + 1
            rule = self._rules.get(site)
            if rule is None:
                return
            passed = self._passed.get(site, 0)
            if passed < rule.skip:
                self._passed[site] = passed + 1
                return
            fired = self._fired.get(site, 0)
            if rule.times is not None and fired >= rule.times:
                return
            eligible = self._eligible.get(site, 0)
            self._eligible[site] = eligible + 1
            if eligible % rule.every != 0:
                # Off-cadence hit of a flapping rule: let it through.
                return
            self._fired[site] = fired + 1
        # Apply outside the lock: sleeps must not serialise other sites,
        # and exceptions must not leave the lock held.
        if rule.action == "sleep":
            time.sleep(rule.seconds)
            return
        if rule.action == "kill":
            os._exit(rule.exit_code)
        factory = rule.exception
        error = (
            factory()
            if factory is not None
            else FaultInjected(f"injected fault at site {site!r}")
        )
        raise error


_plan_lock = threading.Lock()
_active: FaultPlan | None = None
_env_loaded = False


def _parse_times(raw: str) -> int | None:
    """A ``times`` field from the env grammar; ``0`` means unlimited."""
    value = int(raw)
    return None if value == 0 else value


def parse_fault_spec(spec: str) -> list[FaultRule]:
    """Parse a ``REPRO_FAULTS`` specification into rules."""
    rules: list[FaultRule] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise ValueError(
                f"bad fault token {token!r}: expected site=action"
            )
        site, _, action_spec = token.partition("=")
        parts = action_spec.split(":")
        action = parts[0]
        if action == "raise":
            times = _parse_times(parts[1] if len(parts) > 1 else "1")
            skip = int(parts[2]) if len(parts) > 2 else 0
            every = int(parts[3]) if len(parts) > 3 else 1
            rules.append(
                FaultRule(
                    site.strip(), "raise", times=times, skip=skip, every=every
                )
            )
        elif action == "kill":
            skip = int(parts[1]) if len(parts) > 1 else 0
            rules.append(FaultRule(site.strip(), "kill", skip=skip))
        elif action == "sleep":
            if len(parts) < 2:
                raise ValueError(f"sleep action needs seconds: {token!r}")
            seconds = float(parts[1])
            times = _parse_times(parts[2]) if len(parts) > 2 else None
            skip = int(parts[3]) if len(parts) > 3 else 0
            every = int(parts[4]) if len(parts) > 4 else 1
            rules.append(
                FaultRule(
                    site.strip(),
                    "sleep",
                    times=times,
                    skip=skip,
                    every=every,
                    seconds=seconds,
                )
            )
        else:
            raise ValueError(
                f"unknown fault action {action!r} in {token!r} "
                "(expected raise/kill/sleep)"
            )
    return rules


def _load_env_plan() -> None:
    global _active, _env_loaded
    _env_loaded = True
    spec = os.environ.get(FAULTS_ENV_VAR, "").strip()
    if spec:
        _active = FaultPlan(parse_fault_spec(spec))


def active_plan() -> FaultPlan | None:
    """The currently armed plan (context-manager plan wins over env)."""
    global _env_loaded
    with _plan_lock:
        if not _env_loaded:
            _load_env_plan()
        return _active


def inject(site: str) -> None:
    """Hit injection site ``site``; a no-op unless a plan arms it."""
    if _active is None and _env_loaded:
        return
    plan = active_plan()
    if plan is not None:
        plan.trigger(site)


@contextmanager
def fault_plan(*rules: FaultRule) -> Iterator[FaultPlan]:
    """Arm ``rules`` for a scope, shadowing any environment plan."""
    global _active, _env_loaded
    plan = FaultPlan(list(rules))
    with _plan_lock:
        if not _env_loaded:
            _load_env_plan()
        previous = _active
        _active = plan
    try:
        yield plan
    finally:
        with _plan_lock:
            _active = previous
