"""Request budgets: deadlines that travel, shrink, and cancel work.

A production request does not have *a* timeout — it has a **budget** that
every hop spends from: queue wait at admission, network time between
coordinator and backend, backoff before a retry.  This module is the
transport-free core of that idea, placed in the ``util`` layer so the
``core`` search loops can observe a budget without importing the serving
stack upward (the same layering trick as :mod:`repro.util.faults`).

Two pieces:

* :class:`Deadline` — an absolute point on the monotonic clock plus a
  cooperative *cancel* flag.  ``Deadline.after(0.5)`` is "500 ms from
  now"; every hop asks :meth:`Deadline.remaining` and passes the shrunk
  value downstream, so a request that spent 300 ms queued arrives at the
  next hop with 200 ms, not a fresh 500.  :meth:`Deadline.cancel` marks
  the request abandoned (the caller gave up, a hedge won elsewhere) so
  in-flight work can stop burning CPU.
* **Cancellation scopes** — :func:`deadline_scope` installs a deadline
  for the current thread; :func:`checkpoint`, sprinkled through long
  loops (the engine's Phase 2/3 scans), raises
  :class:`OperationCancelled` the moment the active deadline is expired
  or cancelled.  With no scope installed a checkpoint is one
  thread-local read — cheap enough for per-candidate granularity.

The scope is per-thread (``threading.local``), not a context variable,
deliberately: the engine installs it *on the worker thread* that runs
the request body, exactly where the loops execute, and worker threads
never inherit the submitting thread's context anyway.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = [
    "Deadline",
    "OperationCancelled",
    "active_deadline",
    "checkpoint",
    "deadline_scope",
]


class OperationCancelled(Exception):
    """Cooperative cancellation fired inside a :func:`deadline_scope`.

    Raised by :func:`checkpoint` when the installed deadline is expired
    (the budget ran out mid-scan) or cancelled (the caller abandoned the
    request).  Not a :class:`~repro.service.errors.ServiceError` —
    this module sits below the serving layer; the engine maps it to the
    typed ``DeadlineExceeded`` at its boundary.
    """

    def __init__(
        self, message: str, *, expired: bool = False, cancelled: bool = False
    ) -> None:
        super().__init__(message)
        #: The budget ran out (``remaining() <= 0``).
        self.expired = expired
        #: The request was explicitly abandoned via :meth:`Deadline.cancel`.
        self.cancelled = cancelled


class Deadline:
    """An absolute monotonic expiry plus a cooperative cancel flag.

    ``expires_at`` is a :func:`time.monotonic` timestamp, or ``None`` for
    an unbounded request (still cancellable).  The cancel flag is a
    monotonic boolean latch — it only ever flips ``False -> True`` — so
    reads and the write race benignly without a lock.
    """

    __slots__ = ("expires_at", "_cancelled")

    def __init__(self, expires_at: float | None) -> None:
        #: Monotonic-clock expiry, or ``None`` when unbounded.
        self.expires_at = expires_at
        self._cancelled = False

    @classmethod
    def after(cls, budget: float | None) -> "Deadline":
        """A deadline ``budget`` seconds from now (``None`` = unbounded)."""
        if budget is None:
            return cls(None)
        if budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        return cls(time.monotonic() + budget)

    def remaining(self) -> float | None:
        """Seconds of budget left (may be <= 0), ``None`` when unbounded."""
        if self.expires_at is None:
            return None
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        """Whether the budget has run out (cancellation not included)."""
        return self.expires_at is not None and time.monotonic() >= self.expires_at

    def cancel(self) -> None:
        """Mark the request abandoned; checkpoints will stop its work."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called."""
        return self._cancelled

    def done(self) -> bool:
        """Expired *or* cancelled — "no point doing more work"."""
        return self._cancelled or self.expired()

    def clamp(self, timeout: float | None) -> float | None:
        """``timeout`` shrunk to the remaining budget.

        ``None`` on both sides means unbounded; a non-positive result is
        returned as-is so callers can distinguish "already expired"
        (``<= 0``) from "no constraint" (``None``).
        """
        remaining = self.remaining()
        if remaining is None:
            return timeout
        if timeout is None:
            return remaining
        return min(timeout, remaining)

    def __repr__(self) -> str:
        remaining = self.remaining()
        state = "cancelled" if self._cancelled else (
            "unbounded" if remaining is None else f"{remaining:.3f}s left"
        )
        return f"<Deadline {state}>"


class _Scope(threading.local):
    """The per-thread stack of installed deadlines (innermost last)."""

    def __init__(self) -> None:
        self.stack: list[Deadline] = []


_scope = _Scope()


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[None]:
    """Install ``deadline`` for :func:`checkpoint` calls on this thread.

    ``None`` installs nothing (so callers need no conditional); scopes
    nest, with the innermost deadline governing.
    """
    if deadline is None:
        yield
        return
    _scope.stack.append(deadline)
    try:
        yield
    finally:
        _scope.stack.pop()


def active_deadline() -> Deadline | None:
    """The innermost deadline installed on this thread, if any."""
    stack = _scope.stack
    return stack[-1] if stack else None


def checkpoint(site: str = "") -> None:
    """Raise :class:`OperationCancelled` if the active deadline is done.

    The cooperative-cancellation probe: call it at the top of any loop
    iteration that may run long.  With no scope installed (or a healthy
    deadline) this is a thread-local read plus at most one clock read.
    """
    stack = _scope.stack
    if not stack:
        return
    deadline = stack[-1]
    if deadline.cancelled:
        raise OperationCancelled(
            f"request abandoned at checkpoint {site or '<unnamed>'}",
            cancelled=True,
        )
    if deadline.expired():
        raise OperationCancelled(
            f"budget exhausted at checkpoint {site or '<unnamed>'}",
            expired=True,
        )
