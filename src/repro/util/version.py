"""The single source of the package version string.

Lives in the ``util`` layer (the bottom of the architecture) so any
subsystem — the serving ``/stats`` endpoint, the cluster coordinator,
the benchmark trajectory writer — can stamp its output with the exact
code version without importing the top-level package (which would be a
layering cycle under REP105).  ``repro.__init__`` re-exports this as
``repro.__version__``.
"""

from __future__ import annotations

__all__ = ["REPRO_VERSION"]

#: The package version, kept in sync with ``pyproject.toml``.
REPRO_VERSION = "1.0.0"
