"""Shared utilities: argument validation, RNG plumbing, space-filling curves."""

from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.validation import (
    check_dimension,
    check_fraction,
    check_positive,
    check_probability,
    check_threshold,
)

__all__ = [
    "check_dimension",
    "check_fraction",
    "check_positive",
    "check_probability",
    "check_threshold",
    "ensure_rng",
    "spawn_rngs",
]
