"""Shared utilities: validation, RNG plumbing, sync and freeze sanitizers."""

from repro.util.freeze import (
    FREEZE_ENV_VAR,
    FrozenDict,
    FrozenList,
    FrozenWriteViolation,
    checking_freeze,
    deep_freeze,
    freeze,
    freeze_checks_enabled,
    frozen_view,
    reset_freeze_state,
    verify_frozen,
)
from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.validation import (
    check_dimension,
    check_fraction,
    check_positive,
    check_probability,
    check_threshold,
)

__all__ = [
    "FREEZE_ENV_VAR",
    "FrozenDict",
    "FrozenList",
    "FrozenWriteViolation",
    "check_dimension",
    "check_fraction",
    "check_positive",
    "check_probability",
    "check_threshold",
    "checking_freeze",
    "deep_freeze",
    "ensure_rng",
    "freeze",
    "freeze_checks_enabled",
    "frozen_view",
    "reset_freeze_state",
    "spawn_rngs",
    "verify_frozen",
]
