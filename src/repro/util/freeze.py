"""Frozen-snapshot enforcement: the runtime half of the immutability gate.

The engine's concurrency story rests on one invariant: a published
``_Snapshot`` — and every NumPy array, MBR, partition matrix and
solution-interval structure hanging off it — is deeply immutable, so
lock-free readers, the ε-cache's copy-on-write patching and cluster
scatter-gather can alias it freely.  This module makes that invariant
*enforceable* instead of aspirational:

* :func:`freeze` / :func:`deep_freeze` mark values immutable.  NumPy
  arrays are frozen in place (``flags.writeable = False`` — any later
  in-place write raises at the write site); lists and dicts are wrapped
  in lightweight read-only proxies (:class:`FrozenList`,
  :class:`FrozenDict`) whose mutating methods raise
  :class:`FrozenWriteViolation` naming the owning role and the site that
  published the value.
* :func:`frozen_view` returns a read-only view of an array without
  touching the caller's (possibly writable) base.
* :func:`verify_frozen` is the boundary check: with checks enabled it
  walks an object graph (snapshot, cache entry, index node, merge
  payload) and raises :class:`FrozenWriteViolation` if any reachable
  ndarray is still writable; disabled, it is one module-flag read, like
  :mod:`repro.util.sync`.

Checks are **off by default**.  Enable them process-wide with
``REPRO_FREEZE_CHECKS=1`` or for a scope with :func:`checking_freeze`
(process-global and nestable, for the same reason as ``checking_sync``:
snapshots are published on writer threads and verified on worker-pool
threads that never inherit a caller's context).

The proxies intercept every *Python-level* mutation (``append``,
``update``, item assignment, ``sort`` …).  C extensions that bypass the
method table could still mutate the underlying storage — the proxies are
a sanitizer, not a security boundary; the array half (``writeable``
flag) is enforced by NumPy itself.

The static half of the gate is ``tools/repro_lint`` rules REP300–REP307;
ownership and boundary placement are documented in
``docs/immutability.md``.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from typing import Any, NoReturn, TypeVar, cast

import numpy as np

__all__ = [
    "FREEZE_ENV_VAR",
    "FrozenDict",
    "FrozenList",
    "FrozenWriteViolation",
    "checking_freeze",
    "deep_freeze",
    "freeze",
    "freeze_checks_enabled",
    "frozen_view",
    "reset_freeze_state",
    "verify_frozen",
]

#: Environment variable that enables frozen-boundary checking process-wide.
FREEZE_ENV_VAR = "REPRO_FREEZE_CHECKS"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

_T = TypeVar("_T")


def _env_enabled() -> bool:
    return os.environ.get(FREEZE_ENV_VAR, "").strip().lower() in _TRUTHY


class FrozenWriteViolation(RuntimeError):
    """A mutation of (or a writable leak inside) a frozen structure.

    Raised by the read-only proxies on any mutating call, and by
    :func:`verify_frozen` when a boundary walk finds a still-writable
    array inside a structure that is about to be published.  Signals an
    aliasing bug in the library, never bad caller input.
    """

    def __init__(self, message: str, *, role: str = "", site: str = "") -> None:
        super().__init__(message)
        #: The ownership role of the violated structure (e.g.
        #: ``engine.snapshot``, ``cache.entry``, ``cluster.merge``).
        self.role = role
        #: The boundary that published/verified it (e.g.
        #: ``QueryEngine._write``, ``EpsilonCache.store``).
        self.site = site


# Whether checks are active.  Kept as a plain module global so the
# disabled fast path costs one load; recomputed whenever the scope
# counter or (via reset_freeze_state) the environment changes.
_state_lock = threading.Lock()
_forced = 0
_active = _env_enabled()


def freeze_checks_enabled() -> bool:
    """Whether frozen-boundary checking is active for this process."""
    return _active


@contextmanager
def checking_freeze() -> Iterator[None]:
    """Enable freeze checks for a scope (process-wide, nestable).

    Process-global, not a context variable, for the same reason as
    :func:`repro.util.sync.checking_sync`: snapshots published on a
    writer thread are verified on worker-pool threads that never inherit
    the enabling caller's context.
    """
    global _forced, _active
    with _state_lock:
        _forced += 1
        _active = True
    try:
        yield
    finally:
        with _state_lock:
            _forced -= 1
            _active = _forced > 0 or _env_enabled()


def reset_freeze_state() -> None:
    """Re-read the environment (test isolation after monkeypatching)."""
    global _active
    with _state_lock:
        _active = _forced > 0 or _env_enabled()


def _refuse(role: str, site: str, operation: str) -> NoReturn:
    raise FrozenWriteViolation(
        f"in-place {operation} on frozen structure owned by "
        f"'{role or 'unknown'}' (published at {site or 'unknown site'}); "
        "copy before mutating",
        role=role,
        site=site,
    )


class FrozenList(list[Any]):
    """A list whose Python-level mutators raise :class:`FrozenWriteViolation`.

    Subclassing ``list`` keeps the proxy transparent to consumers —
    iteration, indexing, ``json.dumps``, equality with plain lists and
    ``isinstance(x, list)`` all behave normally — while every mutating
    method names the owning role and publish site when it refuses.
    """

    def __init__(
        self, items: Any = (), *, role: str = "", site: str = ""
    ) -> None:
        super().__init__(items)
        self._role = role
        self._site = site

    def append(self, item: Any) -> NoReturn:
        _refuse(self._role, self._site, "append")

    def extend(self, items: Any) -> NoReturn:
        _refuse(self._role, self._site, "extend")

    def insert(self, index: Any, item: Any) -> NoReturn:
        _refuse(self._role, self._site, "insert")

    def remove(self, item: Any) -> NoReturn:
        _refuse(self._role, self._site, "remove")

    def pop(self, index: Any = -1) -> NoReturn:
        _refuse(self._role, self._site, "pop")

    def clear(self) -> NoReturn:
        _refuse(self._role, self._site, "clear")

    def sort(self, **kwargs: Any) -> NoReturn:
        _refuse(self._role, self._site, "sort")

    def reverse(self) -> NoReturn:
        _refuse(self._role, self._site, "reverse")

    def __setitem__(self, index: Any, value: Any) -> NoReturn:
        _refuse(self._role, self._site, "item assignment")

    def __delitem__(self, index: Any) -> NoReturn:
        _refuse(self._role, self._site, "item deletion")

    def __iadd__(self, items: Any) -> NoReturn:
        _refuse(self._role, self._site, "augmented assignment")

    def __imul__(self, factor: Any) -> NoReturn:
        _refuse(self._role, self._site, "augmented assignment")


class FrozenDict(dict[Any, Any]):
    """A dict whose Python-level mutators raise :class:`FrozenWriteViolation`.

    Same design as :class:`FrozenList`: transparent to readers (lookup,
    ``.get``, iteration, ``json.dumps``, equality with plain dicts),
    loud on any write.
    """

    def __init__(
        self, items: Any = (), *, role: str = "", site: str = ""
    ) -> None:
        super().__init__(items)
        self._role = role
        self._site = site

    def __setitem__(self, key: Any, value: Any) -> NoReturn:
        _refuse(self._role, self._site, "item assignment")

    def __delitem__(self, key: Any) -> NoReturn:
        _refuse(self._role, self._site, "item deletion")

    def pop(self, key: Any, *default: Any) -> NoReturn:
        _refuse(self._role, self._site, "pop")

    def popitem(self) -> NoReturn:
        _refuse(self._role, self._site, "popitem")

    def clear(self) -> NoReturn:
        _refuse(self._role, self._site, "clear")

    def update(self, *args: Any, **kwargs: Any) -> NoReturn:
        _refuse(self._role, self._site, "update")

    def setdefault(self, key: Any, default: Any = None) -> NoReturn:
        _refuse(self._role, self._site, "setdefault")

    def __ior__(self, other: Any) -> NoReturn:
        _refuse(self._role, self._site, "augmented assignment")


def freeze(value: _T, *, role: str = "", site: str = "") -> _T:
    """Shallow-freeze one value; returns it (or its read-only proxy).

    * ndarray — made read-only in place (``writeable = False``) and
      returned; every alias and view created *afterwards* inherits the
      flag, and in-place writes raise ``ValueError`` at the write site.
    * list / dict — wrapped in :class:`FrozenList` / :class:`FrozenDict`
      (contents shared, not copied).
    * set — converted to ``frozenset``.
    * anything else — returned unchanged.
    """
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
        return value
    if isinstance(value, (FrozenList, FrozenDict, frozenset)):
        return value
    if isinstance(value, list):
        return FrozenList(value, role=role, site=site)  # type: ignore[return-value]
    if isinstance(value, dict):
        return FrozenDict(value, role=role, site=site)  # type: ignore[return-value]
    if isinstance(value, set):
        return frozenset(value)  # type: ignore[return-value]
    return value


def deep_freeze(value: _T, *, role: str = "", site: str = "") -> _T:
    """Recursively freeze a structure; returns its frozen form.

    Arrays are frozen in place at every depth.  Lists and dicts are
    rebuilt as read-only proxies over deep-frozen contents (the original
    containers are left untouched — callers that still own them keep
    their mutable handle).  Tuples and sets are rebuilt as tuples and
    frozensets.  Other objects (dataclasses, library classes) are
    returned as-is after their reachable arrays have been frozen in
    place; their interior containers cannot be swapped for proxies
    without breaking ownership, so for object graphs the enforcement is
    the array flag plus :func:`verify_frozen` at the boundaries.
    """
    return cast(_T, _deep_freeze(value, role, site, set()))


def _deep_freeze(value: Any, role: str, site: str, seen: set[int]) -> Any:
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
        return value
    if value is None or isinstance(
        value, (str, bytes, int, float, bool, complex, np.generic)
    ):
        return value
    if id(value) in seen:
        return value
    seen.add(id(value))
    if isinstance(value, (FrozenList, FrozenDict)):
        return value
    if isinstance(value, dict):
        return FrozenDict(
            {
                key: _deep_freeze(item, role, site, seen)
                for key, item in value.items()
            },
            role=role,
            site=site,
        )
    if isinstance(value, list):
        return FrozenList(
            [_deep_freeze(item, role, site, seen) for item in value],
            role=role,
            site=site,
        )
    if isinstance(value, tuple):
        return tuple(_deep_freeze(item, role, site, seen) for item in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(value)
    _freeze_reachable_arrays(value, seen)
    return value


def _freeze_reachable_arrays(value: Any, seen: set[int]) -> None:
    """Freeze (in place) every ndarray reachable from an object's fields."""
    for _, child in _iter_children(value):
        if isinstance(child, np.ndarray):
            child.setflags(write=False)
            continue
        if child is None or isinstance(
            child, (str, bytes, int, float, bool, complex, np.generic)
        ):
            continue
        if id(child) in seen:
            continue
        seen.add(id(child))
        if isinstance(child, (dict, Mapping)):
            for item in child.values():
                _freeze_leaf_or_recurse(item, seen)
        elif isinstance(child, (list, tuple, set, frozenset)):
            for item in child:
                _freeze_leaf_or_recurse(item, seen)
        else:
            _freeze_reachable_arrays(child, seen)


def _freeze_leaf_or_recurse(item: Any, seen: set[int]) -> None:
    if isinstance(item, np.ndarray):
        item.setflags(write=False)
        return
    if item is None or isinstance(
        item, (str, bytes, int, float, bool, complex, np.generic)
    ):
        return
    if id(item) in seen:
        return
    seen.add(id(item))
    if isinstance(item, (dict, Mapping)):
        for value in item.values():
            _freeze_leaf_or_recurse(value, seen)
    elif isinstance(item, (list, tuple, set, frozenset)):
        for value in item:
            _freeze_leaf_or_recurse(value, seen)
    else:
        _freeze_reachable_arrays(item, seen)


def frozen_view(array: np.ndarray) -> np.ndarray:
    """A read-only view of ``array``; the base's writeability is untouched.

    The owner keeps its (possibly writable) handle; everything handed
    across a boundary goes through the view, so no consumer can write
    back through the alias.
    """
    view = array.view()
    view.setflags(write=False)
    return view


def _iter_children(value: Any) -> Iterator[tuple[str, Any]]:
    """``(label, child)`` pairs for the fields/items of one object."""
    if isinstance(value, (dict, Mapping)):
        for key, item in value.items():
            yield f"[{key!r}]", item
        return
    if isinstance(value, (list, tuple, set, frozenset)):
        for index, item in enumerate(value):
            yield f"[{index}]", item
        return
    attributes = getattr(value, "__dict__", None)
    if attributes is not None:
        for name, item in attributes.items():
            yield f".{name}", item
    for klass in type(value).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if slot in ("__dict__", "__weakref__"):
                continue
            try:
                yield f".{slot}", getattr(value, slot)
            except AttributeError:
                continue


_OPAQUE = (
    str,
    bytes,
    int,
    float,
    bool,
    complex,
    np.generic,
    type,
)


def verify_frozen(value: _T, *, role: str, site: str) -> _T:
    """Boundary check: every reachable ndarray must be read-only.

    With checks disabled this is one module-flag read and returns the
    value unchanged.  Enabled, it walks the object graph (containers,
    ``__dict__``/``__slots__`` objects, with cycle protection) and
    raises :class:`FrozenWriteViolation` naming the first writable array
    found, the owning ``role`` and the publishing ``site``.
    """
    if not _active:
        return value
    _verify(value, role, role, site, set())
    return value


def _verify(value: Any, path: str, role: str, site: str, seen: set[int]) -> None:
    if isinstance(value, np.ndarray):
        if value.flags.writeable:
            raise FrozenWriteViolation(
                f"writable array at {path} crossed the frozen boundary "
                f"'{role}' (checked at {site}); freeze it before publishing",
                role=role,
                site=site,
            )
        return
    if value is None or isinstance(value, _OPAQUE):
        return
    if callable(value) and not hasattr(value, "__dict__"):
        return
    if id(value) in seen:
        return
    seen.add(id(value))
    for label, child in _iter_children(value):
        _verify(child, path + label, role, site, seen)
