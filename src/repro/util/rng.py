"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None``, an integer seed, or an existing :class:`numpy.random.Generator`.
:func:`ensure_rng` normalises all three into a ``Generator`` so internal code
never touches the legacy ``numpy.random`` global state.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SeedLike", "ensure_rng", "spawn_rngs"]

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int``, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so callers can share one).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    Useful when a workload fans out into independent pieces (e.g. one RNG per
    generated sequence) and results must not depend on generation order.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        # Spawn via the generator's own bit generator seed sequence.
        children = seed.bit_generator.seed_seq.spawn(count)
    else:
        children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(child) for child in children]
