"""Swallowed-error detection: the runtime half of the error-path gate.

The serving stack's failure story rests on two invariants.  First,
*cancellation always propagates*: once a request's budget is spent, an
``OperationCancelled`` (or the ``DeadlineExceeded`` it is translated
into at the engine boundary) must reach the caller — an ``except`` block
that eats one turns a bounded request into silent wasted work.  Second,
*typed-error translation keeps provenance*: when a layer rebuilds a
lower layer's failure as one of the ``repro.service.errors`` types, the
original must ride along as ``__cause__`` so operators see the real
fault, not just its final costume.

This module makes both invariants *observable* instead of aspirational.
Instrumented catch-sites call one of three primitives:

* :func:`record_swallowed` — an ``except`` block that intentionally
  absorbs the error (a keep-tailing loop, a bench worker counting
  failures).  With checks enabled the swallow is counted per site, and
  swallowing a cancellation/budget type raises
  :class:`SwallowedErrorViolation` unless the site declared
  ``cancellation_ok=True`` (a loop whose *job* is to outlive errors).
* :func:`translated` — a typed-error rebuild (``raise translated(err,
  DeadlineExceeded(...), ...) from err``).  Counted per site; a
  translation with no caught original is a violation, and with checks
  enabled the ``__cause__`` chain is established even if a call-site
  forgets ``from``.
* :func:`record_propagated` — an error crossing a reporting boundary
  (the HTTP handler mapping it to a status code).  Counted per site;
  an error that was raised *during* handling of another without an
  explicit ``from`` (implicit ``__context__``, no ``__cause__``) is
  counted in the ``unchained`` bucket — a provenance leak the REP402
  lint should have caught statically.

Checks are **off by default**: every primitive's disabled path is a
single module-flag read (benchmarked in
``benchmarks/bench_errtrace_overhead.py``, same budget as
:mod:`repro.util.freeze`).  Enable process-wide with
``REPRO_ERROR_CHECKS=1`` or for a scope with :func:`checking_errors`
(process-global and nestable, for the same reason as ``checking_sync``:
errors are swallowed on worker/tail threads that never inherit the
enabling caller's context).  :func:`error_stats` snapshots the per-site
counters; the engine folds it into ``stats()`` as the ``errors`` block.

The static half of the gate is ``tools/repro_lint`` rules REP400–REP407;
the taxonomy-to-HTTP mapping the instrumented sites protect is
documented in ``docs/errors.md``.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from typing import TypeVar

__all__ = [
    "ERRTRACE_ENV_VAR",
    "SwallowedErrorViolation",
    "checking_errors",
    "error_checks_enabled",
    "error_stats",
    "record_propagated",
    "record_swallowed",
    "reset_error_state",
    "translated",
]

#: Environment variable that enables error-path checking process-wide.
ERRTRACE_ENV_VAR = "REPRO_ERROR_CHECKS"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

_E = TypeVar("_E", bound=BaseException)

#: Class names (matched across the MRO, so subclasses count) that an
#: ``except`` block may never absorb: cancellation must propagate.
#: Name-based so ``util`` never imports the serving layer's taxonomy.
_NEVER_SWALLOW = frozenset({"OperationCancelled", "DeadlineExceeded"})

_EVENTS = ("swallowed", "translated", "propagated", "unchained")


def _env_enabled() -> bool:
    return os.environ.get(ERRTRACE_ENV_VAR, "").strip().lower() in _TRUTHY


class SwallowedErrorViolation(RuntimeError):
    """An error-path invariant broke at an instrumented catch-site.

    Raised when a catch-site swallows a cancellation/budget error it did
    not declare itself safe for, or when a typed-error translation has
    no caught original to chain from.  Signals an error-handling bug in
    the library, never bad caller input.
    """

    def __init__(self, message: str, *, role: str = "", site: str = "") -> None:
        super().__init__(message)
        #: The handling role of the violating catch-site (e.g.
        #: ``bench.worker``, ``follower.tail``, ``http.boundary``).
        self.role = role
        #: The instrumented site (e.g. ``run_closed_loop``,
        #: ``WalFollower.run``, ``ServiceClient._raise_typed``).
        self.site = site


# Whether checks are active.  Kept as a plain module global so the
# disabled fast path costs one load; recomputed whenever the scope
# counter or (via reset_error_state) the environment changes.
_state_lock = threading.Lock()
_forced = 0
_active = _env_enabled()
_counters: dict[str, dict[str, int]] = {}


def error_checks_enabled() -> bool:
    """Whether error-path checking is active for this process."""
    return _active


@contextmanager
def checking_errors() -> Iterator[None]:
    """Enable error-path checks for a scope (process-wide, nestable).

    Process-global, not a context variable, for the same reason as
    :func:`repro.util.sync.checking_sync`: errors are swallowed on
    bench-worker and follower-tail threads that never inherit the
    enabling caller's context.
    """
    global _forced, _active
    with _state_lock:
        _forced += 1
        _active = True
    try:
        yield
    finally:
        with _state_lock:
            _forced -= 1
            _active = _forced > 0 or _env_enabled()


def reset_error_state() -> None:
    """Re-read the environment and clear counters (test isolation)."""
    global _active
    with _state_lock:
        _counters.clear()
        _active = _forced > 0 or _env_enabled()


def error_stats() -> dict[str, dict[str, int]]:
    """Per-site ``{swallowed, translated, propagated, unchained}`` counts.

    Sites appear once they record their first event; the snapshot is a
    deep copy, safe to publish through ``stats()``.
    """
    with _state_lock:
        return {site: dict(events) for site, events in _counters.items()}


def _count(site: str, event: str) -> None:
    with _state_lock:
        events = _counters.get(site)
        if events is None:
            events = dict.fromkeys(_EVENTS, 0)
            _counters[site] = events
        events[event] += 1


def _is_never_swallow(error: BaseException) -> bool:
    return any(
        klass.__name__ in _NEVER_SWALLOW for klass in type(error).__mro__
    )


def record_swallowed(
    error: BaseException,
    *,
    role: str = "",
    site: str = "",
    cancellation_ok: bool = False,
) -> None:
    """An ``except`` block absorbed ``error`` on purpose.

    Disabled, this is one module-flag read.  Enabled, the swallow is
    counted for ``site``; absorbing a cancellation/budget type
    (``OperationCancelled``, ``DeadlineExceeded``) raises
    :class:`SwallowedErrorViolation` unless the site passed
    ``cancellation_ok=True`` — reserved for loops that must outlive
    every failure (a follower tail, an operator probe sweep) and whose
    waiver comment says so.
    """
    if not _active:
        return
    _count(site, "swallowed")
    if not cancellation_ok and _is_never_swallow(error):
        raise SwallowedErrorViolation(
            f"catch-site '{site}' (role '{role}') swallowed a "
            f"{type(error).__name__}; cancellation/budget errors must "
            "propagate to the caller",
            role=role,
            site=site,
        )


def translated(
    original: BaseException | None,
    replacement: _E,
    *,
    role: str = "",
    site: str = "",
) -> _E:
    """A typed-error rebuild of ``original``; returns ``replacement``.

    Use as ``raise translated(err, TypedError(...), ...) from err`` so
    the provenance chain is explicit in the source (what REP402 checks
    statically).  Disabled, this is one module-flag read.  Enabled, the
    translation is counted for ``site``; a translation with no caught
    original raises :class:`SwallowedErrorViolation`, and the
    ``__cause__`` chain is established here as well, so provenance
    survives even a call-site that forgot ``from``.
    """
    if not _active:
        return replacement
    _count(site, "translated")
    if original is None:
        raise SwallowedErrorViolation(
            f"catch-site '{site}' (role '{role}') built a "
            f"{type(replacement).__name__} translation with no caught "
            "original to chain from",
            role=role,
            site=site,
        )
    if replacement.__cause__ is None and replacement is not original:
        replacement.__cause__ = original
    return replacement


def record_propagated(
    error: BaseException, *, role: str = "", site: str = ""
) -> None:
    """``error`` crossed a reporting boundary (surfaced, not swallowed).

    Disabled, this is one module-flag read.  Enabled, the propagation is
    counted for ``site``; an error raised *during* handling of another
    without an explicit ``from`` (``__context__`` set, ``__cause__``
    unset, context not suppressed) is additionally counted in the
    ``unchained`` bucket — provenance was dropped somewhere upstream.
    """
    if not _active:
        return
    _count(site, "propagated")
    if (
        error.__context__ is not None
        and error.__cause__ is None
        and not error.__suppress_context__
    ):
        _count(site, "unchained")
