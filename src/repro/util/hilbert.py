"""Space-filling curves for linearising images into region sequences.

Section 1 of the paper lists images as a source of multidimensional data
sequences: "An image is segmented to a number of regions that can be ordered
appropriately, based on space filling curves such as the Z-curve, gray coding,
or the Hilbert curve."  This module implements the 2-d Hilbert curve and the
Z-order (Morton) curve used by :mod:`repro.datagen.image` to order region
grids into sequences.

Both curves map between a cell coordinate ``(x, y)`` on a ``2**order`` by
``2**order`` grid and a scalar curve position ``d`` in
``[0, 4**order)``; the maps are exact inverses of each other.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "curve_ordering",
    "hilbert_d2xy",
    "hilbert_xy2d",
    "zorder_d2xy",
    "zorder_xy2d",
]


def _check_order(order: int) -> int:
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    return int(order)


def _check_cell(order: int, x: int, y: int) -> None:
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise ValueError(f"cell ({x}, {y}) outside the {side}x{side} grid")


def hilbert_d2xy(order: int, d: int) -> tuple[int, int]:
    """Convert a Hilbert-curve position ``d`` to grid coordinates ``(x, y)``.

    Parameters
    ----------
    order:
        Curve order; the grid has ``2**order`` cells per side.
    d:
        Position along the curve, ``0 <= d < 4**order``.
    """
    _check_order(order)
    side = 1 << order
    if not 0 <= d < side * side:
        raise ValueError(f"d={d} outside [0, {side * side})")
    x = y = 0
    t = int(d)
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _hilbert_rotate(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def hilbert_xy2d(order: int, x: int, y: int) -> int:
    """Convert grid coordinates ``(x, y)`` to a Hilbert-curve position."""
    _check_order(order)
    _check_cell(order, x, y)
    side = 1 << order
    d = 0
    s = side // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        x, y = _hilbert_rotate(s, x, y, rx, ry)
        s //= 2
    return d


def _hilbert_rotate(s: int, x: int, y: int, rx: int, ry: int) -> tuple[int, int]:
    """Rotate/flip a quadrant as required by the Hilbert recursion."""
    if ry == 0:
        if rx == 1:
            x = s - 1 - x
            y = s - 1 - y
        x, y = y, x
    return x, y


def zorder_xy2d(order: int, x: int, y: int) -> int:
    """Convert grid coordinates to a Z-order (Morton) curve position."""
    _check_order(order)
    _check_cell(order, x, y)
    d = 0
    for bit in range(order):
        d |= ((x >> bit) & 1) << (2 * bit)
        d |= ((y >> bit) & 1) << (2 * bit + 1)
    return d


def zorder_d2xy(order: int, d: int) -> tuple[int, int]:
    """Convert a Z-order curve position to grid coordinates."""
    _check_order(order)
    side = 1 << order
    if not 0 <= d < side * side:
        raise ValueError(f"d={d} outside [0, {side * side})")
    x = y = 0
    for bit in range(order):
        x |= ((d >> (2 * bit)) & 1) << bit
        y |= ((d >> (2 * bit + 1)) & 1) << bit
    return x, y


def curve_ordering(order: int, curve: str = "hilbert") -> np.ndarray:
    """Return cell coordinates of a full grid traversal, in curve order.

    Parameters
    ----------
    order:
        Grid order (``2**order`` cells per side).
    curve:
        ``"hilbert"`` or ``"zorder"``.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(4**order, 2)`` whose row ``d`` is the
        ``(x, y)`` cell visited at curve position ``d``.
    """
    _check_order(order)
    if curve == "hilbert":
        d2xy = hilbert_d2xy
    elif curve == "zorder":
        d2xy = zorder_d2xy
    else:
        raise ValueError(f"unknown curve {curve!r}; expected 'hilbert' or 'zorder'")
    side = 1 << order
    coords = np.empty((side * side, 2), dtype=np.int64)
    for d in range(side * side):
        coords[d] = d2xy(order, d)
    return coords
