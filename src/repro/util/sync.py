"""Instrumented synchronization primitives: the runtime half of the gate.

The serving (:mod:`repro.service`) and cluster (:mod:`repro.cluster`)
layers are multithreaded; the class of bug most likely to corrupt served
results — a race on shared counters, a lock-order inversion between the
engine's writer lock and the cache's entry lock, blocking I/O under a
lock — is invisible to unit tests that happen not to interleave badly.
This module provides drop-in wrappers for the stdlib primitives that make
those bugs *observable*:

* :class:`TracedLock` / :class:`TracedRLock` — wrap ``threading.Lock`` /
  ``threading.RLock``.  With checks enabled they maintain a per-thread
  held-lock stack and a process-global acquisition-order graph; acquiring
  a lock in an order that closes a cycle in that graph raises
  :class:`LockOrderViolation` *instead of deadlocking*, naming the cycle.
  They also detect same-thread re-acquisition of a non-reentrant lock
  (guaranteed self-deadlock) before blocking on it, and record per-lock
  acquisition, contention, wait-time and hold-time statistics
  (:func:`sync_stats`).
* :class:`TracedCondition` — wraps ``threading.Condition`` over a traced
  lock and verifies ``wait``/``notify`` are called with that lock held by
  the *calling* thread (the raw primitive cannot tell which thread holds
  a plain ``Lock``).

Checks are **off by default**: the disabled fast path is one module-flag
read before delegating to the raw primitive, so production behaviour is
unchanged (``benchmarks/bench_sync_overhead.py`` keeps the claim honest).
Enable them process-wide with ``REPRO_SYNC_CHECKS=1`` (mirroring
``REPRO_CHECK_CONTRACTS``) or for a scope with :func:`checking_sync`.
The scope toggle is process-global, not a context variable, deliberately:
lock acquisitions happen on worker-pool threads that never inherit the
enabling context, and the order graph they feed is global anyway.

Lock *names* are roles, not instances: every engine's writer lock is
``engine.write``.  The order graph is keyed by name, so an inversion
between two instances of the same pair of roles is still a cycle — and
nesting two distinct instances of the *same* role is reported as a
violation too (it is the classic unordered peer-to-peer deadlock).
The intended global order is documented in ``docs/concurrency.md``; the
static half of the gate (``tools/repro_lint`` rules REP200–REP206) checks
what is visible lexically, this module checks what actually happens.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from types import TracebackType

__all__ = [
    "SYNC_ENV_VAR",
    "LockOrderViolation",
    "TracedCondition",
    "TracedLock",
    "TracedRLock",
    "checking_sync",
    "held_locks",
    "lock_order_edges",
    "reset_sync_state",
    "sync_checks_enabled",
    "sync_stats",
]

#: Environment variable that enables lock-order/race checking process-wide.
SYNC_ENV_VAR = "REPRO_SYNC_CHECKS"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def _env_enabled() -> bool:
    return os.environ.get(SYNC_ENV_VAR, "").strip().lower() in _TRUTHY


class LockOrderViolation(RuntimeError):
    """A lock acquisition that would (or could) deadlock.

    Raised only while sync checks are enabled, at the acquisition that
    closes a cycle in the global lock-order graph — or that re-enters a
    non-reentrant lock on the same thread.  Signals a concurrency bug in
    the library, never bad caller input.
    """

    def __init__(self, message: str, *, cycle: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        #: The lock-name cycle that the offending acquisition would close
        #: (``("a", "b", "a")``), empty for self-deadlock detections.
        self.cycle = cycle


class _LockStats:
    """Mutable per-lock-name counters (guarded by the registry lock)."""

    __slots__ = ("acquisitions", "contended", "wait_s", "hold_s", "max_hold_s")

    def __init__(self) -> None:
        self.acquisitions = 0
        self.contended = 0
        self.wait_s = 0.0
        self.hold_s = 0.0
        self.max_hold_s = 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "acquisitions": self.acquisitions,
            "contended": self.contended,
            "wait_s": self.wait_s,
            "hold_s": self.hold_s,
            "max_hold_s": self.max_hold_s,
        }


class _Held:
    """One entry on a thread's held-lock stack."""

    __slots__ = ("owner", "acquired_at", "nested")

    def __init__(self, owner: "TracedLock | TracedRLock", nested: bool) -> None:
        self.owner = owner
        self.acquired_at = time.perf_counter()
        self.nested = nested


class _HeldStack(threading.local):
    """The per-thread stack of currently held traced locks."""

    def __init__(self) -> None:
        self.stack: list[_Held] = []


# Registry state.  The registry's own lock is a raw threading.Lock by
# necessity (the wrappers cannot bootstrap on themselves); it is a leaf —
# nothing is acquired while holding it — so it can never participate in
# an inversion.
_registry_lock = threading.Lock()
_edges: dict[str, set[str]] = {}
_stats: dict[str, _LockStats] = {}
_held = _HeldStack()

# Whether checks are active.  Kept as a plain module global so the
# disabled fast path costs one load; recomputed whenever the scope
# counter or (via reset_sync_state) the environment changes.
_forced = 0
_active = _env_enabled()


def sync_checks_enabled() -> bool:
    """Whether lock-order/race checking is active for this process."""
    return _active


@contextmanager
def checking_sync() -> Iterator[None]:
    """Enable sync checks for a scope (process-wide, nestable).

    Unlike :func:`repro.core.contracts.checking_contracts` this toggle is
    global, not a context variable: the locks being checked are acquired
    on worker-pool threads that do not inherit the caller's context.
    """
    global _forced, _active
    with _registry_lock:
        _forced += 1
        _active = True
    try:
        yield
    finally:
        with _registry_lock:
            _forced -= 1
            _active = _forced > 0 or _env_enabled()


def reset_sync_state() -> None:
    """Clear the order graph, statistics, and re-read the environment.

    Intended for test isolation: the order graph is cumulative across the
    process lifetime (that is what makes single-run cycle detection
    possible), so independent tests that stage *intentional* inversions
    must reset between stages.

    Also drops the *calling thread's* held-lock stack: a test that died
    mid-acquisition would otherwise poison every later test on the same
    thread with a phantom held lock. Other threads' stacks are theirs.
    """
    global _active
    with _registry_lock:
        _edges.clear()
        _stats.clear()
        _held.stack = []
        _active = _forced > 0 or _env_enabled()


def sync_stats() -> dict[str, dict[str, float]]:
    """Per-lock-name acquisition/contention/hold statistics (a copy)."""
    with _registry_lock:
        return {name: stats.snapshot() for name, stats in _stats.items()}


def lock_order_edges() -> dict[str, tuple[str, ...]]:
    """The observed acquisition-order graph: name -> names acquired under it."""
    with _registry_lock:
        return {name: tuple(sorted(after)) for name, after in _edges.items()}


def held_locks() -> tuple[str, ...]:
    """Names of the traced locks the calling thread currently holds."""
    return tuple(entry.owner.name for entry in _held.stack)


def _find_path(start: str, target: str) -> list[str] | None:
    """A path ``start -> ... -> target`` in the order graph, if one exists."""
    seen = {start}
    trail: list[tuple[str, list[str]]] = [(start, [start])]
    while trail:
        node, path = trail.pop()
        if node == target:
            return path
        for successor in _edges.get(node, ()):
            if successor not in seen:
                seen.add(successor)
                trail.append((successor, path + [successor]))
    return None


def _traced_acquire(
    owner: "TracedLock | TracedRLock",
    blocking: bool,
    timeout: float,
    *,
    reentrant: bool,
) -> bool:
    stack = _held.stack
    held_same = [entry for entry in stack if entry.owner is owner]
    if held_same:
        if not reentrant:
            if not blocking:
                # A try-lock on a lock this thread already holds is not
                # a deadlock — it simply fails, which is the legitimate
                # single-flight idiom (e.g. the coordinator's per-backend
                # drain locks). Only a *blocking* re-acquire can never
                # return.
                return False
            raise LockOrderViolation(
                f"lock '{owner.name}' re-acquired by the thread already "
                "holding it: guaranteed self-deadlock on a non-reentrant "
                "lock"
            )
        # Re-entrant re-acquisition: no new edges, no new stats — the
        # lock is already accounted for on this thread's stack.
        acquired = owner.raw.acquire(blocking, timeout)
        if acquired:
            stack.append(_Held(owner, nested=True))
        return acquired
    for entry in stack:
        if entry.owner.name == owner.name:
            raise LockOrderViolation(
                f"two distinct locks named '{owner.name}' nested on one "
                "thread: same-role peer locks have no defined order and "
                "can deadlock against a thread nesting them the other "
                "way"
            )
    # Register the intended edges and check for a cycle BEFORE blocking
    # on the raw lock: two threads mid-inversion would otherwise both
    # pass the check and deadlock for real.  Publishing the intent first
    # guarantees that whichever thread attempts the closing edge second
    # sees the first thread's edge and raises instead of blocking.
    with _registry_lock:
        for entry in stack:
            held_name = entry.owner.name
            if owner.name in _edges.get(held_name, ()):
                continue
            path = _find_path(owner.name, held_name)
            if path is not None:
                cycle = tuple(path + [owner.name])
                raise LockOrderViolation(
                    f"lock-order inversion: acquiring '{owner.name}' while "
                    f"holding '{held_name}' closes the cycle "
                    f"{' -> '.join(cycle)} (another code path acquires "
                    "these locks in the opposite order)",
                    cycle=cycle,
                )
            _edges.setdefault(held_name, set()).add(owner.name)
    contended = owner.raw.locked() if hasattr(owner.raw, "locked") else False
    started = time.perf_counter()
    acquired = owner.raw.acquire(blocking, timeout)
    waited = time.perf_counter() - started
    if not acquired:
        return False
    with _registry_lock:
        stats = _stats.setdefault(owner.name, _LockStats())
        stats.acquisitions += 1
        if contended:
            stats.contended += 1
        stats.wait_s += waited
    stack.append(_Held(owner, nested=False))
    return True


def _traced_release(owner: "TracedLock | TracedRLock") -> None:
    stack = _held.stack
    for index in range(len(stack) - 1, -1, -1):
        if stack[index].owner is owner:
            entry = stack.pop(index)
            if not entry.nested:
                hold = time.perf_counter() - entry.acquired_at
                with _registry_lock:
                    stats = _stats.setdefault(owner.name, _LockStats())
                    stats.hold_s += hold
                    stats.max_hold_s = max(stats.max_hold_s, hold)
            break
    owner.raw.release()


class TracedLock:
    """A named, instrumentable drop-in for ``threading.Lock``.

    With checks disabled every call is one flag read plus the raw
    primitive; with checks enabled, acquisitions feed the global
    lock-order graph and per-name statistics, and an ordering cycle (or
    same-thread re-acquisition) raises :class:`LockOrderViolation`.
    """

    _reentrant = False

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("a traced lock needs a non-empty role name")
        self.name = name
        self.raw = self._make_raw()

    @staticmethod
    def _make_raw() -> "threading.Lock":  # repro-lint: disable=REP203
        return threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the lock (same contract as the raw primitive)."""
        if not _active:
            return self.raw.acquire(blocking, timeout)
        return _traced_acquire(
            self, blocking, timeout, reentrant=self._reentrant
        )

    def release(self) -> None:
        """Release the lock."""
        if not _active:
            self.raw.release()
            return
        _traced_release(self)

    def locked(self) -> bool:
        """Whether any thread holds the lock."""
        locked: Callable[[], bool] | None = getattr(self.raw, "locked", None)
        return bool(locked()) if locked is not None else False

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class TracedRLock(TracedLock):
    """A named, instrumentable drop-in for ``threading.RLock``.

    Re-entrant acquisition by the holding thread is legal and adds no
    order-graph edges; everything else behaves like :class:`TracedLock`.
    """

    _reentrant = True

    @staticmethod
    def _make_raw() -> "threading.RLock":  # type: ignore[override]  # repro-lint: disable=REP203
        return threading.RLock()


class TracedCondition:
    """A named condition variable over a traced lock.

    Wraps ``threading.Condition`` sharing the traced lock's raw
    primitive, so waiters and notifiers synchronise exactly as with the
    stdlib — but with checks enabled, ``wait``/``notify``/``notify_all``
    verify that the *calling thread* holds the lock (the stdlib can only
    check that *some* thread does, when the lock is a plain ``Lock``),
    and the wait's release/re-acquire updates the held-lock stack so the
    order graph stays truthful across the sleep.
    """

    def __init__(
        self, lock: TracedLock | TracedRLock | None = None, *, name: str
    ) -> None:
        if not name:
            raise ValueError("a traced condition needs a non-empty role name")
        self.name = name
        self.lock = lock if lock is not None else TracedRLock(name)
        self._cond = threading.Condition(self.lock.raw)  # repro-lint: disable=REP203

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the underlying traced lock."""
        return self.lock.acquire(blocking, timeout)

    def release(self) -> None:
        """Release the underlying traced lock."""
        self.lock.release()

    def __enter__(self) -> bool:
        return self.lock.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.lock.release()

    def _require_held(self, op: str) -> None:
        if _active and not any(
            entry.owner is self.lock for entry in _held.stack
        ):
            raise RuntimeError(
                f"{op}() on condition '{self.name}' without holding its "
                "lock on this thread"
            )

    def wait(self, timeout: float | None = None) -> bool:
        """Wait for a notification (lock must be held by this thread)."""
        self._require_held("wait")
        if not _active:
            return self._cond.wait(timeout)
        # The wait releases the raw lock: take it off this thread's
        # stack for the duration, then restore it through the traced
        # path so hold times and edges stay correct.
        _traced_release_bookkeeping_only(self.lock)
        try:
            return self._cond.wait(timeout)
        finally:
            _traced_reacquire_bookkeeping_only(self.lock)

    def wait_for(
        self, predicate: Callable[[], bool], timeout: float | None = None
    ) -> bool:
        """Wait until ``predicate()`` is true (stdlib semantics)."""
        self._require_held("wait_for")
        deadline = None if timeout is None else time.monotonic() + timeout
        result = predicate()
        while not result:
            remaining: float | None = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return predicate()
            self.wait(remaining)
            result = predicate()
        return result

    def notify(self, n: int = 1) -> None:
        """Wake up to ``n`` waiters (lock must be held by this thread)."""
        self._require_held("notify")
        self._cond.notify(n)

    def notify_all(self) -> None:
        """Wake all waiters (lock must be held by this thread)."""
        self._require_held("notify_all")
        self._cond.notify_all()

    def __repr__(self) -> str:
        return f"<TracedCondition {self.name!r}>"


def _traced_release_bookkeeping_only(owner: TracedLock | TracedRLock) -> None:
    """Pop ``owner`` from the held stack without touching the raw lock."""
    stack = _held.stack
    for index in range(len(stack) - 1, -1, -1):
        if stack[index].owner is owner:
            entry = stack.pop(index)
            if not entry.nested:
                hold = time.perf_counter() - entry.acquired_at
                with _registry_lock:
                    stats = _stats.setdefault(owner.name, _LockStats())
                    stats.hold_s += hold
                    stats.max_hold_s = max(stats.max_hold_s, hold)
            return


def _traced_reacquire_bookkeeping_only(
    owner: TracedLock | TracedRLock,
) -> None:
    """Push ``owner`` back on the held stack after a condition wait.

    The raw lock was re-acquired by ``Condition.wait`` itself; only the
    bookkeeping (stack entry, order edges from locks still held) needs
    replaying.
    """
    stack = _held.stack
    with _registry_lock:
        for entry in stack:
            if entry.owner is owner or entry.owner.name == owner.name:
                continue
            _edges.setdefault(entry.owner.name, set()).add(owner.name)
        stats = _stats.setdefault(owner.name, _LockStats())
        stats.acquisitions += 1
    stack.append(_Held(owner, nested=False))
