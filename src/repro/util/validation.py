"""Argument-validation helpers used across the library.

All helpers raise :class:`ValueError` (or :class:`TypeError` for wrong types)
with messages that name the offending parameter, so call sites stay terse::

    check_positive("window", window)
    check_threshold(epsilon, dimension=3)
"""

from __future__ import annotations

import numbers

import numpy as np

__all__ = [
    "check_dimension",
    "check_fraction",
    "check_positive",
    "check_probability",
    "check_threshold",
]


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is a positive (or non-negative) real number.

    Parameters
    ----------
    name:
        Parameter name used in the error message.
    value:
        The number to check.
    strict:
        When true (default), require ``value > 0``; otherwise ``value >= 0``.

    Returns
    -------
    float
        ``value`` unchanged, for inline use.
    """
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed unit interval ``[0, 1]``."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_probability(name: str, value: float) -> float:
    """Alias of :func:`check_fraction` with probability-flavoured wording."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return float(value)


def check_dimension(name: str, value: int) -> int:
    """Validate that ``value`` is a positive integer dimensionality."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value!r}")
    return int(value)


def check_threshold(epsilon: float, *, dimension: int | None = None) -> float:
    """Validate a similarity threshold ``epsilon``.

    The paper normalises the data space to the unit hyper-cube ``[0,1]^n``,
    so the largest meaningful distance is the cube diagonal ``sqrt(n)``.
    Thresholds beyond the diagonal are allowed (they simply select everything)
    but negative thresholds are rejected.
    """
    check_positive("epsilon", epsilon, strict=False)
    if dimension is not None:
        check_dimension("dimension", dimension)
        diagonal = float(np.sqrt(dimension))
        if epsilon > diagonal * 10:
            raise ValueError(
                f"epsilon={epsilon!r} is implausibly large for the unit "
                f"{dimension}-cube (diagonal {diagonal:.3f})"
            )
    return float(epsilon)
