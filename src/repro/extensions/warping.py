"""Time warping distance (Yi, Jagadish & Faloutsos — reference [13]).

Section 2: "Yi et al. also addressed the time warping function which
permits local accelerations and decelerations."  Dynamic time warping
aligns two sequences by a monotone path through their point-pair distance
matrix, so locally stretched or compressed versions of the same motion
compare as similar where the lockstep ``Dmean`` would not.

The implementation is the classic O(k·m) dynamic program over Euclidean
point distances, with an optional Sakoe-Chiba band constraining the warp,
and a path-normalised variant comparable in scale to ``Dmean``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.sequence import MultidimensionalSequence

if TYPE_CHECKING:
    import numpy.typing as npt

    SequenceLike = MultidimensionalSequence | npt.ArrayLike

__all__ = ["time_warping_distance", "warping_path"]


def _as_points(sequence: SequenceLike) -> np.ndarray:
    if isinstance(sequence, MultidimensionalSequence):
        return sequence.points
    arr = np.asarray(sequence, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2 or arr.shape[0] == 0:
        raise ValueError(f"expected a non-empty (m, n) point array, got {arr.shape}")
    return arr


def _cost_matrix(a: np.ndarray, b: np.ndarray, window: int | None) -> np.ndarray:
    """The DTW dynamic program; returns the accumulated-cost matrix."""
    k, m = a.shape[0], b.shape[0]
    if window is not None:
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        window = max(window, abs(k - m))  # the band must admit some path
    pair = np.sqrt(
        np.sum((a[:, None, :] - b[None, :, :]) ** 2, axis=2)
    )
    accumulated = np.full((k + 1, m + 1), np.inf)
    accumulated[0, 0] = 0.0
    for i in range(1, k + 1):
        if window is None:
            j_low, j_high = 1, m
        else:
            j_low = max(1, i - window)
            j_high = min(m, i + window)
        for j in range(j_low, j_high + 1):
            step = min(
                accumulated[i - 1, j],      # repeat b[j]
                accumulated[i, j - 1],      # repeat a[i]
                accumulated[i - 1, j - 1],  # advance both
            )
            accumulated[i, j] = pair[i - 1, j - 1] + step
    return accumulated


def time_warping_distance(
    s1: SequenceLike,
    s2: SequenceLike,
    *,
    window: int | None = None,
    normalized: bool = True,
) -> float:
    """Dynamic time warping distance between two sequences.

    Parameters
    ----------
    s1, s2:
        Sequences (or raw point arrays) of equal dimension, any lengths.
    window:
        Sakoe-Chiba band half-width; ``None`` (default) leaves the warp
        unconstrained.  Widened automatically to ``|len(s1) - len(s2)|``
        when narrower, so a path always exists.
    normalized:
        Divide the accumulated cost by the warping-path length, giving a
        per-step mean comparable in scale to ``Dmean`` (default); pass
        ``False`` for the raw accumulated cost of [13].

    Notes
    -----
    DTW with repetitions is *not* a metric (the triangle inequality can
    fail), so it cannot drive the paper's lower-bound pruning directly; it
    is the refinement distance for elastic-similarity queries.
    """
    a = _as_points(s1)
    b = _as_points(s2)
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}")
    accumulated = _cost_matrix(a, b, window)
    total = float(accumulated[a.shape[0], b.shape[0]])
    if not normalized:
        return total
    return total / len(warping_path(s1, s2, window=window))


def warping_path(
    s1: SequenceLike, s2: SequenceLike, *, window: int | None = None
) -> list[tuple[int, int]]:
    """The optimal warping path as zero-based ``(i, j)`` index pairs.

    Backtracks the dynamic program from the final cell, preferring the
    diagonal on ties; the path starts at ``(0, 0)`` and ends at
    ``(len(s1) - 1, len(s2) - 1)``.
    """
    a = _as_points(s1)
    b = _as_points(s2)
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}")
    accumulated = _cost_matrix(a, b, window)
    i, j = a.shape[0], b.shape[0]
    path = []
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        candidates = (
            (accumulated[i - 1, j - 1], i - 1, j - 1),
            (accumulated[i - 1, j], i - 1, j),
            (accumulated[i, j - 1], i, j - 1),
        )
        _, i, j = min(candidates, key=lambda item: item[0])
    path.reverse()
    return path
