"""Extensions reproducing the related-work operators of Section 2.

The paper's survey cites two lines of follow-on machinery that its own
framework composes with:

* Rafiei & Mendelzon's *safe linear transformations* of query sequences
  (moving average, reversing, affine rescaling) — implemented in
  :mod:`repro.extensions.transforms`, with the distance-behaviour of each
  operator documented so thresholds can be adjusted safely.
* Yi, Jagadish & Faloutsos's *time warping* distance, "which permits local
  accelerations and decelerations" — implemented in
  :mod:`repro.extensions.warping` as classic dynamic time warping over
  multidimensional points with an optional Sakoe-Chiba band.
"""

from repro.extensions.transforms import (
    affine_transform,
    downsample,
    moving_average,
    reversed_sequence,
)
from repro.extensions.warping import time_warping_distance, warping_path

__all__ = [
    "affine_transform",
    "downsample",
    "moving_average",
    "reversed_sequence",
    "time_warping_distance",
    "warping_path",
]
