"""Safe sequence transformations (Rafiei & Mendelzon, reference [12]).

Section 2 of the paper: "Rafiei et al. proposed a set of safe linear
transformations of a given sequence that can be used as the basis for
similarity queries on time-series data.  They formulated operations such as
moving average, reversing, and time warping."

A transformation is *safe* for threshold search when the distance between
transformed sequences can be bounded by the distance between the originals,
so a query can be run in transformed space with an adjusted threshold.  Each
operator below documents its distance behaviour:

* :func:`moving_average` — by Jensen's inequality the *summed* pointwise
  distance contracts: ``sum d(T(a)_i, T(b)_i) <= sum d(a_t, b_t)``.  The
  mean distance is over ``m - w + 1`` points instead of ``m``, so the safe
  threshold adjustment for ``Dmean`` semantics is the factor
  ``m / (m - w + 1)``.
* :func:`reversed_sequence` — an isometry: distances are unchanged.
* :func:`affine_transform` — scales distances by exactly ``|scale|`` per
  dimension; divide the threshold accordingly.
* :func:`downsample` — keeps every ``k``-th point; the mean distance over
  the sample estimates (but does not bound) the full mean.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.sequence import MultidimensionalSequence

if TYPE_CHECKING:
    import numpy.typing as npt

    SequenceLike = MultidimensionalSequence | npt.ArrayLike

__all__ = [
    "affine_transform",
    "downsample",
    "moving_average",
    "reversed_sequence",
]


def _points_of(sequence: SequenceLike) -> tuple[np.ndarray, object]:
    if isinstance(sequence, MultidimensionalSequence):
        return sequence.points, sequence.sequence_id
    seq = MultidimensionalSequence(sequence, validate_unit_cube=False)
    return seq.points, None


def moving_average(
    sequence: SequenceLike, window: int
) -> MultidimensionalSequence:
    """Boxcar moving average of width ``window`` per dimension.

    The result has ``len(sequence) - window + 1`` points; element ``i``
    averages the input points ``i .. i + window - 1``.  Averaging is a
    convex combination, so by Jensen's inequality the *summed* pointwise
    distance between two smoothed sequences never exceeds the summed
    distance between the originals; for ``Dmean`` semantics multiply the
    threshold by ``m / (m - window + 1)`` (see the module docstring).
    """
    points, sequence_id = _points_of(sequence)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window > points.shape[0]:
        raise ValueError(
            f"window {window} exceeds sequence length {points.shape[0]}"
        )
    if window == 1:
        return MultidimensionalSequence(points, sequence_id=sequence_id)
    cumulative = np.cumsum(points, axis=0)
    padded = np.vstack([np.zeros((1, points.shape[1])), cumulative])
    smoothed = (padded[window:] - padded[:-window]) / window
    return MultidimensionalSequence(
        np.clip(smoothed, 0.0, 1.0), sequence_id=sequence_id
    )


def reversed_sequence(sequence: SequenceLike) -> MultidimensionalSequence:
    """The sequence traversed backwards (an isometry for ``Dmean``)."""
    points, sequence_id = _points_of(sequence)
    return MultidimensionalSequence(points[::-1], sequence_id=sequence_id)


def affine_transform(
    sequence: SequenceLike,
    scale: float,
    offset: float = 0.0,
    *,
    clip: bool = True,
) -> MultidimensionalSequence:
    """Per-value affine map ``x -> scale * x + offset``.

    Distances scale by exactly ``|scale|``; run transformed-space queries
    with ``epsilon * |scale|``.  With ``clip`` (default) the result is
    clamped back into the unit cube, which breaks the exact scaling at the
    boundary — pass ``clip=False`` for the pure linear map.
    """
    points, sequence_id = _points_of(sequence)
    mapped = points * scale + offset
    if clip:
        mapped = np.clip(mapped, 0.0, 1.0)
        return MultidimensionalSequence(mapped, sequence_id=sequence_id)
    return MultidimensionalSequence(
        mapped, sequence_id=sequence_id, validate_unit_cube=False
    )


def downsample(
    sequence: SequenceLike, factor: int
) -> MultidimensionalSequence:
    """Every ``factor``-th point, starting with the first.

    A cheap sketch for long sequences; the sampled mean distance estimates
    the full one but is not a bound, so use it for ranking rather than
    thresholded pruning.
    """
    points, sequence_id = _points_of(sequence)
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    return MultidimensionalSequence(points[::factor], sequence_id=sequence_id)
