"""Per-frame colour features: raw frames in, sequence points out.

The paper's video model (§1): "a frame can be represented by a
multidimensional vector in the RGB or YCbCr color space, by averaging color
values of pixels of a frame or segmented blocks of a frame."  Both variants
are provided:

* :func:`frame_mean_color` — one point per frame: the mean colour (the
  paper's 3-d experiments use exactly this shape).
* :func:`frame_color_histogram` — a per-channel colour histogram, the
  higher-dimensional feature the paper's reduction remark is aimed at.

Frames are ``(height, width, channels)`` float arrays in ``[0, 1]``; a clip
is a ``(n_frames, height, width, channels)`` stack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.sequence import MultidimensionalSequence

if TYPE_CHECKING:
    import numpy.typing as npt

__all__ = [
    "color_histogram_sequence",
    "frame_color_histogram",
    "frame_mean_color",
    "mean_color_sequence",
]


def _check_frame(frame: np.ndarray) -> np.ndarray:
    frame = np.asarray(frame, dtype=np.float64)
    if frame.ndim != 3 or frame.shape[2] < 1:
        raise ValueError(
            f"a frame must be (height, width, channels), got {frame.shape}"
        )
    if frame.size == 0:
        raise ValueError("a frame must contain at least one pixel")
    if frame.min() < 0.0 or frame.max() > 1.0:
        raise ValueError("pixel values must lie in [0, 1]")
    return frame


def frame_mean_color(frame: npt.ArrayLike) -> np.ndarray:
    """The mean colour of one frame: a ``(channels,)`` vector in ``[0,1]``."""
    frame = _check_frame(frame)
    return frame.mean(axis=(0, 1))


def frame_color_histogram(frame: npt.ArrayLike, bins: int = 8) -> np.ndarray:
    """A normalised per-channel colour histogram.

    Returns a ``(channels * bins,)`` vector; each channel's ``bins`` cells
    sum to ``1 / channels`` so the whole vector sums to 1 and lives in the
    unit cube.
    """
    frame = _check_frame(frame)
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    channels = frame.shape[2]
    pixels = frame.reshape(-1, channels)
    edges = np.linspace(0.0, 1.0, bins + 1)
    cells = []
    for channel in range(channels):
        counts, _ = np.histogram(pixels[:, channel], bins=edges)
        cells.append(counts / (pixels.shape[0] * channels))
    return np.concatenate(cells)


def mean_color_sequence(
    frames: npt.ArrayLike, sequence_id: object = None
) -> MultidimensionalSequence:
    """A clip (frame stack) to a mean-colour sequence — the paper's video model."""
    stack = np.asarray(frames, dtype=np.float64)
    if stack.ndim != 4:
        raise ValueError(
            f"frames must be (n, height, width, channels), got {stack.shape}"
        )
    points = np.array([frame_mean_color(frame) for frame in stack])
    return MultidimensionalSequence(points, sequence_id=sequence_id)


def color_histogram_sequence(
    frames: npt.ArrayLike, bins: int = 8, sequence_id: object = None
) -> MultidimensionalSequence:
    """A clip to a histogram sequence (``channels * bins`` dimensions).

    High-dimensional by design; pair with :mod:`repro.features.reduction`
    before indexing, per §3.4.1's dimensionality-curse remark.
    """
    stack = np.asarray(frames, dtype=np.float64)
    if stack.ndim != 4:
        raise ValueError(
            f"frames must be (n, height, width, channels), got {stack.shape}"
        )
    points = np.array(
        [frame_color_histogram(frame, bins) for frame in stack]
    )
    return MultidimensionalSequence(points, sequence_id=sequence_id)
