"""Feature extraction and dimensionality reduction (§3.4.1, step 1).

The paper's pre-processing starts from raw material: "Raw materials are
parsed to extract the feature vectors.  Each vector is represented by a
multidimensional point in the hyper data space.  When the vector is of high
dimension, various dimension reduction techniques such as DFT or Wavelets
can be applied to avoid the dimensionality curse problem."

* :mod:`repro.features.extraction` — per-frame colour features (mean
  colour, colour histograms) turning raw frame arrays into sequences.
* :mod:`repro.features.reduction` — orthonormal reductions (DFT head, Haar
  wavelet head, PCA) with the lower-bounding property that makes threshold
  search in reduced space dismissal-free.
"""

from repro.features.extraction import (
    color_histogram_sequence,
    frame_color_histogram,
    frame_mean_color,
    mean_color_sequence,
)
from repro.features.reduction import (
    ReducedSpace,
    haar_reduce,
    dft_reduce,
    fit_pca,
)

__all__ = [
    "ReducedSpace",
    "color_histogram_sequence",
    "dft_reduce",
    "fit_pca",
    "frame_color_histogram",
    "frame_mean_color",
    "haar_reduce",
    "mean_color_sequence",
]
