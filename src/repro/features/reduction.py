"""Dimensionality reduction for high-dimensional feature vectors.

§3.4.1: "When the vector is of high dimension, various dimension reduction
techniques such as DFT or Wavelets can be applied to avoid the
dimensionality curse problem."  Three reductions are provided, all built on
orthonormal transforms so that the reduced-space Euclidean distance
**lower-bounds** the original distance — dropping coordinates of an
orthonormal expansion can only shrink a distance.  Searching reduced
vectors with the original threshold therefore yields candidate sets with no
false dismissals (the same argument as the DFT F-index).

* :func:`dft_reduce` — the first ``k`` unitary-DFT coefficient pairs.
* :func:`haar_reduce` — the coarsest ``k`` coefficients of an orthonormal
  Haar wavelet transform (the paper's "Wavelets").
* :func:`fit_pca` / :class:`ReducedSpace` — data-driven PCA: an orthonormal
  projection fitted to a sample; distances between projected (centred)
  vectors lower-bound the originals for the same reason.

All three map into configurable output boxes so reduced sequences can be
re-normalised into the unit cube for indexing (``rescale`` helpers on
:class:`ReducedSpace`), at which point the lower-bounding factor must be
tracked — see the docstrings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_threshold

if TYPE_CHECKING:
    import numpy.typing as npt

__all__ = ["ReducedSpace", "dft_reduce", "haar_reduce", "fit_pca"]


def _check_matrix(vectors: npt.ArrayLike) -> np.ndarray:
    arr = np.asarray(vectors, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2 or arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ValueError(
            f"expected a non-empty (count, dimension) array, got {arr.shape}"
        )
    return arr


def dft_reduce(vectors: npt.ArrayLike, k: int) -> np.ndarray:
    """First ``k`` unitary-DFT coefficient pairs of each row.

    Output dimension is ``2 * k`` (real/imaginary interleaved).  Row-wise
    Euclidean distances in the output never exceed those of the input.
    """
    arr = _check_matrix(vectors)
    dimension = arr.shape[1]
    if not 1 <= k <= dimension:
        raise ValueError(f"k must be in [1, {dimension}], got {k}")
    spectrum = np.fft.fft(arr, axis=1) / np.sqrt(dimension)
    head = spectrum[:, :k]
    out = np.empty((arr.shape[0], 2 * k))
    out[:, 0::2] = head.real
    out[:, 1::2] = head.imag
    return out


def _haar_matrix(dimension: int) -> np.ndarray:
    """The orthonormal Haar transform matrix for a power-of-two dimension."""
    if dimension == 1:
        return np.array([[1.0]])
    half = _haar_matrix(dimension // 2)
    top = np.kron(half, [1.0, 1.0])
    bottom = np.kron(np.eye(dimension // 2), [1.0, -1.0])
    matrix = np.vstack([top, bottom])
    return matrix / np.sqrt(2.0)


def haar_reduce(vectors: npt.ArrayLike, k: int) -> np.ndarray:
    """Coarsest ``k`` orthonormal Haar coefficients of each row.

    Rows are zero-padded to the next power of two (padding preserves
    Euclidean distances exactly).  Output distances lower-bound input
    distances.
    """
    arr = _check_matrix(vectors)
    dimension = arr.shape[1]
    if not 1 <= k <= dimension:
        raise ValueError(f"k must be in [1, {dimension}], got {k}")
    padded_dim = 1 << int(np.ceil(np.log2(dimension)))
    if padded_dim != dimension:
        padded = np.zeros((arr.shape[0], padded_dim))
        padded[:, :dimension] = arr
        arr = padded
    transform = _haar_matrix(padded_dim)
    return arr @ transform.T[:, :k]


@dataclass(frozen=True)
class ReducedSpace:
    """A fitted PCA projection and its unit-cube rescaling.

    Attributes
    ----------
    components:
        Orthonormal rows, shape ``(k, dimension)``.
    mean:
        The sample mean subtracted before projecting.
    low, span:
        Per-output-coordinate bounds of the *fitted sample*'s projection,
        used by :meth:`rescale` to map into the unit cube.

    Notes
    -----
    ``transform`` output distances lower-bound original distances (the
    projection is onto an orthonormal basis; centring cancels).
    ``rescale`` divides coordinate ``i`` by ``span[i]``, so a rescaled
    distance is at most the projected distance divided by ``min(span)``.
    A vector pair within ``epsilon`` originally is therefore within
    ``epsilon / min(span)`` after rescaling — :meth:`safe_epsilon` computes
    that conservative (dismissal-free) threshold for searching rescaled
    sequences.
    """

    components: np.ndarray
    mean: np.ndarray
    low: np.ndarray
    span: np.ndarray

    @property
    def output_dimension(self) -> int:
        return self.components.shape[0]

    def transform(self, vectors: npt.ArrayLike) -> np.ndarray:
        """Project rows onto the fitted components (distance lower bound)."""
        arr = _check_matrix(vectors)
        if arr.shape[1] != self.components.shape[1]:
            raise ValueError(
                f"vectors have dimension {arr.shape[1]}, expected "
                f"{self.components.shape[1]}"
            )
        return (arr - self.mean) @ self.components.T

    def rescale(self, projected: npt.ArrayLike) -> np.ndarray:
        """Map projected vectors into (approximately) the unit cube.

        Values outside the fitted sample's range are clipped.
        """
        arr = _check_matrix(projected)
        scaled = (arr - self.low) / self.span
        return np.clip(scaled, 0.0, 1.0)

    def safe_epsilon(self, epsilon: float) -> float:
        """The rescaled-space threshold preserving no-false-dismissal."""
        epsilon = check_threshold(epsilon)
        return epsilon / float(self.span.min())


def fit_pca(sample: npt.ArrayLike, k: int) -> ReducedSpace:
    """Fit a ``k``-component PCA to a sample of feature vectors.

    Parameters
    ----------
    sample:
        ``(count, dimension)`` array of representative vectors.
    k:
        Output dimensionality, ``1 <= k <= dimension``.
    """
    arr = _check_matrix(sample)
    dimension = arr.shape[1]
    if not 1 <= k <= dimension:
        raise ValueError(f"k must be in [1, {dimension}], got {k}")
    mean = arr.mean(axis=0)
    centred = arr - mean
    _, _, vt = np.linalg.svd(centred, full_matrices=False)
    if vt.shape[0] < k:
        # Fewer samples than requested components: pad with an arbitrary
        # orthonormal completion so the projection stays well-defined.
        completion = np.linalg.qr(
            np.vstack([vt, np.eye(dimension)]).T
        )[0].T[:k]
        components = completion
    else:
        components = vt[:k]
    projected = centred @ components.T
    low = projected.min(axis=0)
    high = projected.max(axis=0)
    span = np.maximum(high - low, 1e-12)
    return ReducedSpace(components=components, mean=mean, low=low, span=span)
