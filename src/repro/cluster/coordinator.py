"""The cluster coordinator: scatter-gather with failover and hedging.

One :class:`ClusterCoordinator` fronts N backends (local engines or
remote ``repro serve`` processes behind :class:`ServiceClient`), shards
the corpus across them by deterministic hash placement
(:mod:`repro.cluster.router`), replicates every shard R ways, and makes
the paper's operations cluster-wide:

* **Reads** (``search`` / ``knn`` / ``range_query``) scatter one request
  per shard to the healthiest replica, failing over replica-by-replica,
  and merge exactly (:mod:`repro.cluster.merge`) — a complete scatter is
  bit-identical to a single node over the union corpus, preserving the
  no-false-dismissal guarantee of Lemmas 1-3 across the distribution
  seams.
* **Hedging** cuts tail latency: when a shard's first attempt exceeds the
  recent latency quantile (:class:`HedgePolicy`), a second replica is
  asked concurrently and the first answer wins.  Losing hedges and
  stragglers are cancelled where possible (queued sub-calls are dropped;
  running ones at least stop being waited on).
* **Request budgets**: a read's ``timeout`` is a whole-request budget
  (:class:`~repro.util.budget.Deadline`), not a per-hop constant.  Every
  sub-call is dispatched with the budget *remaining at dispatch time* —
  failover attempts and hedges inherit what their predecessors left, the
  hedge delay itself is capped by the remaining budget, and a sub-call
  is never dispatched at all once the budget falls below
  ``min_subcall_budget`` (it could only return after the caller stopped
  caring).
* **Partial-result degradation** is typed, not exceptional: when *every*
  replica of a shard is unavailable, ``search`` returns
  ``complete=False`` plus the missing shard list — sound answers, no
  false positives, possibly missing matches from the dead shards.
  ``knn`` fails closed by default (:class:`~repro.service.errors.
  ShardUnavailable`) because "the global k nearest" is unverifiable with
  a shard missing; pass ``fail_closed=False`` to take the typed partial
  result instead.
* **Writes** (``insert`` / ``append`` / ``remove``) go to all replicas of
  the owning shard with best-effort quorum (majority acks); replicas that
  miss a write are queued in the **repair journal**
  (:mod:`repro.cluster.repair`) and caught up as soon as a probe or a
  successful request sees them healthy again.  With ``journal_dir`` set
  the journal is crash-durable: queued repair state survives a
  coordinator kill -9.  Queues are bounded (``max_repair_ops``); at
  overflow the backend is flagged for a full **snapshot resync** from a
  healthy peer replica instead of replaying an unbounded tail.
* **Bounded-staleness reads**: WAL-shipping followers
  (:class:`~repro.service.follower.WalFollower` replicas registered via
  ``followers=[(backend, leader_index), ...]``) serve as extra read
  capacity for their leader's shards — but only while their last probed
  replication lag is within ``max_lag_records``, so a stale follower can
  never silently answer a read that demands fresher data.

Health is tracked per backend (:mod:`repro.cluster.health`) from request
outcomes and explicit :meth:`ClusterCoordinator.probe` sweeps of
``/healthz`` — which also surface each backend's durability lag
(``wal_records`` since its last checkpoint) and, for followers, the
replication lag that gates their read eligibility.
"""

from __future__ import annotations

import time
import uuid
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.cluster.backends import Backend
from repro.cluster.health import HealthTracker
from repro.cluster.merge import MergedSearch, merge_knn, merge_search_payloads
from repro.cluster.repair import (
    DEFAULT_MAX_REPAIR_OPS,
    RepairJournal,
)
from repro.cluster.router import ShardRouter, canonical_id
from repro.service.client import TRANSPORT_ERRORS
from repro.service.errors import (
    CircuitOpen,
    DeadlineExceeded,
    EngineClosed,
    RepairOverflow,
    ServiceError,
    ShardUnavailable,
    WriteQuorumFailed,
)
from repro.service.faults import inject
from repro.service.stats import LatencyWindow
from repro.util.budget import Deadline
from repro.util.faults import FaultInjected
from repro.util.rng import ensure_rng
from repro.util.sync import TracedLock
from repro.util.validation import check_threshold
from repro.util.version import REPRO_VERSION

if TYPE_CHECKING:
    import numpy.typing as npt

__all__ = [
    "ClusterCoordinator",
    "ClusterKnnResult",
    "ClusterSearchResult",
    "HedgePolicy",
]

#: Failures worth trying the next replica for.  Deterministic caller
#: errors (ValueError/KeyError/TypeError) are *not* here: every replica
#: would answer them identically, so they propagate immediately.
_FAILOVER_ERRORS = (*TRANSPORT_ERRORS, ServiceError, FaultInjected)

#: Failures that count against a backend's health.  ``Overloaded`` and
#: ``DeadlineExceeded`` prove the backend reachable and are excluded;
#: ``CircuitOpen`` is the opposite — the client fast-failed locally
#: after repeated transport errors, no bytes hit the wire — so it must
#: count as a failure or a dead backend behind an open breaker would be
#: pinned "up" by its own fast-fails.
_HEALTH_FAILURES = (*TRANSPORT_ERRORS, CircuitOpen, EngineClosed, FaultInjected)

#: Sort rank for ids the coordinator never saw an insert for.
_UNKNOWN_ORDER = 1 << 62


@dataclass(frozen=True)
class HedgePolicy:
    """When to send a backup request for a slow shard.

    The hedge delay is the ``quantile`` of recent backend-call latencies
    (clamped to ``[min_delay, max_delay]``), plus an optional uniform
    jitter of up to ``jitter`` of itself — seedable via
    :func:`repro.util.rng.ensure_rng` so chaos tests never sleep on real
    randomness.
    """

    enabled: bool = True
    quantile: float = 0.95
    min_delay: float = 0.02
    max_delay: float = 1.0
    jitter: float = 0.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.quantile <= 1.0:
            raise ValueError(
                f"quantile must be in [0, 1], got {self.quantile}"
            )
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ValueError(
                "delays must satisfy 0 <= min_delay <= max_delay, got "
                f"[{self.min_delay}, {self.max_delay}]"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(
                f"jitter must be a fraction in [0, 1], got {self.jitter}"
            )

    def delay(
        self,
        window: LatencyWindow,
        rng: np.random.Generator,
        *,
        remaining: float | None = None,
    ) -> float:
        """The seconds to wait before hedging one shard's request.

        ``remaining`` is the request's remaining budget: the delay is
        clamped so a hedge can never be scheduled to fire after the
        budget is already spent (it would hedge into the void).
        """
        base = window.quantile(self.quantile) if len(window) else 0.0
        base = min(self.max_delay, max(self.min_delay, base))
        if self.jitter > 0.0:
            base += float(rng.uniform(0.0, self.jitter * base))
        if remaining is not None:
            base = min(base, max(0.0, remaining))
        return base


@dataclass(frozen=True)
class ClusterSearchResult:
    """A merged range-search answer plus its completeness contract.

    With ``complete=True`` the result is exactly what a single node over
    the union corpus returns — no false dismissals (Lemmas 1-3) and no
    false positives.  With ``complete=False`` the shards listed in
    ``missing_shards`` contributed nothing: every reported answer is
    still exact (no false positives), but matches stored on the missing
    shards may be absent, so the no-false-dismissal guarantee holds only
    for the shards that responded.
    """

    epsilon: float
    answers: list = field(default_factory=list)
    candidates: list = field(default_factory=list)
    #: Solution intervals keyed by ``str(sequence_id)`` (transport form).
    intervals: dict = field(default_factory=dict)
    complete: bool = True
    missing_shards: tuple[int, ...] = ()
    stats: dict = field(default_factory=dict)
    snapshot_versions: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ClusterKnnResult:
    """A merged kNN answer plus its completeness contract."""

    neighbors: list[tuple[float, object]] = field(default_factory=list)
    complete: bool = True
    missing_shards: tuple[int, ...] = ()


class ClusterCoordinator:
    """Scatter-gather serving over sharded, replicated backends.

    Parameters
    ----------
    backends:
        The backend pool, in a fixed order (placement is positional).
        Anything satisfying :class:`~repro.cluster.backends.Backend`:
        :class:`~repro.service.client.ServiceClient` instances for a real
        cluster, :class:`~repro.cluster.backends.LocalBackend` in tests.
    num_shards:
        Corpus shards; defaults to the backend count.
    replication:
        Replicas per shard (distinct backends).
    health:
        Injectable :class:`HealthTracker` (deterministic clocks in tests).
    hedge:
        The :class:`HedgePolicy`; ``None`` disables hedging.
    write_quorum:
        Acks required before a write is reported written; defaults to a
        majority of ``replication``.  Failed replicas are queued for
        read-repair either way.
    probe_interval:
        Seconds between automatic recovery probes of a down backend
        (also the default for an injected ``health`` tracker).
    journal_dir:
        Directory for the durable repair journal; ``None`` (the default)
        keeps repair queues in memory, as before.
    max_repair_ops:
        Per-backend repair queue bound; overflow drops the queue and
        flags the backend for a full snapshot resync.
    followers:
        ``(backend, leader_index)`` pairs: WAL-shipping follower replicas
        of ``backends[leader_index]``.  Followers take no writes and own
        no shards; they are extra read capacity for their leader's
        shards, gated by ``max_lag_records``.
    max_lag_records:
        Staleness bound for follower reads: a follower is read-eligible
        only while its last probed replication lag is at most this many
        records.  ``None`` (the default) keeps followers probe-only —
        tracked but never routed to.
    min_subcall_budget:
        Dispatch floor (seconds): a failover or hedge sub-call whose
        remaining request budget is below this is never sent — its
        answer could only arrive after the caller's deadline.
    """

    def __init__(
        self,
        backends: list[Backend],
        *,
        num_shards: int | None = None,
        replication: int = 1,
        health: HealthTracker | None = None,
        hedge: HedgePolicy | None = HedgePolicy(),
        write_quorum: int | None = None,
        probe_interval: float = 5.0,
        journal_dir: str | Path | None = None,
        max_repair_ops: int = DEFAULT_MAX_REPAIR_OPS,
        followers: list[tuple[Backend, int]] | None = None,
        max_lag_records: int | None = None,
        min_subcall_budget: float = 0.005,
    ) -> None:
        if not backends:
            raise ValueError("a cluster needs at least one backend")
        self.backends = list(backends)
        self.followers = list(followers or [])
        for position, (_, leader_index) in enumerate(self.followers):
            if not 0 <= leader_index < len(self.backends):
                raise ValueError(
                    f"follower {position} names leader {leader_index}, "
                    f"backends are [0, {len(self.backends)})"
                )
        if max_lag_records is not None and max_lag_records < 0:
            raise ValueError(
                f"max_lag_records must be >= 0 or None, got {max_lag_records}"
            )
        self.max_lag_records = max_lag_records
        if min_subcall_budget < 0:
            raise ValueError(
                f"min_subcall_budget must be >= 0, got {min_subcall_budget}"
            )
        self.min_subcall_budget = min_subcall_budget
        # The node space routed by health / _call_backend: writable shard
        # backends first, then read-only followers.
        self._nodes: list[Backend] = [
            *self.backends,
            *(backend for backend, _ in self.followers),
        ]
        self.router = ShardRouter(
            num_backends=len(self.backends),
            num_shards=num_shards,
            replication=replication,
        )
        self.health = health or HealthTracker(
            len(self._nodes), probe_interval=probe_interval
        )
        if self.health.num_backends != len(self._nodes):
            raise ValueError(
                f"health tracker covers {self.health.num_backends} backends, "
                f"cluster has {len(self._nodes)} "
                "(shard backends plus followers)"
            )
        self.hedge = hedge
        if write_quorum is None:
            write_quorum = replication // 2 + 1
        if not 1 <= write_quorum <= replication:
            raise ValueError(
                f"write_quorum must be in [1, {replication}] (the "
                f"replication factor), got {write_quorum}"
            )
        self.write_quorum = write_quorum
        self._hedge_rng = ensure_rng(None if hedge is None else hedge.seed)
        self._rng_lock = TracedLock("coordinator.rng")
        self._latency = LatencyWindow(1024)
        self._latency_lock = TracedLock("coordinator.latency")
        # Two pools so a shard-gather blocking on its backend futures can
        # never deadlock against the futures it waits for.
        self._scatter_pool = ThreadPoolExecutor(
            max_workers=max(4, self.router.num_shards),
            thread_name_prefix="repro-cluster-scatter",
        )
        self._backend_pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(self._nodes)),
            thread_name_prefix="repro-cluster-io",
        )
        self._order: dict[str, int] = {}
        self._order_lock = TracedLock("coordinator.order")
        # Auto-assigned ids carry a per-coordinator random token so they
        # cannot collide with ids minted by a previous (or concurrent)
        # coordinator over the same backends, nor with user ids.
        self._auto_token = uuid.uuid4().hex[:8]
        self._auto_id = 0
        self.journal = RepairJournal(
            len(self.backends), directory=journal_dir, max_ops=max_repair_ops
        )
        #: Last probed replication lag per follower *node* index; a
        #: follower missing here has never probed healthy and is
        #: read-ineligible regardless of ``max_lag_records``.
        self._follower_lag: dict[int, int] = {}
        self._lag_lock = TracedLock("coordinator.lag")
        # One drain may run per backend at a time: probe() drains
        # synchronously while _call_backend submits drains to the pool
        # on down -> up transitions, and a concurrent double-replay
        # would apply the same op twice.
        self._drain_locks = [
            TracedLock(f"coordinator.drain.{index}")
            for index in range(len(self.backends))
        ]
        self._counters_lock = TracedLock("coordinator.counters")
        self._counters: dict[str, int] = {
            "requests": 0,
            "backend_calls": 0,
            "backend_failures": 0,
            "failovers": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "shard_misses": 0,
            "partial_results": 0,
            "repairs_queued": 0,
            "repairs_replayed": 0,
            "repairs_dropped": 0,
            "repairs_overflowed": 0,
            "resyncs": 0,
            "follower_reads": 0,
            "divergent_writes": 0,
            "quorum_failures": 0,
            "probes": 0,
            "stragglers_cancelled": 0,
            "budget_floor_skips": 0,
        }
        self._started_at = time.time()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the scatter pools down (backends stay up; not owned)."""
        if self._closed:
            return
        self._closed = True  # thread-safe: monotonic latch, races are benign
        self._scatter_pool.shutdown(wait=False)
        self._backend_pool.shutdown(wait=False)
        self.journal.close()

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Corpus order (reproduces single-node insertion order on merge)
    # ------------------------------------------------------------------
    def seed_order(self, sequence_ids: list[object]) -> None:
        """Register pre-loaded corpus ids in their single-node order."""
        for sequence_id in sequence_ids:
            self._note_order(sequence_id)

    def _note_order(self, sequence_id: object) -> None:
        key = canonical_id(sequence_id)
        with self._order_lock:
            if key not in self._order:
                self._order[key] = len(self._order)

    def _order_key(self, sequence_id: object) -> tuple[int, str]:
        key = canonical_id(sequence_id)
        with self._order_lock:
            return (self._order.get(key, _UNKNOWN_ORDER), key)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def search(
        self,
        points: "npt.ArrayLike",
        epsilon: float,
        *,
        find_intervals: bool = True,
        timeout: float | None = None,
        fail_closed: bool = False,
    ) -> ClusterSearchResult:
        """Cluster-wide range search with typed partial degradation.

        ``timeout`` is the *whole-request* budget: every shard sub-call
        (first attempt, failover, hedge) is dispatched with whatever of
        it remains at that moment.
        """
        epsilon = check_threshold(epsilon)
        query = np.asarray(points, dtype=np.float64)
        payloads, missing = self._scatter_read(
            "search",
            lambda backend, budget: backend.search(
                query,
                epsilon,
                find_intervals=find_intervals,
                timeout=budget,
            ),
            Deadline.after(timeout),
        )
        if missing and fail_closed:
            raise ShardUnavailable(
                f"search lost shard(s) {sorted(missing)}: every replica "
                "unavailable",
                missing_shards=missing,
            )
        merged: MergedSearch = merge_search_payloads(
            payloads, order=self._order_key
        )
        if missing:
            self._count("partial_results")
        return ClusterSearchResult(
            epsilon=epsilon,
            answers=merged.answers,
            candidates=merged.candidates,
            intervals=merged.intervals,
            complete=not missing,
            missing_shards=tuple(sorted(missing)),
            stats=merged.stats,
            snapshot_versions=merged.snapshot_versions,
        )

    def range_query(
        self,
        points: "npt.ArrayLike",
        epsilon: float,
        *,
        timeout: float | None = None,
        fail_closed: bool = False,
    ) -> ClusterSearchResult:
        """Matching ids only (no solution intervals)."""
        epsilon = check_threshold(epsilon)
        return self.search(
            points,
            epsilon,
            find_intervals=False,
            timeout=timeout,
            fail_closed=fail_closed,
        )

    def knn(
        self,
        points: "npt.ArrayLike",
        k: int,
        *,
        timeout: float | None = None,
        fail_closed: bool = True,
    ) -> ClusterKnnResult:
        """The global ``k`` nearest sequences (exact heap merge).

        Fails closed by default: a missing shard could hold a nearer
        neighbor than any reported one, so the global contract cannot be
        certified and :class:`ShardUnavailable` is raised.  With
        ``fail_closed=False`` the merged partial answer is returned with
        ``complete=False`` — every reported distance is exact, but the
        ranking is only over the shards that responded.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        query = np.asarray(points, dtype=np.float64)
        payloads, missing = self._scatter_read(
            "knn",
            lambda backend, budget: backend.knn(query, k, timeout=budget),
            Deadline.after(timeout),
        )
        if missing and fail_closed:
            raise ShardUnavailable(
                f"knn lost shard(s) {sorted(missing)}: the global top-{k} "
                "cannot be certified with a shard missing",
                missing_shards=missing,
            )
        neighbors = merge_knn(
            list(payloads.values()), k, order=self._order_key
        )
        if missing:
            self._count("partial_results")
        return ClusterKnnResult(
            neighbors=neighbors,
            complete=not missing,
            missing_shards=tuple(sorted(missing)),
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def insert(
        self, points: "npt.ArrayLike", sequence_id: object = None
    ) -> object:
        """Insert a sequence on every replica of its shard.

        The coordinator assigns an id when none is given — placement is a
        function of the id, so it must exist before routing.  Assigned
        ids are coordinator-scoped: they embed a per-coordinator random
        token (``auto-<token>-<n>``), so restarting the coordinator or
        running two coordinators over the same backends never reissues
        an id already stored.
        """
        if sequence_id is None:
            with self._order_lock:
                sequence_id = f"auto-{self._auto_token}-{self._auto_id}"
                self._auto_id += 1
        listed = np.asarray(points, dtype=np.float64).tolist()
        self._replicated_write(
            "insert",
            sequence_id,
            lambda backend, _budget: backend.insert(
                listed, sequence_id=sequence_id
            ),
            points=listed,
        )
        return sequence_id

    def append(self, sequence_id: object, points: "npt.ArrayLike") -> object:
        """Extend a stored sequence on every replica of its shard."""
        listed = np.asarray(points, dtype=np.float64).tolist()
        self._replicated_write(
            "append",
            sequence_id,
            lambda backend, _budget: backend.append(sequence_id, listed),
            points=listed,
        )
        return sequence_id

    def remove(self, sequence_id: object) -> object:
        """Remove a sequence from every replica of its shard."""
        self._replicated_write(
            "remove",
            sequence_id,
            lambda backend, _budget: backend.remove(sequence_id),
        )
        return sequence_id

    def _replicated_write(
        self,
        op: str,
        sequence_id: object,
        call: Callable[[Backend, float | None], Any],
        *,
        points: list | None = None,
    ) -> None:
        self._count("requests")
        placement = self.router.placement(sequence_id)
        self._note_order(sequence_id)
        futures: dict[Future, int] = {}
        skipped: list[int] = []
        for backend_index in placement.replicas:
            if self.health.usable(backend_index):
                futures[
                    self._backend_pool.submit(
                        self._call_backend, backend_index, call
                    )
                ] = backend_index
            else:
                skipped.append(backend_index)
        acks = 0
        caller_error: Exception | None = None
        missed: list[int] = []
        rejected: list[int] = []
        for future, backend_index in futures.items():
            try:
                future.result()
            except _FAILOVER_ERRORS:
                missed.append(backend_index)
            except (KeyError, TypeError, ValueError) as error:
                # Deterministic rejection (duplicate id, unknown id, bad
                # payload).  Whether this is the caller's fault depends
                # on the other replicas: see below.
                rejected.append(backend_index)
                if caller_error is None:
                    caller_error = error
            else:
                acks += 1
        if acks == 0 and caller_error is not None:
            # No replica accepted and at least one rejected
            # deterministically: the replicas agree the request itself
            # is bad (duplicate id, unknown id, ...).  Surface it — but
            # first queue repairs for replicas that were skipped or
            # transport-failed, whose state is unknown (replay is
            # idempotent, so a repair that turns out unnecessary is
            # absorbed).
            for backend_index in (*skipped, *missed):
                self._queue_repair(backend_index, op, sequence_id, points)
            raise caller_error
        if rejected:
            # At least one replica acked, so the request was
            # well-formed — a rejecting replica has silently diverged
            # (e.g. it missed an insert while merely "suspect" and now
            # rejects the append).  That is replica damage, not a caller
            # error: queue it for repair instead of failing a write the
            # quorum already applied.
            self._count("divergent_writes", len(rejected))
        for backend_index in (*skipped, *missed, *rejected):
            self._queue_repair(backend_index, op, sequence_id, points)
        if acks < self.write_quorum:
            self._count("quorum_failures")
            raise WriteQuorumFailed(
                f"{op} of {sequence_id!r} reached {acks} of "
                f"{len(placement.replicas)} replicas "
                f"(quorum {self.write_quorum}); missed replicas queued "
                "for read-repair",
                shard=placement.shard,
                acks=acks,
                required=self.write_quorum,
            )

    # ------------------------------------------------------------------
    # Read-repair
    # ------------------------------------------------------------------
    def _queue_repair(
        self,
        backend_index: int,
        op: str,
        sequence_id: object,
        points: list | None = None,
    ) -> None:
        try:
            queued = self.journal.queue(
                backend_index, op, sequence_id, points=points
            )
        except RepairOverflow:
            # The journal dropped the queue and flagged the backend for a
            # snapshot resync; the write itself already reached its
            # quorum, so overflow is counted, not raised to the caller.
            self._count("repairs_overflowed")
            return
        if queued:
            self._count("repairs_queued")

    def repair_pending(self) -> dict[int, int]:
        """Queued repair ops per backend (non-empty queues only)."""
        return self.journal.pending()

    def _drain_repairs(self, backend_index: int) -> int:
        """Replay a recovered backend's missed writes, in order.

        At most one drain runs per backend at a time: a concurrent
        drain (probe sweep racing a down -> up transition seen by a
        regular request) returns immediately — the active drain owns
        the queue, and replaying the same op from two threads would
        apply it twice.
        """
        lock = self._drain_locks[backend_index]
        if not lock.acquire(blocking=False):
            return 0
        try:
            return self._drain_repairs_locked(backend_index)
        finally:
            lock.release()

    def _drain_repairs_locked(self, backend_index: int) -> int:
        backend = self.backends[backend_index]
        replayed = 0
        if self.journal.needs_resync(backend_index):
            # Tail-repair overflowed: only a full snapshot copy from a
            # healthy peer can converge this backend.  Until one
            # succeeds the flag stays set and the next probe retries.
            if not self._resync_backend(backend_index):
                return replayed
        while True:
            entry = self.journal.peek(backend_index)
            if entry is None:
                return replayed
            dropped = False
            try:
                inject("cluster.read-repair")
                if entry.op == "insert":
                    try:
                        backend.insert(  # error-ok: replay is idempotent — duplicate-id KeyError proves the write landed
                            entry.points, sequence_id=entry.sequence_id
                        )
                    except KeyError:
                        pass  # already present: the write did land
                elif entry.op == "remove":
                    try:
                        backend.remove(entry.sequence_id)  # error-ok: replay is idempotent — missing-id KeyError proves the remove landed
                    except KeyError:
                        pass  # already absent
                else:
                    backend.append(entry.sequence_id, entry.points)  # error-ok: at-least-once replay by design; a torn append trips needs_resync and full snapshot copy
            except _FAILOVER_ERRORS:
                # Still unhealthy: keep the queue, try again next probe.
                self.health.record_failure(backend_index)
                return replayed
            except (KeyError, TypeError, ValueError):
                # Deterministic rejection on replay (e.g. an append
                # whose target id never landed on this replica): no
                # retry can fix it, so dead-letter the op rather than
                # wedging the queue — and the probe thread — forever.
                dropped = True
            self.journal.ack(backend_index, entry)
            if dropped:
                self._count("repairs_dropped")
            else:
                replayed += 1
                self._count("repairs_replayed")

    def _resync_backend(self, backend_index: int) -> bool:
        """Rebuild an overflowed backend from healthy peer exports.

        Every shard the backend hosts needs one healthy peer replica
        exposing ``export_sequences``; the target must expose
        ``restore``.  The donated exports are filtered to the sequences
        this backend should hold (placement is a pure function of the
        id) and restored in one shot.  Returns ``False`` — leaving the
        resync flag set for the next probe — when any donor or the
        restore is unavailable; with ``replication=1`` a shard has no
        peer and the flag can only clear once an operator reloads the
        corpus.
        """
        target = self.backends[backend_index]
        restore = getattr(target, "restore", None)
        if restore is None:
            return False
        donors: dict[int, int] = {}
        for shard in range(self.router.num_shards):
            replicas = self.router.replicas_of(shard)
            if backend_index not in replicas:
                continue
            donor = next(
                (
                    index
                    for index in replicas
                    if index != backend_index
                    and self.health.usable(index)
                    and getattr(
                        self.backends[index], "export_sequences", None
                    )
                    is not None
                ),
                None,
            )
            if donor is None:
                return False
            donors[shard] = donor
        sequences: dict[str, dict] = {}
        for donor in sorted(set(donors.values())):
            exporter = getattr(self.backends[donor], "export_sequences", None)
            if exporter is None:
                return False
            try:
                export = exporter()
            except _FAILOVER_ERRORS:
                self.health.record_failure(donor)
                return False
            for entry in export["sequences"]:
                placement = self.router.placement(entry["id"])
                if donors.get(placement.shard) == donor:
                    sequences[canonical_id(entry["id"])] = entry
        try:
            restore(list(sequences.values()))
        except _FAILOVER_ERRORS:
            self.health.record_failure(backend_index)
            return False
        self.journal.mark_resynced(backend_index)
        self._count("resyncs")
        return True

    def probe(self) -> dict[int, bool]:
        """Probe every node's ``/healthz``; drain repairs on recovery.

        Returns ``node index -> probe succeeded`` (shard backends first,
        then followers).  A follower probe also refreshes the replication
        lag that gates its read eligibility.  Run this on a timer in a
        long-lived deployment (``repro cluster-serve`` does) or
        explicitly in tests.
        """
        outcomes: dict[int, bool] = {}
        for index, backend in enumerate(self._nodes):
            self._count("probes")
            inject("cluster.health.probe")
            inject(f"cluster.backend.{index}.probe")
            try:
                info = backend.healthz()
            except (*_FAILOVER_ERRORS, KeyError, TypeError, ValueError):
                self.health.record_probe(index, None)
                outcomes[index] = False
                if index >= len(self.backends):
                    with self._lag_lock:
                        self._follower_lag.pop(index, None)
            else:
                self.health.record_probe(index, info)
                outcomes[index] = True
                if index >= len(self.backends):
                    self._note_follower_lag(index, info)
        # Catch up every reachable backend with missed writes — covering
        # fresh down -> up recoveries, queues left behind by an earlier
        # replay that failed halfway, and pending snapshot resyncs.
        self.health.take_recovered()
        pending = self.repair_pending()
        resync = set(self.journal.resync_pending())
        for index in range(len(self.backends)):
            if outcomes.get(index) and (pending.get(index) or index in resync):
                self._drain_repairs(index)
        return outcomes

    def _note_follower_lag(self, node_index: int, info: dict) -> None:
        """Record a follower's probed replication lag (or forget it)."""
        replication = info.get("replication")
        lag = (
            replication.get("lag")
            if isinstance(replication, dict)
            else None
        )
        with self._lag_lock:
            if (
                isinstance(lag, int)
                and not isinstance(lag, bool)
                and lag >= 0
            ):
                self._follower_lag[node_index] = lag
            else:
                self._follower_lag.pop(node_index, None)

    # ------------------------------------------------------------------
    # Scatter plumbing
    # ------------------------------------------------------------------
    def _scatter_read(
        self,
        op: str,
        call: Callable[[Backend, float | None], Any],
        deadline: Deadline,
    ) -> tuple[dict[int, Any], list[int]]:
        """Fan ``call`` out to one replica per shard; gather or degrade."""
        self._count("requests")
        shards = range(self.router.num_shards)
        futures = {
            self._scatter_pool.submit(
                self._gather_shard, shard, call, deadline
            ): shard
            for shard in shards
        }
        payloads: dict[int, Any] = {}
        missing: list[int] = []
        caller_error: Exception | None = None
        for future, shard in futures.items():
            try:
                payloads[shard] = future.result()
            except ShardUnavailable:
                missing.append(shard)
                self._count("shard_misses")
            except (KeyError, TypeError, ValueError) as error:
                caller_error = error
        if caller_error is not None:
            raise caller_error
        return payloads, sorted(missing)

    def _gather_shard(
        self,
        shard: int,
        call: Callable[[Backend, float | None], Any],
        deadline: Deadline,
    ) -> Any:
        """One shard's result from its healthiest replica, with hedging.

        Every attempt (first, failover, hedge) is dispatched with the
        request budget remaining at that moment; once the budget falls
        below ``min_subcall_budget`` no further attempt is sent.  When a
        winner returns, the losing attempts are cancelled: queued
        sub-calls never run, and running ones stop being waited on.
        """
        replicas = self.router.replicas_of(shard)
        attempt_order = [
            index
            for index in replicas
            if self.health.usable(index) or self.health.probe_due(index)
        ]
        # Fresh-enough followers of this shard's replicas ride at the end
        # of the order: extra failover / hedge capacity, never preferred
        # over a writable replica.
        attempt_order.extend(self._follower_candidates(replicas))
        if not attempt_order:
            raise ShardUnavailable(
                f"shard {shard}: no usable replica among {list(replicas)}",
                missing_shards=[shard],
            )
        pending: dict[Future, int] = {}
        launched = 0
        budget_exhausted = False

        def launch_next() -> bool:
            nonlocal launched, budget_exhausted
            if launched >= len(attempt_order):
                return False
            remaining = deadline.remaining()
            if remaining is not None and remaining < self.min_subcall_budget:
                # The dispatch floor: a sub-call with this little budget
                # could only answer after the caller's deadline.
                budget_exhausted = True
                self._count("budget_floor_skips")
                return False
            index = attempt_order[launched]
            launched += 1
            pending[
                self._backend_pool.submit(
                    self._call_backend, index, call, deadline
                )
            ] = index
            return True

        def cancel_losers() -> None:
            for future in pending:
                if future.cancel():
                    self._count("stragglers_cancelled")

        launch_next()
        hedged = False
        errors: dict[int, Exception] = {}
        while pending:
            may_hedge = (
                self.hedge is not None
                and self.hedge.enabled
                and not hedged
                and launched < len(attempt_order)
            )
            hedge_timeout = self._hedge_delay(deadline) if may_hedge else None
            done, _ = wait(
                pending, timeout=hedge_timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                # The hedge timer fired before the primary answered.
                hedged = True
                self._count("hedges")
                launch_next()
                continue
            for future in done:
                index = pending.pop(future)
                try:
                    payload = future.result()
                except _FAILOVER_ERRORS as error:
                    errors[index] = error
                    if pending or launch_next():
                        if launched > 1:
                            self._count("failovers")
                        continue
                else:
                    if hedged and index != attempt_order[0]:
                        self._count("hedge_wins")
                    if index >= len(self.backends):
                        self._count("follower_reads")
                    # Cancel the losing attempts: queued ones never run;
                    # already-running stragglers finish in the background
                    # (their health outcomes are recorded inside
                    # _call_backend) but nothing waits for them.
                    cancel_losers()
                    return payload
        if budget_exhausted:
            raise DeadlineExceeded(
                f"shard {shard}: remaining budget fell below the "
                f"{self.min_subcall_budget}s dispatch floor after "
                f"{launched} attempt(s)",
                timeout=float(self.min_subcall_budget),
            )
        raise ShardUnavailable(
            f"shard {shard}: every replica failed "
            f"({ {i: type(e).__name__ for i, e in errors.items()} })",
            missing_shards=[shard],
        )

    def _follower_candidates(self, replicas: tuple[int, ...]) -> list[int]:
        """Follower node indices read-eligible for a shard's replicas.

        A follower qualifies when its leader hosts the shard, its last
        probe answered with a replication lag within ``max_lag_records``,
        and its health state allows routing.  With ``max_lag_records``
        unset no follower ever qualifies.
        """
        if self.max_lag_records is None or not self.followers:
            return []
        with self._lag_lock:
            lags = dict(self._follower_lag)
        candidates: list[int] = []
        for position, (_, leader_index) in enumerate(self.followers):
            node_index = len(self.backends) + position
            if leader_index not in replicas:
                continue
            lag = lags.get(node_index)
            if lag is None or lag > self.max_lag_records:
                continue
            if self.health.usable(node_index):
                candidates.append(node_index)
        return candidates

    def _hedge_delay(self, deadline: Deadline | None = None) -> float:
        if self.hedge is None:
            return 0.0
        remaining = None if deadline is None else deadline.remaining()
        with self._latency_lock:
            window = self._latency
            with self._rng_lock:
                return self.hedge.delay(
                    window, self._hedge_rng, remaining=remaining
                )

    def _call_backend(
        self,
        backend_index: int,
        call: Callable[[Backend, float | None], Any],
        deadline: Deadline | None = None,
    ) -> Any:
        """One backend attempt: fault sites, latency, health accounting.

        The sub-call's budget is whatever the request deadline has left
        *after* the fault sites run — a fault-injected stall
        (``cluster.backend.slow``) debits the budget exactly like real
        network or queue time would.
        """
        self._count("backend_calls")
        inject("cluster.backend.request")
        inject("cluster.backend.slow")
        inject(f"cluster.backend.{backend_index}.request")
        budget = None if deadline is None else deadline.remaining()
        if budget is not None and budget <= 0.0:
            raise DeadlineExceeded(
                f"backend {backend_index}: request budget spent before "
                "dispatch",
                timeout=0.0,
            )
        started = time.monotonic()
        try:
            payload = call(self._nodes[backend_index], budget)
        except _HEALTH_FAILURES:
            self._count("backend_failures")
            self.health.record_failure(backend_index)
            raise
        except ServiceError:
            # Overloaded / DeadlineExceeded: the backend answered, so it
            # is alive — the request still failed over to a replica.
            # (CircuitOpen never reaches here: it is a local fast-fail
            # proving nothing about the backend and is matched by the
            # _HEALTH_FAILURES clause above.)
            self.health.record_success(backend_index)
            raise
        with self._latency_lock:
            self._latency.record(time.monotonic() - started)
        if (
            self.health.record_success(backend_index)
            and backend_index < len(self.backends)
        ):
            # A regular request just proved a down backend recovered:
            # catch its replicas up without blocking this request.
            # (Followers take no writes, so they have nothing to drain.)
            self.health.take_recovered()
            self._backend_pool.submit(self._drain_repairs, backend_index)
        return payload

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _count(self, key: str, amount: int = 1) -> None:
        with self._counters_lock:
            self._counters[key] += amount

    def unavailable_shards(self) -> list[int]:
        """Shards whose every replica is currently marked down."""
        return [
            shard
            for shard in range(self.router.num_shards)
            if not any(
                self.health.usable(index)
                for index in self.router.replicas_of(shard)
            )
        ]

    def healthz(self) -> dict:
        """Cluster liveness: ok / degraded (a backend down) / partial."""
        all_down = self.health.down_backends()
        down = [index for index in all_down if index < len(self.backends)]
        followers_down = [
            index - len(self.backends)
            for index in all_down
            if index >= len(self.backends)
        ]
        unavailable = self.unavailable_shards()
        if unavailable:
            status = "partial"
        elif down:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "degraded": bool(down),
            "backends": len(self.backends),
            "backends_down": down,
            "followers": len(self.followers),
            "followers_down": followers_down,
            "unavailable_shards": unavailable,
            "repair_pending": sum(self.repair_pending().values()),
            "resync_pending": self.journal.resync_pending(),
            **self.router.describe(),
        }

    def stats(self) -> dict:
        """Coordinator counters, router config, per-backend health."""
        with self._counters_lock:
            counters = dict(self._counters)
        with self._latency_lock:
            p50 = self._latency.quantile(0.50)
            p95 = self._latency.quantile(0.95)
        health = self.health.snapshot()
        # Per-backend snapshot versions, as last probed; the cluster-wide
        # "snapshot_version" is the newest of them, so benchmark runs can
        # stamp results against the serving state they actually hit.
        # Followers are reported in their own block — their versions
        # trail the leaders' by construction and would skew the max.
        versions = [
            int(block["probe"].get("snapshot_version", 0) or 0)
            for block in health[: len(self.backends)]
        ]
        with self._lag_lock:
            lags = dict(self._follower_lag)
        follower_blocks = [
            {
                "leader": leader_index,
                "lag": lags.get(len(self.backends) + position),
                **health[len(self.backends) + position],
            }
            for position, (_, leader_index) in enumerate(self.followers)
        ]
        return {
            **counters,
            "router": self.router.describe(),
            "write_quorum": self.write_quorum,
            "max_lag_records": self.max_lag_records,
            "backend_latency_p50_s": p50,
            "backend_latency_p95_s": p95,
            "repair_pending": self.repair_pending(),
            "repair_journal": self.journal.describe(),
            "backends": health[: len(self.backends)],
            "followers": follower_blocks,
            "uptime_s": time.time() - self._started_at,
            "repro_version": REPRO_VERSION,
            "snapshot_version": max(versions, default=0),
            "snapshot_versions": versions,
        }
