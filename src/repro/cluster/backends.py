"""Backend adapters: anything with the :class:`ServiceClient` surface.

The coordinator is transport-agnostic: a *backend* is any object exposing
``healthz`` / ``stats`` / ``search`` / ``knn`` / ``insert`` / ``append``
/ ``remove`` with :class:`~repro.service.client.ServiceClient` semantics
(same payload shapes, same typed errors).  Over the wire that is a
``ServiceClient``; in-process it is :class:`LocalBackend`, which wraps a
:class:`~repro.service.engine.QueryEngine` directly — no sockets — while
still pushing every payload through a JSON round trip, so results are
byte-identical to what the HTTP path produces.  Chaos and property tests
run hundreds of cluster configurations against ``LocalBackend`` in the
time one real server would take to boot.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np

from repro.service.engine import QueryEngine
from repro.service.http import healthz_payload, knn_payload, search_payload
from repro.util.validation import check_threshold

if TYPE_CHECKING:
    import numpy.typing as npt

    from repro.service.follower import WalFollower

__all__ = ["Backend", "LocalBackend"]


@runtime_checkable
class Backend(Protocol):
    """The client surface the coordinator requires of every backend."""

    def healthz(self) -> dict:
        """Liveness probe payload."""
        ...

    def stats(self) -> dict:
        """The backend's metrics block."""
        ...

    def search(
        self,
        points: "npt.ArrayLike",
        epsilon: float,
        *,
        find_intervals: bool = True,
        timeout: float | None = None,
    ) -> dict:
        """Range search payload (answers, candidates, intervals)."""
        ...

    def knn(
        self,
        points: "npt.ArrayLike",
        k: int,
        *,
        timeout: float | None = None,
    ) -> list[tuple[float, object]]:
        """The local ``k`` nearest as ``(distance, sequence_id)``."""
        ...

    def insert(
        self, points: "npt.ArrayLike", sequence_id: object = None
    ) -> object:
        """Insert a sequence; returns its id."""
        ...

    def append(self, sequence_id: object, points: "npt.ArrayLike") -> dict:
        """Extend a stored sequence."""
        ...

    def remove(self, sequence_id: object) -> dict:
        """Remove a sequence."""
        ...


def _round_trip(payload: dict) -> Any:
    """Force payloads through JSON so local == HTTP byte-for-byte."""
    return json.loads(json.dumps(payload, default=str))


class LocalBackend:
    """A :class:`QueryEngine` speaking the :class:`ServiceClient` dialect.

    Every response passes through ``json.dumps``/``loads`` to reproduce
    the wire transport exactly — interval maps keyed by
    ``str(sequence_id)``, tuples decayed to lists, numpy scalars to
    floats — so a coordinator cannot tell a local backend from a remote
    one, and parity tests exercise the same code paths either way.
    """

    def __init__(
        self,
        engine: QueryEngine,
        *,
        name: str = "local",
        follower: "WalFollower | None" = None,
    ) -> None:
        self.engine = engine
        self.name = name
        #: When this backend is a WAL-shipping replica, its follower loop
        #: — surfaced as the ``replication`` block of ``healthz()`` so a
        #: coordinator can gate bounded-staleness reads on its lag.
        self.follower = follower

    def healthz(self) -> dict:
        """Liveness probe: same payload as the HTTP ``/healthz`` route."""
        return dict(
            _round_trip(healthz_payload(self.engine, follower=self.follower))
        )

    def stats(self) -> dict:
        """The engine's metrics block (JSON round-tripped)."""
        return dict(_round_trip(self.engine.stats()))

    def search(
        self,
        points: "npt.ArrayLike",
        epsilon: float,
        *,
        find_intervals: bool = True,
        timeout: float | None = None,
    ) -> dict:
        """Range search, transport-shaped like ``ServiceClient.search``."""
        epsilon = check_threshold(epsilon)
        response = self.engine.search_detailed(
            np.asarray(points, dtype=np.float64),
            epsilon,
            find_intervals=find_intervals,
            timeout=timeout,
        )
        return dict(
            _round_trip(search_payload(response, find_intervals=find_intervals))
        )

    def knn(
        self,
        points: "npt.ArrayLike",
        k: int,
        *,
        timeout: float | None = None,
    ) -> list[tuple[float, object]]:
        """Local kNN, shaped like ``ServiceClient.knn``."""
        neighbors = self.engine.knn(
            np.asarray(points, dtype=np.float64), k, timeout=timeout
        )
        payload = _round_trip(knn_payload(neighbors))
        return [
            (float(entry["distance"]), entry["sequence_id"])
            for entry in payload["neighbors"]
        ]

    def insert(
        self, points: "npt.ArrayLike", sequence_id: object = None
    ) -> object:
        """Insert a sequence; returns its id (JSON round-tripped)."""
        written = self.engine.insert(
            np.asarray(points, dtype=np.float64), sequence_id=sequence_id
        )
        return _round_trip({"sequence_id": written})["sequence_id"]

    def append(self, sequence_id: object, points: "npt.ArrayLike") -> dict:
        """Extend a stored sequence."""
        self.engine.append(sequence_id, np.asarray(points, dtype=np.float64))
        return dict(
            _round_trip(
                {
                    "sequence_id": sequence_id,
                    "sequences": len(self.engine),
                    "snapshot_version": self.engine.snapshot_version,
                }
            )
        )

    def remove(self, sequence_id: object) -> dict:
        """Remove a sequence."""
        self.engine.remove(sequence_id)
        return dict(
            _round_trip(
                {
                    "sequence_id": sequence_id,
                    "sequences": len(self.engine),
                    "snapshot_version": self.engine.snapshot_version,
                }
            )
        )

    # -- replication surface (mirrors ServiceClient's) -----------------
    def wal_tail(
        self,
        after_seq: int,
        *,
        snapshot_version: int | None = None,
        limit: int = 512,
    ) -> dict:
        """Tail the engine's WAL, shaped like ``ServiceClient.wal_tail``."""
        return dict(
            _round_trip(
                self.engine.wal_tail(
                    after_seq, snapshot_version=snapshot_version, limit=limit
                )
            )
        )

    def export_sequences(
        self,
        sequence_ids: list[object] | None = None,
        *,
        include_points: bool = True,
    ) -> dict:
        """Full-corpus export for snapshot resync (transport-shaped)."""
        return dict(
            _round_trip(
                self.engine.export_sequences(
                    sequence_ids, include_points=include_points
                )
            )
        )

    def restore(self, sequences: list[dict]) -> dict:
        """Replace the engine's corpus with an exported one."""
        restored = self.engine.restore(sequences)
        return dict(
            _round_trip(
                {
                    "restored": restored,
                    "sequences": len(self.engine),
                    "snapshot_version": self.engine.snapshot_version,
                }
            )
        )
