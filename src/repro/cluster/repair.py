"""The durable read-repair journal behind the cluster coordinator.

Every write a replica misses becomes a journal entry addressed to that
replica (``WalRecord.replica``) and replayed — in order, idempotently —
once the replica is reachable again.  The journal has two modes:

* **In-memory** (``directory=None``, the default): per-backend queues
  that live and die with the coordinator, matching the pre-journal
  behaviour exactly.
* **Durable** (``directory=...``): entries are appended to a
  :class:`~repro.service.wal.WriteAheadLog` (``repairs.log``) before they
  are queued, and a ``repair_state.json`` sidecar records the per-backend
  **acked cursor** — the greatest journal seq each backend has replayed.
  Reopening the journal after a coordinator crash rebuilds every queue
  from the records past each cursor, so queued repair state survives a
  kill -9 of the coordinator.

The sidecar is rewritten atomically (temp file + ``os.replace``) but not
fsynced: losing the last cursor advance merely re-replays an op whose
replay is idempotent, which is the cheap side of that trade.

Queues are **bounded** (``max_ops`` per backend).  At the overflow
transition the backend's queue is dropped wholesale, the backend is
flagged as needing a full snapshot **resync** (tail-repair can no longer
converge cheaply), and :class:`~repro.service.errors.RepairOverflow` is
raised so the coordinator can count it.  While the flag is set further
:meth:`queue` calls are absorbed silently — the eventual resync copies
the *final* state from a healthy peer, which already reflects them.  The
flag itself persists in the sidecar, so the obligation survives a
coordinator restart too.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.service.errors import RepairOverflow
from repro.service.wal import WalRecord, WriteAheadLog
from repro.util.sync import TracedLock

__all__ = ["DEFAULT_MAX_REPAIR_OPS", "RepairEntry", "RepairJournal"]

#: Per-backend queue bound before overflow forces a snapshot resync.
DEFAULT_MAX_REPAIR_OPS = 10_000

_STATE_FILE = "repair_state.json"
_LOG_FILE = "repairs.log"


@dataclass(frozen=True)
class RepairEntry:
    """One missed write queued for a specific backend.

    ``seq`` is the entry's journal WAL seq in durable mode (the ack
    cursor advances to it after replay) and 0 in in-memory mode.
    """

    op: str
    sequence_id: object
    points: list | None = None
    seq: int = 0


class RepairJournal:
    """Bounded per-backend repair queues, optionally crash-durable.

    Parameters
    ----------
    num_backends:
        Backends addressed, indexed ``0 .. num_backends - 1``.
    directory:
        Where ``repairs.log`` and the cursor sidecar live; ``None`` keeps
        the journal in memory only.
    max_ops:
        Per-backend queue bound; hitting it drops the queue and flags the
        backend for snapshot resync (see module docstring).
    """

    def __init__(
        self,
        num_backends: int,
        *,
        directory: str | Path | None = None,
        max_ops: int = DEFAULT_MAX_REPAIR_OPS,
    ) -> None:
        if num_backends < 1:
            raise ValueError(f"num_backends must be >= 1, got {num_backends}")
        if max_ops < 1:
            raise ValueError(f"max_ops must be >= 1, got {max_ops}")
        self.num_backends = num_backends
        self.max_ops = max_ops
        self.directory = None if directory is None else Path(directory)
        self._lock = TracedLock("repair.journal")
        self._queues: dict[int, list[RepairEntry]] = {
            index: [] for index in range(num_backends)
        }
        self._cursors: dict[int, int] = {
            index: 0 for index in range(num_backends)
        }
        self._resync: set[int] = set()
        self._wal: WriteAheadLog | None = None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._load_state()
            self._wal = WriteAheadLog(self.directory / _LOG_FILE)
            for record in self._wal.recovered_records:
                backend = record.replica
                if backend is None or not 0 <= backend < num_backends:
                    continue
                if backend in self._resync:
                    continue  # the pending resync supersedes the queue
                seq = record.seq or 0
                if seq <= self._cursors[backend]:
                    continue  # already replayed before the crash
                self._queues[backend].append(
                    RepairEntry(record.op, record.sequence_id, record.points, seq)
                )

    # ------------------------------------------------------------------
    # Persistence (durable mode)
    # ------------------------------------------------------------------
    def _load_state(self) -> None:
        if self.directory is None:
            return
        path = self.directory / _STATE_FILE
        if not path.exists():
            return
        body = json.loads(path.read_text(encoding="utf-8"))
        for key, value in dict(body.get("cursors", {})).items():
            index = int(key)
            if 0 <= index < self.num_backends:
                self._cursors[index] = max(0, int(value))
        for index in body.get("resync", []):
            if 0 <= int(index) < self.num_backends:
                self._resync.add(int(index))

    def _save_state_locked(self) -> None:
        if self.directory is None:
            return
        payload = json.dumps(
            {
                "cursors": {
                    str(index): seq for index, seq in self._cursors.items()
                },
                "resync": sorted(self._resync),
            },
            separators=(",", ":"),
        )
        path = self.directory / _STATE_FILE
        tmp = path.with_suffix(".tmp")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, path)

    def _check_backend(self, backend: int) -> None:
        if not 0 <= backend < self.num_backends:
            raise ValueError(
                f"backend must be in [0, {self.num_backends}), got {backend}"
            )

    # ------------------------------------------------------------------
    # Producing
    # ------------------------------------------------------------------
    def queue(
        self,
        backend: int,
        op: str,
        sequence_id: object,
        *,
        points: list | None = None,
    ) -> bool:
        """Queue one missed write for ``backend``.

        Returns ``True`` when the entry was queued, ``False`` when a
        pending resync absorbed it (the resync will copy the final
        state).  Raises :class:`RepairOverflow` exactly at the overflow
        transition: the queue is dropped, the backend flagged for
        resync, and the durable cursor advanced past the dropped tail so
        a restart does not resurrect it.
        """
        self._check_backend(backend)
        with self._lock:
            if backend in self._resync:
                return False
            if len(self._queues[backend]) >= self.max_ops:
                dropped = len(self._queues[backend])
                self._queues[backend].clear()
                self._resync.add(backend)
                if self._wal is not None:
                    self._cursors[backend] = self._wal.last_seq
                self._save_state_locked()
                raise RepairOverflow(
                    f"repair queue for backend {backend} overflowed "
                    f"({dropped} ops >= capacity {self.max_ops}); queue "
                    "dropped, backend flagged for snapshot resync",
                    backend=backend,
                    pending=dropped,
                    capacity=self.max_ops,
                )
            seq = 0
            if self._wal is not None:
                self._wal.append(
                    WalRecord(op, sequence_id, points=points, replica=backend)
                )
                seq = self._wal.last_seq
            self._queues[backend].append(
                RepairEntry(op, sequence_id, points, seq)
            )
            return True

    # ------------------------------------------------------------------
    # Consuming
    # ------------------------------------------------------------------
    def peek(self, backend: int) -> RepairEntry | None:
        """The oldest queued entry for ``backend`` (without removing it)."""
        self._check_backend(backend)
        with self._lock:
            queue = self._queues[backend]
            return queue[0] if queue else None

    def ack(self, backend: int, entry: RepairEntry) -> None:
        """``entry`` was replayed (or dead-lettered): pop it, advance the
        cursor, and compact the log once every queue runs dry."""
        self._check_backend(backend)
        with self._lock:
            queue = self._queues[backend]
            if queue and queue[0] is entry:
                queue.pop(0)
            if self._wal is not None and entry.seq:
                self._cursors[backend] = max(
                    self._cursors[backend], entry.seq
                )
                self._save_state_locked()
                self._compact_locked()

    def _compact_locked(self) -> None:
        """Reset the log when nothing references it any more.

        The reset leaves a checkpoint marker, so journal seqs stay
        monotonic across compactions and cursors never have to rewind.
        """
        if self._wal is None or len(self._wal) == 0:
            return
        if self._resync or any(self._queues.values()):
            return
        self._wal.reset()

    # ------------------------------------------------------------------
    # Resync bookkeeping
    # ------------------------------------------------------------------
    def needs_resync(self, backend: int) -> bool:
        """Whether ``backend``'s queue overflowed and awaits a resync."""
        self._check_backend(backend)
        with self._lock:
            return backend in self._resync

    def resync_pending(self) -> list[int]:
        """Backends flagged for snapshot resync."""
        with self._lock:
            return sorted(self._resync)

    def mark_resynced(self, backend: int) -> None:
        """Clear ``backend``'s resync flag after a successful restore."""
        self._check_backend(backend)
        with self._lock:
            self._resync.discard(backend)
            if self._wal is not None:
                self._cursors[backend] = max(
                    self._cursors[backend], self._wal.last_seq
                )
            self._save_state_locked()
            self._compact_locked()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending(self) -> dict[int, int]:
        """Queued entries per backend (non-empty queues only)."""
        with self._lock:
            return {
                index: len(queue)
                for index, queue in self._queues.items()
                if queue
            }

    def describe(self) -> dict[str, Any]:
        """The journal block reported under the coordinator's stats."""
        with self._lock:
            return {
                "durable": self._wal is not None,
                "directory": (
                    None if self.directory is None else str(self.directory)
                ),
                "max_ops": self.max_ops,
                "pending": {
                    index: len(queue)
                    for index, queue in self._queues.items()
                    if queue
                },
                "resync_pending": sorted(self._resync),
                "journal_records": 0 if self._wal is None else len(self._wal),
                "journal_last_seq": (
                    0 if self._wal is None else self._wal.last_seq
                ),
            }

    def close(self) -> None:
        """Close the journal log's file handle (durable mode)."""
        with self._lock:
            if self._wal is not None:
                self._wal.close()
