"""Sharded, replicated cluster serving over :mod:`repro.service`.

This package scales the serving layer horizontally while keeping the
paper's correctness story intact.  A :class:`ClusterCoordinator` fronts N
backends — each a full :class:`~repro.service.engine.QueryEngine` stack
(snapshots, ε-cache, WAL) — and presents the same operations over the
union corpus:

* :mod:`repro.cluster.router` — deterministic hash placement: sequence id
  → shard (blake2b over a canonical encoding, stable across processes
  and Python versions) → R consecutive backends.
* :mod:`repro.cluster.merge` — exact scatter-gather merges.  Phase-2/3
  verdicts (Lemmas 1-3) are per-sequence, so a union of per-shard range
  results and a heap merge of per-shard top-k lists reproduce the
  single-node answer bit-for-bit — sharding never costs a false
  dismissal.
* :mod:`repro.cluster.health` — per-backend up/suspect/down tracking fed
  by request outcomes and ``/healthz`` probes (which also surface each
  backend's WAL-since-checkpoint durability lag).
* :mod:`repro.cluster.coordinator` — failover across replicas, hedged
  requests after a latency quantile, quorum writes with read-repair, and
  *typed* partial-result degradation: a whole shard going dark turns
  ``search`` results into ``complete=False`` + the missing shard list,
  never an untyped error, while ``knn`` fails closed by default.  WAL
  log-shipping followers can be registered for bounded-staleness reads
  (``max_lag_records``).
* :mod:`repro.cluster.repair` — the bounded, optionally crash-durable
  read-repair journal: missed writes are journaled per backend and
  replayed on recovery; queue overflow forces a full snapshot resync
  from a healthy peer instead of an unbounded replay.
* :mod:`repro.cluster.backends` — the transport-agnostic backend surface:
  :class:`~repro.service.client.ServiceClient` for real clusters,
  :class:`LocalBackend` (JSON-round-tripped in-process engines) for
  chaos and property tests.
* :mod:`repro.cluster.http` — the coordinator's HTTP endpoint, speaking
  the same wire dialect as ``repro serve`` so an unmodified
  ``ServiceClient`` can talk to a whole cluster.

Embedded use::

    from repro.cluster import ClusterCoordinator, LocalBackend

    cluster = ClusterCoordinator(
        [LocalBackend(engine) for engine in engines], replication=2
    )
    result = cluster.search(query_points, epsilon=0.5)
    if not result.complete:
        alert(result.missing_shards)

Served use::

    $ python -m repro cluster-serve --backend http://127.0.0.1:8001 \\
          --backend http://127.0.0.2:8002 --replication 2
"""

from repro.cluster.backends import Backend, LocalBackend
from repro.cluster.coordinator import (
    ClusterCoordinator,
    ClusterKnnResult,
    ClusterSearchResult,
    HedgePolicy,
)
from repro.cluster.health import BackendHealth, HealthTracker
from repro.cluster.http import ClusterServer, serve_cluster
from repro.cluster.merge import merge_knn, merge_search_payloads
from repro.cluster.repair import (
    DEFAULT_MAX_REPAIR_OPS,
    RepairEntry,
    RepairJournal,
)
from repro.cluster.router import Placement, ShardRouter, canonical_id, shard_of

__all__ = [
    "Backend",
    "BackendHealth",
    "ClusterCoordinator",
    "ClusterKnnResult",
    "ClusterSearchResult",
    "ClusterServer",
    "DEFAULT_MAX_REPAIR_OPS",
    "HealthTracker",
    "HedgePolicy",
    "LocalBackend",
    "Placement",
    "RepairEntry",
    "RepairJournal",
    "ShardRouter",
    "canonical_id",
    "merge_knn",
    "merge_search_payloads",
    "serve_cluster",
    "shard_of",
]
