"""Exact merging of per-shard results into one global answer.

Shards are disjoint subsets of the corpus and every verdict of the
paper's pipeline is per-sequence — a sequence passes Phase 2 (Dmbr within
ε, Lemma 1) and Phase 3 (Dnorm within ε, Lemmas 2-3) based only on its
own segments — so merging is set union for range search and a global
k-smallest selection for kNN.  Nothing here approximates: the merged
result of a complete scatter equals what a single node holding the union
corpus would return, which is what the parity tests assert.

Two subtleties, both handled here:

* **Ordering.**  A single node reports answers in corpus insertion
  order; shards only know their local order.  The coordinator therefore
  passes an ``order`` key (its global insertion-order map) so the merged
  lists come back in the exact order the single node would use.
* **Deduplication.**  A backend hosting several shards (the normal case
  under replication) answers a per-shard request from its *whole* local
  database, so the same sequence can appear in more than one shard's
  payload.  Merging dedups by canonical id.  This is why per-shard
  payloads are merged whole rather than filtered down to the shard's own
  ids: a backend's local top-k is exact over everything it hosts (any
  sequence beaten by k closer ones locally is beaten by k closer ones
  globally), whereas filtering could truncate a shard's true top-k away.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.cluster.router import canonical_id
from repro.util.freeze import deep_freeze, freeze_checks_enabled

__all__ = ["MergedSearch", "merge_knn", "merge_search_payloads"]


@dataclass(frozen=True)
class MergedSearch:
    """The union of per-shard range-search payloads."""

    answers: list = field(default_factory=list)
    candidates: list = field(default_factory=list)
    #: Solution intervals keyed by ``str(sequence_id)`` (transport form).
    intervals: dict = field(default_factory=dict)
    #: Aggregated per-shard search statistics.
    stats: dict = field(default_factory=dict)
    #: Snapshot version per responding shard.
    snapshot_versions: dict = field(default_factory=dict)


def merge_search_payloads(
    shard_payloads: dict[int, dict],
    *,
    order: Callable[[object], object],
) -> MergedSearch:
    """Union per-shard ``/search`` payloads into one global result.

    Parameters
    ----------
    shard_payloads:
        ``shard -> payload`` for every shard that responded, where each
        payload has the HTTP transport shape (``answers``, ``candidates``,
        optional ``intervals`` keyed by ``str(sequence_id)``, ``stats``).
    order:
        Sort key reproducing the single-node corpus order; applied to the
        merged ``answers`` and ``candidates`` lists.
    """
    if freeze_checks_enabled():
        # The per-shard payloads are shared with the read-repair and
        # degradation paths; the merge must never mutate them.  Under
        # checks, freeze the inputs so any such write raises here.
        shard_payloads = deep_freeze(
            dict(shard_payloads),
            role="cluster.merge",
            site="merge_search_payloads",
        )
    answers: list = []
    candidates: list = []
    intervals: dict = {}
    versions: dict = {}
    seen_answers: set[str] = set()
    seen_candidates: set[str] = set()
    totals = {"query_segments": 0, "node_accesses": 0, "dnorm_evaluations": 0}
    for shard in sorted(shard_payloads):
        payload = shard_payloads[shard]
        for sid in payload.get("answers", ()):
            key = canonical_id(sid)
            if key not in seen_answers:
                seen_answers.add(key)
                answers.append(sid)
        for sid in payload.get("candidates", ()):
            key = canonical_id(sid)
            if key not in seen_candidates:
                seen_candidates.add(key)
                candidates.append(sid)
        intervals.update(payload.get("intervals", {}))
        if "snapshot_version" in payload:
            versions[shard] = payload["snapshot_version"]
        stats = payload.get("stats", {})
        for key in totals:
            totals[key] += int(stats.get(key, 0))
        # Every shard partitions the query identically; the segment count
        # is a property of the query, not of the scatter width.
        if "query_segments" in stats:
            totals["query_segments"] = int(stats["query_segments"])
    answers.sort(key=order)
    candidates.sort(key=order)
    return MergedSearch(
        answers=answers,
        candidates=candidates,
        intervals=intervals,
        stats=totals,
        snapshot_versions=versions,
    )


def merge_knn(
    shard_neighbors: Iterable[list],
    k: int,
    *,
    order: Callable[[object], object],
) -> list[tuple[float, object]]:
    """The global ``k`` nearest among per-shard neighbor lists.

    Each responding backend contributes its local top-``k`` as
    ``(distance, sequence_id)`` pairs; the global answer is exactly the
    ``k`` smallest distances across them.  Exactness holds because every
    covered sequence appears in at least one contributing list's source:
    a globally top-``k`` sequence has fewer than ``k`` closer sequences
    anywhere, hence fewer than ``k`` closer ones on its own backend, so
    its backend's local top-``k`` includes it.  Sequences hosted by
    several queried backends appear in several lists at the same
    distance; the merge keeps each id once.  Ties on distance break by
    the ``order`` key, keeping the merged list deterministic regardless
    of shard count.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if freeze_checks_enabled():
        shard_neighbors = deep_freeze(
            [list(neighbors) for neighbors in shard_neighbors],
            role="cluster.merge",
            site="merge_knn",
        )
    merged = heapq.merge(
        *(
            sorted(
                ((float(distance), sid) for distance, sid in neighbors),
                key=lambda pair: (pair[0], order(pair[1])),
            )
            for neighbors in shard_neighbors
        ),
        key=lambda pair: (pair[0], order(pair[1])),
    )
    seen: set[str] = set()
    top: list[tuple[float, object]] = []
    for distance, sid in merged:
        key = canonical_id(sid)
        if key in seen:
            continue
        seen.add(key)
        top.append((distance, sid))
        if len(top) == k:
            break
    return top
