"""Per-backend health tracking for the cluster coordinator.

Every backend call feeds the tracker — successes clear failure streaks,
transport failures accumulate — and ``/healthz`` probe results enrich it
with what the backend says about itself (degraded mode, durability lag).
The coordinator consults :meth:`HealthTracker.usable` when ordering a
shard's replicas for a read and when deciding whether a write replica
needs the read-repair queue.

The state machine per backend mirrors a circuit breaker, with one
difference that matters for replica *selection*: asking "is this backend
usable?" must not mutate state (the coordinator ranks several replicas
per request), so probing is an explicit transition driven by
:meth:`probe_due` / :meth:`record_probe` rather than a side effect of the
availability check.

==========  =========================================================
state       meaning
==========  =========================================================
``up``      no recent failures; first choice for its shards
``suspect``  failing but under the threshold; still routable
``down``    failure streak hit ``failure_threshold``; skipped until
            ``probe_interval`` elapses, then eligible for one probe
==========  =========================================================
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.util.sync import TracedLock

__all__ = ["BackendHealth", "HealthTracker"]


class BackendHealth:
    """Mutable health record of one backend (guarded by the tracker lock)."""

    __slots__ = (
        "state",
        "consecutive_failures",
        "failures",
        "successes",
        "last_failure_at",
        "last_probe_at",
        "probe_info",
        "transitions",
    )

    def __init__(self) -> None:
        self.state = "up"
        self.consecutive_failures = 0
        self.failures = 0
        self.successes = 0
        self.last_failure_at = 0.0
        self.last_probe_at = 0.0
        self.probe_info: dict[str, Any] = {}
        self.transitions = 0

    def snapshot(self) -> dict:
        """A JSON-serialisable copy for stats endpoints."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failures": self.failures,
            "successes": self.successes,
            "transitions": self.transitions,
            "probe": dict(self.probe_info),
        }


class HealthTracker:
    """Thread-safe up/suspect/down tracking for a fixed set of backends.

    Parameters
    ----------
    num_backends:
        Backends tracked, indexed ``0 .. num_backends - 1``.
    failure_threshold:
        Consecutive failures that mark a backend ``down``.
    probe_interval:
        Seconds a ``down`` backend waits before a probe may try it again.
    clock:
        Monotonic time source — injectable for deterministic tests.
    """

    def __init__(
        self,
        num_backends: int,
        *,
        failure_threshold: int = 3,
        probe_interval: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if num_backends < 1:
            raise ValueError(f"num_backends must be >= 1, got {num_backends}")
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if probe_interval < 0:
            raise ValueError(
                f"probe_interval must be >= 0, got {probe_interval}"
            )
        self.num_backends = num_backends
        self.failure_threshold = failure_threshold
        self.probe_interval = probe_interval
        self._clock = clock
        self._lock = TracedLock("health.tracker")
        self._backends = [BackendHealth() for _ in range(num_backends)]
        #: Backends whose down -> up transition has not been consumed yet
        #: (drives the coordinator's read-repair replay).
        self._recovered: set[int] = set()

    def _check_index(self, backend: int) -> BackendHealth:
        if not 0 <= backend < self.num_backends:
            raise ValueError(
                f"backend must be in [0, {self.num_backends}), got {backend}"
            )
        return self._backends[backend]

    # ------------------------------------------------------------------
    # Outcome feeds
    # ------------------------------------------------------------------
    def record_success(self, backend: int) -> bool:
        """A request to ``backend`` succeeded; returns True on down -> up."""
        record = self._check_index(backend)
        with self._lock:
            was_down = record.state == "down"
            record.successes += 1
            record.consecutive_failures = 0
            if record.state != "up":
                record.state = "up"
                record.transitions += 1
            if was_down:
                self._recovered.add(backend)
            return was_down

    def record_failure(self, backend: int) -> bool:
        """A request to ``backend`` failed; returns True if it went down."""
        record = self._check_index(backend)
        with self._lock:
            record.failures += 1
            record.consecutive_failures += 1
            record.last_failure_at = self._clock()
            if (
                record.state != "down"
                and record.consecutive_failures >= self.failure_threshold
            ):
                record.state = "down"
                record.transitions += 1
                return True
            if record.state == "up":
                record.state = "suspect"
                record.transitions += 1
            return False

    def record_probe(self, backend: int, info: dict | None) -> bool:
        """Store a ``/healthz`` probe outcome (``None`` = probe failed).

        Returns ``True`` when the probe brought a down backend back up.
        """
        record = self._check_index(backend)
        if info is None:
            self.record_failure(backend)
            with self._lock:
                record.last_probe_at = self._clock()
            return False
        came_back = self.record_success(backend)
        with self._lock:
            record.last_probe_at = self._clock()
            record.probe_info = {
                key: info[key]
                for key in (
                    "status",
                    "degraded",
                    "sequences",
                    "snapshot_version",
                    "wal_records",
                    "last_checkpoint_version",
                    "replication",
                )
                if key in info
            }
        return came_back

    # ------------------------------------------------------------------
    # Queries (never mutate state)
    # ------------------------------------------------------------------
    def state(self, backend: int) -> str:
        """``up``, ``suspect`` or ``down``."""
        record = self._check_index(backend)
        with self._lock:
            return record.state

    def usable(self, backend: int) -> bool:
        """Whether the coordinator should route requests to ``backend``."""
        record = self._check_index(backend)
        with self._lock:
            return record.state != "down"

    def probe_due(self, backend: int) -> bool:
        """Whether a ``down`` backend is eligible for a recovery probe."""
        record = self._check_index(backend)
        with self._lock:
            if record.state != "down":
                return False
            reference = max(record.last_failure_at, record.last_probe_at)
            return self._clock() - reference >= self.probe_interval

    def down_backends(self) -> list[int]:
        """Indices currently marked ``down``."""
        with self._lock:
            return [
                index
                for index, record in enumerate(self._backends)
                if record.state == "down"
            ]

    def take_recovered(self) -> list[int]:
        """Backends that came back up since the last call (consumes them)."""
        with self._lock:
            recovered = sorted(self._recovered)
            self._recovered.clear()
            return recovered

    def snapshot(self) -> list[dict]:
        """Per-backend health blocks for stats endpoints."""
        with self._lock:
            return [record.snapshot() for record in self._backends]
