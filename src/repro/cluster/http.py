"""The coordinator's HTTP/JSON endpoint — same dialect as ``repro serve``.

A :class:`ClusterServer` speaks the exact wire protocol of a single
backend (:mod:`repro.service.http`), so an unmodified
:class:`~repro.service.client.ServiceClient` pointed at a coordinator
works verbatim — including typed error rebuilding: a shard with no live
replica surfaces as a 503 whose body names ``ShardUnavailable`` and the
missing shard list, and a failed write quorum as ``WriteQuorumFailed``.

Differences from a single backend, all additive:

* ``/search`` bodies accept ``fail_closed`` and responses carry
  ``complete`` + ``missing_shards`` (the partial-result contract).
* ``/knn`` responses carry the same two fields; by default a missing
  shard raises (fail-closed) rather than degrading.
* ``/probe`` (POST) runs one health sweep over the backends and returns
  per-backend outcomes — ``repro cluster-serve`` hits it on a timer.
* ``/healthz`` reports cluster liveness (``ok`` / ``degraded`` /
  ``partial``) instead of engine internals.
"""

from __future__ import annotations

from typing import cast

from repro.cluster.coordinator import ClusterCoordinator
from repro.service.http import (
    DrainingHTTPServer,
    JsonRequestHandler,
    read_points,
    required_field,
)
from repro.util.validation import check_threshold

__all__ = ["ClusterHandler", "ClusterServer", "serve_cluster"]


class ClusterHandler(JsonRequestHandler):
    """Dispatches the cluster route table against ``self.server.coordinator``."""

    server_version = "repro-cluster/1.0"

    get_routes = {"/healthz": "_healthz", "/stats": "_stats"}
    post_routes = {
        "/search": "_search",
        "/knn": "_knn",
        "/insert": "_insert",
        "/append": "_append",
        "/remove": "_remove",
        "/probe": "_probe",
    }

    @property
    def coordinator(self) -> ClusterCoordinator:
        """The coordinator owned by the enclosing :class:`ClusterServer`."""
        return cast("ClusterServer", self.server).coordinator

    # ------------------------------------------------------------------
    # Route bodies
    # ------------------------------------------------------------------
    def _healthz(self, body: dict) -> dict:
        return self.coordinator.healthz()

    def _stats(self, body: dict) -> dict:
        return self.coordinator.stats()

    def _probe(self, body: dict) -> dict:
        outcomes = self.coordinator.probe()
        return {
            "probed": len(outcomes),
            "reachable": sorted(i for i, ok in outcomes.items() if ok),
            "unreachable": sorted(i for i, ok in outcomes.items() if not ok),
        }

    def _search(self, body: dict) -> dict:
        epsilon = check_threshold(float(required_field(body, "epsilon")))
        find_intervals = bool(body.get("find_intervals", True))
        timeout = body.get("timeout")
        result = self.coordinator.search(
            read_points(body),
            epsilon,
            find_intervals=find_intervals,
            timeout=None if timeout is None else float(timeout),
            fail_closed=bool(body.get("fail_closed", False)),
        )
        payload = {
            "answers": result.answers,
            "candidates": result.candidates,
            "complete": result.complete,
            "missing_shards": list(result.missing_shards),
            "stats": result.stats,
            "snapshot_versions": result.snapshot_versions,
        }
        if find_intervals:
            payload["intervals"] = result.intervals
        return payload

    def _knn(self, body: dict) -> dict:
        timeout = body.get("timeout")
        result = self.coordinator.knn(
            read_points(body),
            int(required_field(body, "k")),
            timeout=None if timeout is None else float(timeout),
            fail_closed=bool(body.get("fail_closed", True)),
        )
        return {
            "neighbors": [
                {"distance": distance, "sequence_id": sid}
                for distance, sid in result.neighbors
            ],
            "complete": result.complete,
            "missing_shards": list(result.missing_shards),
        }

    def _insert(self, body: dict) -> dict:
        sequence_id = self.coordinator.insert(
            read_points(body), sequence_id=body.get("sequence_id")
        )
        return {
            "sequence_id": sequence_id,
            "shard": self.coordinator.router.shard_of(sequence_id),
        }

    def _append(self, body: dict) -> dict:
        sequence_id = required_field(body, "sequence_id")
        self.coordinator.append(sequence_id, read_points(body))
        return {
            "sequence_id": sequence_id,
            "shard": self.coordinator.router.shard_of(sequence_id),
        }

    def _remove(self, body: dict) -> dict:
        sequence_id = required_field(body, "sequence_id")
        self.coordinator.remove(sequence_id)
        return {
            "sequence_id": sequence_id,
            "shard": self.coordinator.router.shard_of(sequence_id),
        }


class ClusterServer(DrainingHTTPServer):
    """A threading HTTP server bound to one :class:`ClusterCoordinator`.

    Like :class:`~repro.service.http.ServiceServer`, the server does not
    own its coordinator's lifecycle (nor the backends behind it); callers
    drain the server first, then close the coordinator.
    """

    def __init__(
        self,
        address: tuple[str, int],
        coordinator: ClusterCoordinator,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, ClusterHandler, verbose=verbose)
        self.coordinator = coordinator


def serve_cluster(
    coordinator: ClusterCoordinator,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ClusterServer:
    """Bind a :class:`ClusterServer` (``port=0`` picks a free port).

    Returns the bound server without starting its accept loop — call
    ``serve_forever()`` on a thread, or use ``repro cluster-serve`` which
    adds the probe timer and signal-driven graceful drain.
    """
    return ClusterServer((host, port), coordinator, verbose=verbose)
