"""Deterministic shard placement: which backends own which sequences.

The paper's search decomposes over disjoint subsets of the corpus — every
phase (MCOST partitioning, the Dmbr index probe, the Dnorm refinement) is
per-sequence, so a sequence's verdict is the same whichever node stores
it.  That makes placement a pure function: hash the sequence id onto one
of ``num_shards`` shards, and map each shard onto ``replication``
backends.  No placement table has to be replicated or repaired; any
coordinator (or operator, via ``repro cluster-route``) can recompute where
a sequence lives from the id alone.

Two properties matter and are tested:

* **Stability.**  The hash is :func:`hashlib.blake2b` over a canonical
  ``type:value`` encoding of the id — never Python's ``hash()``, whose
  per-process randomisation (``PYTHONHASHSEED``) would scatter a corpus
  differently on every boot.  Only ``str`` and ``int`` ids are routable,
  mirroring the write-ahead log's durable-id restriction (the cluster and
  the WAL must agree on which ids can survive a process boundary).
* **Distinct replicas.**  A shard's ``replication`` backends are distinct
  (consecutive indices modulo the backend count), so losing one node
  never takes out two replicas of the same shard.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["Placement", "ShardRouter", "canonical_id", "shard_of"]


def canonical_id(sequence_id: object) -> str:
    """A process-stable ``type:value`` encoding of a routable sequence id.

    Distinguishes ``1`` from ``"1"`` (they are different database keys)
    while staying identical across processes and JSON round trips.
    """
    if isinstance(sequence_id, bool) or not isinstance(sequence_id, (str, int)):
        raise TypeError(
            "only str/int sequence ids are routable across the cluster, "
            f"got {type(sequence_id).__name__}"
        )
    kind = "int" if isinstance(sequence_id, int) else "str"
    return f"{kind}:{sequence_id}"


def shard_of(sequence_id: object, num_shards: int) -> int:
    """The shard owning ``sequence_id`` (stable blake2b placement)."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    digest = hashlib.blake2b(
        canonical_id(sequence_id).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") % num_shards


@dataclass(frozen=True)
class Placement:
    """Where one sequence lives: its shard and the shard's replicas."""

    sequence_id: object
    shard: int
    #: Backend indices holding a replica of the shard, primary first.
    replicas: tuple[int, ...]


class ShardRouter:
    """Pure-function placement of sequences onto replicated backends.

    Parameters
    ----------
    num_backends:
        Backends in the cluster (indices ``0 .. num_backends - 1``).
    num_shards:
        Disjoint corpus subsets; defaults to ``num_backends``.  More
        shards than backends gives finer failover granularity.
    replication:
        Replicas per shard; must not exceed ``num_backends`` (replicas
        are distinct backends).

    Examples
    --------
    >>> router = ShardRouter(num_backends=3, replication=2)
    >>> placement = router.placement("clip-7")
    >>> len(set(placement.replicas))
    2
    """

    def __init__(
        self,
        *,
        num_backends: int,
        num_shards: int | None = None,
        replication: int = 1,
    ) -> None:
        if num_backends < 1:
            raise ValueError(f"num_backends must be >= 1, got {num_backends}")
        if num_shards is None:
            num_shards = num_backends
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if not 1 <= replication <= num_backends:
            raise ValueError(
                f"replication must be in [1, {num_backends}] "
                f"(the backend count), got {replication}"
            )
        self.num_backends = num_backends
        self.num_shards = num_shards
        self.replication = replication

    def shard_of(self, sequence_id: object) -> int:
        """The shard owning ``sequence_id``."""
        return shard_of(sequence_id, self.num_shards)

    def replicas_of(self, shard: int) -> tuple[int, ...]:
        """The distinct backends holding ``shard``, primary first."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard must be in [0, {self.num_shards}), got {shard}"
            )
        return tuple(
            (shard + offset) % self.num_backends
            for offset in range(self.replication)
        )

    def placement(self, sequence_id: object) -> Placement:
        """Shard and replica set of one sequence id."""
        shard = self.shard_of(sequence_id)
        return Placement(
            sequence_id=sequence_id,
            shard=shard,
            replicas=self.replicas_of(shard),
        )

    def shards_of_backend(self, backend: int) -> tuple[int, ...]:
        """Every shard that places a replica on ``backend``."""
        if not 0 <= backend < self.num_backends:
            raise ValueError(
                f"backend must be in [0, {self.num_backends}), got {backend}"
            )
        return tuple(
            shard
            for shard in range(self.num_shards)
            if backend in self.replicas_of(shard)
        )

    def describe(self) -> dict:
        """The routing configuration as a JSON-serialisable block."""
        return {
            "backends": self.num_backends,
            "shards": self.num_shards,
            "replication": self.replication,
        }
