"""Synthetic sequences via recursive midpoint displacement (Section 4.1).

The paper generates its synthetic corpus with "a Fractal function":

1. two random endpoints ``Pstart``, ``Pend`` are drawn in the unit cube;
2. the midpoint is displaced: ``Pmid = (Pstart + Pend) / 2 + dev * random()``;
3. both halves recurse with ``dev = scale * dev`` (``scale`` in ``[0, 1)``),
   "since the lengths of the two subsequences are shorter than their parent".

This module reproduces that construction over an index grid of the desired
length.  One refinement: the displacement is drawn symmetrically in
``[-dev, +dev]`` per dimension rather than the paper's literal one-sided
``dev * random()`` — the one-sided form drifts every sequence towards the
cube's upper corner, which is clearly an artefact of the paper's pseudo-code
shorthand, not an intent (its own Figure 4 shows no such drift).  Points are
clipped to the unit cube.
"""

from __future__ import annotations

import numpy as np

from repro.core.sequence import MultidimensionalSequence
from repro.util.rng import SeedLike, ensure_rng, spawn_rngs

__all__ = ["generate_fractal_corpus", "generate_fractal_sequence"]


def generate_fractal_sequence(
    length: int,
    dimension: int = 3,
    *,
    dev: float = 0.25,
    scale: float = 0.5,
    region_extent: float | None = None,
    seed: SeedLike = None,
    sequence_id: object = None,
) -> MultidimensionalSequence:
    """One fractal sequence of exactly ``length`` points in ``[0,1]^n``.

    Parameters
    ----------
    length:
        Number of points (>= 1).
    dimension:
        Point dimensionality (the paper uses 3).
    dev:
        Initial displacement amplitude, "selected to control the amplitude
        of a sequence in the range [0,1)".
    scale:
        Per-level decay of ``dev``, in ``[0, 1)``.
    region_extent:
        When given (in ``(0, 1]``), the finished trail is affinely mapped
        into a randomly placed sub-cube with this side length.  Real
        sequence corpora (stock charts, colour trails of a video) occupy a
        limited region of the normalised space rather than spanning the
        whole cube; the paper's ``dev`` knob "controls the amplitude" to
        the same end.  ``None`` keeps the paper-literal construction with
        uniformly random endpoints.
    seed:
        Anything accepted by :func:`repro.util.rng.ensure_rng`.
    sequence_id:
        Optional id stamped on the result.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
    if not 0.0 <= dev < 1.0:
        raise ValueError(f"dev must be in [0, 1), got {dev}")
    if not 0.0 <= scale < 1.0:
        raise ValueError(f"scale must be in [0, 1), got {scale}")
    if region_extent is not None and not 0.0 < region_extent <= 1.0:
        raise ValueError(
            f"region_extent must be in (0, 1], got {region_extent}"
        )
    rng = ensure_rng(seed)

    points = np.empty((length, dimension))
    points[0] = rng.random(dimension)
    if length == 1:
        return MultidimensionalSequence(points, sequence_id=sequence_id)
    points[-1] = rng.random(dimension)

    # Iterative bisection over index segments; each half inherits dev*scale.
    stack = [(0, length - 1, dev)]
    while stack:
        lo, hi, amplitude = stack.pop()
        if hi - lo <= 1:
            continue
        mid = (lo + hi) // 2
        displacement = amplitude * (2.0 * rng.random(dimension) - 1.0)
        points[mid] = (points[lo] + points[hi]) / 2.0 + displacement
        child_dev = amplitude * scale
        stack.append((lo, mid, child_dev))
        stack.append((mid, hi, child_dev))

    np.clip(points, 0.0, 1.0, out=points)
    if region_extent is not None:
        points = _map_into_region(points, region_extent, rng)
    return MultidimensionalSequence(points, sequence_id=sequence_id)


def _map_into_region(
    points: np.ndarray, extent: float, rng: np.random.Generator
) -> np.ndarray:
    """Affinely squeeze a trail into a random sub-cube of side ``extent``."""
    low = points.min(axis=0)
    span = np.maximum(points.max(axis=0) - low, 1e-12)
    origin = rng.random(points.shape[1]) * (1.0 - extent)
    return np.clip((points - low) / span * extent + origin, 0.0, 1.0)


def generate_fractal_corpus(
    count: int,
    *,
    dimension: int = 3,
    length_range: tuple[int, int] = (56, 512),
    dev: float = 0.25,
    scale: float = 0.5,
    extent_range: tuple[float, float] | None = (0.1, 0.35),
    seed: SeedLike = None,
    id_prefix: str = "fractal",
) -> list[MultidimensionalSequence]:
    """A corpus of fractal sequences with the paper's arbitrary lengths.

    Table 2 uses 1600 sequences with lengths 56-512; the defaults mirror
    that (pass ``count=1600`` for the paper-scale corpus).

    Parameters
    ----------
    count:
        Number of sequences.
    length_range:
        Inclusive ``(min, max)`` length bounds; each sequence draws its
        length uniformly.
    extent_range:
        Per-sequence bounds of the random ``region_extent`` (see
        :func:`generate_fractal_sequence`).  The default keeps each trail
        inside a sub-cube of side 0.10-0.35 — calibrated so the corpus
        reproduces the pruning-rate bands of the paper's Figure 6; pass
        ``None`` for the paper-literal full-cube construction.
    id_prefix:
        Ids are ``f"{id_prefix}-{i}"``.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    lo, hi = length_range
    if not 1 <= lo <= hi:
        raise ValueError(f"invalid length_range {length_range}")
    master = ensure_rng(seed)
    lengths = master.integers(lo, hi + 1, size=count)
    if extent_range is not None:
        extent_lo, extent_hi = extent_range
        if not 0.0 < extent_lo <= extent_hi <= 1.0:
            raise ValueError(f"invalid extent_range {extent_range}")
        extents = master.uniform(extent_lo, extent_hi, size=count)
    else:
        extents = [None] * count
    rngs = spawn_rngs(master, count)
    return [
        generate_fractal_sequence(
            int(lengths[i]),
            dimension,
            dev=dev,
            scale=scale,
            region_extent=None if extents[i] is None else float(extents[i]),
            seed=rngs[i],
            sequence_id=f"{id_prefix}-{i}",
        )
        for i in range(count)
    ]
