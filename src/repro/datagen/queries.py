"""Query workloads for the range-search experiments (Section 4.2).

The paper states only that "we have issued randomly selected 20 queries and
taken the average of query results" per threshold.  The standard protocol
(used by FRM'94 and followers, and the only one that gives every threshold
a non-trivial relevant set) is to cut queries out of the corpus itself and
optionally perturb them; this module implements it reproducibly:

* pick a source sequence uniformly at random;
* cut a random-length, random-offset subsequence;
* add bounded Gaussian noise (clipped back into the unit cube).

``noise=0`` gives exact-subsequence queries (the hardest case for
*pruning*, the easiest for *recall*); the default small noise matches the
"similar but not identical" queries a user would issue.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.sequence import MultidimensionalSequence
from repro.util.rng import SeedLike, ensure_rng

__all__ = ["QueryWorkload", "generate_queries"]


@dataclass(frozen=True)
class QueryWorkload:
    """A reproducible batch of queries plus their provenance.

    Attributes
    ----------
    queries:
        The query sequences.
    sources:
        For query ``i``: ``(source_sequence_id, start_offset, length)``.
    noise:
        The noise level the workload was generated with.
    """

    queries: list[MultidimensionalSequence]
    sources: list[tuple[object, int, int]]
    noise: float

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[MultidimensionalSequence]:
        return iter(self.queries)

    def __getitem__(self, index: int) -> MultidimensionalSequence:
        return self.queries[index]


def generate_queries(
    corpus: "Mapping[object, MultidimensionalSequence] | Sequence[MultidimensionalSequence]",
    count: int,
    *,
    length_range: tuple[int, int] = (32, 128),
    noise: float = 0.01,
    seed: SeedLike = None,
) -> QueryWorkload:
    """Cut ``count`` perturbed subsequence queries out of a corpus.

    Parameters
    ----------
    corpus:
        A list of sequences or a mapping ``id -> sequence``.
    count:
        Number of queries (the paper uses 20 per threshold).
    length_range:
        Inclusive query-length bounds; lengths are clamped to each source
        sequence's own length.
    noise:
        Standard deviation of the Gaussian perturbation (0 disables).
    seed:
        Anything accepted by :func:`repro.util.rng.ensure_rng`.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    lo, hi = length_range
    if not 1 <= lo <= hi:
        raise ValueError(f"invalid length_range {length_range}")
    if noise < 0:
        raise ValueError(f"noise must be >= 0, got {noise}")

    if hasattr(corpus, "items"):
        items = list(corpus.items())
    else:
        items = [
            (getattr(seq, "sequence_id", None) or index, seq)
            for index, seq in enumerate(corpus)
        ]
    if not items:
        raise ValueError("the corpus must contain at least one sequence")

    rng = ensure_rng(seed)
    queries: list[MultidimensionalSequence] = []
    sources: list[tuple[object, int, int]] = []
    for ordinal in range(count):
        source_id, source = items[int(rng.integers(0, len(items)))]
        if not isinstance(source, MultidimensionalSequence):
            source = MultidimensionalSequence(source)
        length = int(rng.integers(lo, hi + 1))
        length = min(length, len(source))
        start = int(rng.integers(0, len(source) - length + 1))
        block = source.points[start : start + length].copy()
        if noise > 0:
            block += rng.normal(0.0, noise, block.shape)
            np.clip(block, 0.0, 1.0, out=block)
        queries.append(
            MultidimensionalSequence(block, sequence_id=f"query-{ordinal}")
        )
        sources.append((source_id, start, length))
    return QueryWorkload(queries=queries, sources=sources, noise=noise)
