"""One-dimensional time-series generators (the paper's §1 special case).

The paper motivates its model with classic time-series workloads — "prices
of stocks or commercial goods, weather patterns, sales indicators" — and
formulates them as the ``n = 1`` special case of a multidimensional data
sequence.  These generators back the 1-d examples and the DFT / ST-index
baselines:

* :func:`generate_random_walk` — a clipped Gaussian random walk.
* :func:`generate_stock_series` — a geometric random walk with drift
  (stock-price-like), min-max normalised into the unit interval.
* :func:`generate_seasonal_series` — trend + seasonal cycle + noise
  (sales/weather-like).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import SeedLike, ensure_rng

__all__ = [
    "generate_random_walk",
    "generate_seasonal_series",
    "generate_stock_series",
    "to_unit_interval",
]


def to_unit_interval(values: np.ndarray) -> np.ndarray:
    """Min-max normalise a series into ``[0, 1]`` (constant series -> 0.5)."""
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    lo = values.min()
    hi = values.max()
    if hi == lo:
        return np.full_like(values, 0.5)
    return (values - lo) / (hi - lo)


def generate_random_walk(
    length: int,
    *,
    step: float = 0.02,
    start: float = 0.5,
    seed: SeedLike = None,
) -> np.ndarray:
    """A Gaussian random walk clipped to ``[0, 1]``.

    Parameters
    ----------
    length:
        Number of samples (>= 1).
    step:
        Standard deviation of each increment.
    start:
        Starting value in ``[0, 1]``.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    if step < 0:
        raise ValueError(f"step must be >= 0, got {step}")
    if not 0.0 <= start <= 1.0:
        raise ValueError(f"start must be in [0, 1], got {start}")
    rng = ensure_rng(seed)
    increments = rng.normal(0.0, step, length)
    increments[0] = 0.0
    walk = start + np.cumsum(increments)
    return np.clip(walk, 0.0, 1.0)


def generate_stock_series(
    length: int,
    *,
    drift: float = 0.0002,
    volatility: float = 0.015,
    seed: SeedLike = None,
) -> np.ndarray:
    """A geometric random walk, min-max normalised into ``[0, 1]``.

    Mimics daily close prices: log returns are
    ``Normal(drift, volatility)``.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    if volatility < 0:
        raise ValueError(f"volatility must be >= 0, got {volatility}")
    rng = ensure_rng(seed)
    log_returns = rng.normal(drift, volatility, length)
    log_returns[0] = 0.0
    prices = np.exp(np.cumsum(log_returns))
    return to_unit_interval(prices)


def generate_seasonal_series(
    length: int,
    *,
    period: int = 28,
    trend: float = 0.2,
    amplitude: float = 0.25,
    noise: float = 0.02,
    seed: SeedLike = None,
) -> np.ndarray:
    """Trend + sinusoidal season + Gaussian noise, normalised to ``[0, 1]``.

    Parameters
    ----------
    length:
        Number of samples (>= 1).
    period:
        Season length in samples.
    trend:
        Total linear rise over the series (before normalisation).
    amplitude:
        Seasonal amplitude (before normalisation).
    noise:
        Standard deviation of the additive noise.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    rng = ensure_rng(seed)
    t = np.arange(length, dtype=np.float64)
    values = (
        trend * t / max(1, length - 1)
        + amplitude * np.sin(2.0 * np.pi * t / period)
        + rng.normal(0.0, noise, length)
    )
    return to_unit_interval(values)
