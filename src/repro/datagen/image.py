"""Images as region sequences along a space-filling curve (Section 1).

The paper's second modelling example: "An image is segmented to a number of
regions that can be ordered appropriately, based on space filling curves
such as the Z-curve, gray coding, or the Hilbert curve.  This ordering
forms a series of regions, each of which is represented by a vector of
multiple feature values of a region."

This module synthesises such data end to end:

1. a synthetic "image" is painted as a smooth colour field plus a few
   Gaussian colour blobs on a ``2**order`` x ``2**order`` region grid;
2. each region's feature vector is its colour (already region-averaged);
3. regions are linearised along the Hilbert or Z-order curve into a
   :class:`~repro.core.sequence.MultidimensionalSequence`.

Because space-filling curves preserve locality, neighbouring sequence
elements come from neighbouring regions — the clustering the MBR
partitioning exploits, exactly as with video shots.
"""

from __future__ import annotations

import numpy as np

from repro.core.sequence import MultidimensionalSequence
from repro.util.hilbert import curve_ordering
from repro.util.rng import SeedLike, ensure_rng, spawn_rngs

__all__ = ["generate_image_grid", "generate_image_sequence", "generate_image_corpus"]


def generate_image_grid(
    order: int,
    *,
    channels: int = 3,
    n_blobs: int = 4,
    blob_radius: float = 0.2,
    seed: SeedLike = None,
) -> np.ndarray:
    """A synthetic region-feature grid of shape ``(side, side, channels)``.

    The background is a smooth linear colour gradient; ``n_blobs`` Gaussian
    colour blobs of relative radius ``blob_radius`` are blended on top.
    Values lie in ``[0, 1]``.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if channels < 1:
        raise ValueError(f"channels must be >= 1, got {channels}")
    if n_blobs < 0:
        raise ValueError(f"n_blobs must be >= 0, got {n_blobs}")
    if blob_radius <= 0:
        raise ValueError(f"blob_radius must be > 0, got {blob_radius}")
    rng = ensure_rng(seed)
    side = 1 << order

    ys, xs = np.mgrid[0:side, 0:side] / max(1, side - 1)
    corner_a = rng.random(channels)
    corner_b = rng.random(channels)
    corner_c = rng.random(channels)
    # A bilinear colour field between three random corner colours: each
    # image gets its own palette, so different images are distinguishable.
    grid = (
        xs[..., None] * corner_a[None, None, :]
        + ((1 - xs) * (1 - ys))[..., None] * corner_b[None, None, :]
        + ((1 - xs) * ys)[..., None] * corner_c[None, None, :]
    )

    for _ in range(n_blobs):
        centre = rng.random(2)
        colour = rng.random(channels)
        spread = blob_radius * (0.5 + rng.random())
        weight = np.exp(
            -(((xs - centre[0]) ** 2 + (ys - centre[1]) ** 2))
            / (2.0 * spread**2)
        )
        grid = (1 - weight[..., None]) * grid + weight[..., None] * colour
    return np.clip(grid, 0.0, 1.0)


def generate_image_sequence(
    order: int,
    *,
    channels: int = 3,
    n_blobs: int = 4,
    curve: str = "hilbert",
    seed: SeedLike = None,
    sequence_id: object = None,
) -> MultidimensionalSequence:
    """A synthetic image linearised into a region sequence.

    Parameters
    ----------
    order:
        Region-grid order; the sequence has ``4**order`` elements.
    curve:
        ``"hilbert"`` (default) or ``"zorder"``.
    """
    grid = generate_image_grid(
        order, channels=channels, n_blobs=n_blobs, seed=seed
    )
    coords = curve_ordering(order, curve)
    points = grid[coords[:, 1], coords[:, 0], :]
    return MultidimensionalSequence(points, sequence_id=sequence_id)


def generate_image_corpus(
    count: int,
    *,
    order: int = 4,
    channels: int = 3,
    n_blobs: int = 4,
    curve: str = "hilbert",
    seed: SeedLike = None,
    id_prefix: str = "image",
) -> list[MultidimensionalSequence]:
    """A corpus of image-region sequences (each ``4**order`` regions long)."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rngs = spawn_rngs(seed, count)
    return [
        generate_image_sequence(
            order,
            channels=channels,
            n_blobs=n_blobs,
            curve=curve,
            seed=rngs[i],
            sequence_id=f"{id_prefix}-{i}",
        )
        for i in range(count)
    ]
