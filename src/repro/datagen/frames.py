"""Synthetic *raw* video frames — the input side of §3.4.1's pre-processing.

:mod:`repro.datagen.video` synthesises feature trails directly; this module
goes one level deeper and renders actual (tiny) frame images with the same
shot structure, so the full paper pipeline — raw frames → feature
extraction → dimensionality reduction → partitioning → index — can be
exercised end to end (see ``examples/raw_video_pipeline.py``).

A frame is a ``(height, width, 3)`` float image in ``[0, 1]``: a base
colour per shot, a moving bright blob (the "subject"), and pixel noise.
Frames inside one shot share the base colour, so their extracted features
cluster exactly as real within-shot frames do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import SeedLike, ensure_rng

__all__ = ["FrameConfig", "generate_frame_clip"]


@dataclass(frozen=True)
class FrameConfig:
    """Rendering knobs for the synthetic raw-frame generator."""

    height: int = 16
    width: int = 16
    shot_length_range: tuple[int, int] = (12, 48)
    pixel_noise: float = 0.02
    subject_radius: float = 0.25

    def validate(self) -> None:
        if self.height < 2 or self.width < 2:
            raise ValueError("frames must be at least 2x2 pixels")
        lo, hi = self.shot_length_range
        if not 1 <= lo <= hi:
            raise ValueError(
                f"invalid shot_length_range {self.shot_length_range}"
            )
        if self.pixel_noise < 0:
            raise ValueError("pixel_noise must be >= 0")
        if self.subject_radius <= 0:
            raise ValueError("subject_radius must be > 0")


def generate_frame_clip(
    n_frames: int, config: FrameConfig | None = None, *, seed: SeedLike = None
) -> np.ndarray:
    """Render ``n_frames`` raw frames with shot structure.

    Returns
    -------
    numpy.ndarray
        Shape ``(n_frames, height, width, 3)``, values in ``[0, 1]``.
    """
    if n_frames < 1:
        raise ValueError(f"n_frames must be >= 1, got {n_frames}")
    config = config or FrameConfig()
    config.validate()
    rng = ensure_rng(seed)

    ys, xs = np.mgrid[0 : config.height, 0 : config.width]
    ys = ys / max(1, config.height - 1)
    xs = xs / max(1, config.width - 1)

    frames = np.empty((n_frames, config.height, config.width, 3))
    produced = 0
    while produced < n_frames:
        shot_length = int(
            rng.integers(
                config.shot_length_range[0], config.shot_length_range[1] + 1
            )
        )
        shot_length = min(shot_length, n_frames - produced)
        base = rng.random(3) * 0.7
        subject = rng.random(3)
        centre = rng.random(2)
        velocity = rng.normal(0.0, 0.02, 2)
        for offset in range(shot_length):
            centre = (centre + velocity) % 1.0
            weight = np.exp(
                -(((xs - centre[0]) ** 2 + (ys - centre[1]) ** 2))
                / (2.0 * config.subject_radius**2)
            )
            frame = (
                (1 - weight[..., None]) * base
                + weight[..., None] * subject
                + rng.normal(0.0, config.pixel_noise, (config.height, config.width, 3))
            )
            frames[produced + offset] = frame
        produced += shot_length
    return np.clip(frames, 0.0, 1.0)
