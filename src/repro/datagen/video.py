"""Simulated video streams — the substitute for the paper's real video data.

The paper's real corpus is "a collection of TV news, dramas, and
documentary films": each frame's colour features become a 3-d point in the
unit cube, and the decisive property the evaluation leans on is that "the
frames in the same shot of a video stream have very similar feature values"
— video trails are *well clustered* compared to fractal data (Figures 4-5,
discussion in §4.2.2), which is why its pruning rates are higher.

Without the original tapes, this module synthesises streams with exactly
that structure:

* a stream is a series of **shots** of random length;
* each shot has a random centroid; frames jitter tightly around it while
  the centroid **drifts** slowly (camera/lighting motion);
* shot boundaries are **hard cuts** (jump to a fresh centroid) or, with
  some probability, **gradual transitions** (fade: linear interpolation
  between the adjacent shot centroids — the classic dissolve).

The generator exposes every knob through :class:`VideoConfig`, and the
corpus helper mirrors Table 2 (1408 streams of 56-512 frames).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sequence import MultidimensionalSequence
from repro.util.rng import SeedLike, ensure_rng, spawn_rngs

__all__ = ["VideoConfig", "generate_video_corpus", "generate_video_sequence"]


@dataclass(frozen=True)
class VideoConfig:
    """Knobs of the shot-structured stream generator.

    Attributes
    ----------
    dimension:
        Feature dimensionality per frame (paper: 3, e.g. mean RGB).
    shot_length_range:
        Inclusive bounds of a shot's frame count.
    jitter:
        Standard deviation of per-frame noise around the shot trajectory
        (sensor noise, small motion).
    drift:
        Standard deviation of the per-frame centroid random walk inside a
        shot (pans, lighting changes).
    fade_probability:
        Probability that a shot boundary is a gradual transition instead of
        a hard cut.
    fade_length_range:
        Inclusive bounds of a transition's frame count.
    theme_spread:
        Standard deviation of shot centroids around the stream's *theme*
        colour.  Real productions have a palette — a news studio, a drama's
        sets — so the shots of one stream cluster in feature space instead
        of sampling the whole cube; this is the property behind the paper's
        remark that video data is better clustered than synthetic data.
        ``None`` draws every shot centroid uniformly (no theme).
    """

    dimension: int = 3
    shot_length_range: tuple[int, int] = (12, 60)
    jitter: float = 0.012
    drift: float = 0.004
    fade_probability: float = 0.2
    fade_length_range: tuple[int, int] = (4, 12)
    theme_spread: float | None = 0.10

    def validate(self) -> None:
        if self.dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {self.dimension}")
        lo, hi = self.shot_length_range
        if not 1 <= lo <= hi:
            raise ValueError(
                f"invalid shot_length_range {self.shot_length_range}"
            )
        flo, fhi = self.fade_length_range
        if not 1 <= flo <= fhi:
            raise ValueError(
                f"invalid fade_length_range {self.fade_length_range}"
            )
        if self.jitter < 0 or self.drift < 0:
            raise ValueError("jitter and drift must be >= 0")
        if not 0.0 <= self.fade_probability <= 1.0:
            raise ValueError(
                f"fade_probability must be in [0, 1], got "
                f"{self.fade_probability}"
            )
        if self.theme_spread is not None and self.theme_spread <= 0:
            raise ValueError(
                f"theme_spread must be > 0 or None, got {self.theme_spread}"
            )


def generate_video_sequence(
    n_frames: int,
    config: VideoConfig | None = None,
    *,
    seed: SeedLike = None,
    sequence_id: object = None,
) -> MultidimensionalSequence:
    """One simulated stream of exactly ``n_frames`` frames.

    Parameters
    ----------
    n_frames:
        Stream length (>= 1).
    config:
        Generator knobs; defaults to :class:`VideoConfig`'s defaults.
    """
    if n_frames < 1:
        raise ValueError(f"n_frames must be >= 1, got {n_frames}")
    config = config or VideoConfig()
    config.validate()
    rng = ensure_rng(seed)

    frames = np.empty((n_frames, config.dimension))
    produced = 0

    def draw_centroid() -> np.ndarray:
        if config.theme_spread is None:
            return rng.random(config.dimension)
        return np.clip(
            theme + rng.normal(0.0, config.theme_spread, config.dimension),
            0.0,
            1.0,
        )

    theme = rng.random(config.dimension)
    centroid = draw_centroid()
    while produced < n_frames:
        shot_length = int(
            rng.integers(
                config.shot_length_range[0], config.shot_length_range[1] + 1
            )
        )
        shot_length = min(shot_length, n_frames - produced)
        # Centroid drifts inside the shot; frames jitter around it.
        steps = rng.normal(0.0, config.drift, (shot_length, config.dimension))
        trajectory = centroid + np.cumsum(steps, axis=0)
        noise = rng.normal(0.0, config.jitter, trajectory.shape)
        frames[produced : produced + shot_length] = trajectory + noise
        produced += shot_length
        if produced >= n_frames:
            break

        next_centroid = draw_centroid()
        if rng.random() < config.fade_probability:
            fade_length = int(
                rng.integers(
                    config.fade_length_range[0],
                    config.fade_length_range[1] + 1,
                )
            )
            fade_length = min(fade_length, n_frames - produced)
            mix = np.linspace(0.0, 1.0, fade_length + 2)[1:-1, None]
            fade = (1.0 - mix) * trajectory[-1] + mix * next_centroid
            fade += rng.normal(0.0, config.jitter, fade.shape)
            frames[produced : produced + fade_length] = fade
            produced += fade_length
        centroid = next_centroid

    np.clip(frames, 0.0, 1.0, out=frames)
    return MultidimensionalSequence(frames, sequence_id=sequence_id)


def generate_video_corpus(
    count: int,
    config: VideoConfig | None = None,
    *,
    length_range: tuple[int, int] = (56, 512),
    seed: SeedLike = None,
    id_prefix: str = "video",
) -> list[MultidimensionalSequence]:
    """A corpus of simulated streams (Table 2: 1408 streams, 56-512 frames).

    Parameters
    ----------
    count:
        Number of streams (pass 1408 for the paper-scale corpus).
    length_range:
        Inclusive frame-count bounds, drawn uniformly per stream.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    lo, hi = length_range
    if not 1 <= lo <= hi:
        raise ValueError(f"invalid length_range {length_range}")
    master = ensure_rng(seed)
    lengths = master.integers(lo, hi + 1, size=count)
    rngs = spawn_rngs(master, count)
    return [
        generate_video_sequence(
            int(lengths[i]),
            config,
            seed=rngs[i],
            sequence_id=f"{id_prefix}-{i}",
        )
        for i in range(count)
    ]
