"""Workload generators for the paper's experiments and the examples.

* :mod:`repro.datagen.fractal` — the §4.1 midpoint-displacement synthetic
  sequences (Figure 4's data).
* :mod:`repro.datagen.video` — shot-structured simulated video streams,
  the substitute for the paper's TV news / drama / documentary corpus
  (Figure 5's data); see DESIGN.md for the substitution rationale.
* :mod:`repro.datagen.queries` — perturbed-subsequence query workloads
  ("randomly selected 20 queries").
* :mod:`repro.datagen.timeseries` — 1-d series (random walk, stock-like,
  seasonal) for the time-series special case and baselines.
* :mod:`repro.datagen.image` — images linearised into region sequences
  along Hilbert / Z-order curves (§1's image example).
"""

from repro.datagen.fractal import generate_fractal_corpus, generate_fractal_sequence
from repro.datagen.frames import FrameConfig, generate_frame_clip
from repro.datagen.image import (
    generate_image_corpus,
    generate_image_grid,
    generate_image_sequence,
)
from repro.datagen.queries import QueryWorkload, generate_queries
from repro.datagen.timeseries import (
    generate_random_walk,
    generate_seasonal_series,
    generate_stock_series,
    to_unit_interval,
)
from repro.datagen.video import (
    VideoConfig,
    generate_video_corpus,
    generate_video_sequence,
)

__all__ = [
    "FrameConfig",
    "QueryWorkload",
    "VideoConfig",
    "generate_fractal_corpus",
    "generate_fractal_sequence",
    "generate_frame_clip",
    "generate_image_corpus",
    "generate_image_grid",
    "generate_image_sequence",
    "generate_queries",
    "generate_random_walk",
    "generate_seasonal_series",
    "generate_stock_series",
    "generate_video_corpus",
    "generate_video_sequence",
    "to_unit_interval",
]
