"""Solution intervals (Definition 6 and Section 3.3).

Given a query ``Q`` of ``k`` points, the *solution interval* of a data
sequence ``S`` is the set of points contained in some length-``k`` window of
``S`` whose ``Dmean`` to ``Q`` is within the threshold — i.e. exactly the
sub-streams one would play back after a video search.  The sequential scan
computes it exactly; the paper approximates it by the points participating
in every sub-threshold ``Dnorm`` computation (Example 3), trading a small
recall loss (measured at >= 98%) for a large scan reduction.

Because solution intervals are unions of contiguous point runs, they are
represented here as a canonical :class:`IntervalSet`: sorted, disjoint,
non-adjacent half-open ``[start, stop)`` integer intervals supporting the
set algebra the metrics need (union, intersection size, membership).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.contracts import ContractViolation, lower_bounds

__all__ = ["IntervalSet"]

_Spans = list[tuple[int, int]]


def _check_canonical(label: str, intervals: _Spans) -> None:
    """Canonical form: sorted, non-empty, disjoint and non-adjacent."""
    previous_stop: int | None = None
    for start, stop in intervals:
        if stop <= start:
            raise ContractViolation(
                f"{label}: empty interval [{start}, {stop}) in canonical form"
            )
        if previous_stop is not None and start <= previous_stop:
            raise ContractViolation(
                f"{label}: interval [{start}, {stop}) overlaps or touches "
                f"its predecessor (stop {previous_stop}) — canonical form "
                f"broken"
            )
        previous_stop = stop


def _covered_by(start: int, stop: int, intervals: _Spans) -> bool:
    """Whether ``[start, stop)`` lies inside one interval of the list."""
    return any(a <= start and stop <= b for a, b in intervals)


def _disjoint_from(start: int, stop: int, intervals: _Spans) -> bool:
    return all(stop <= a or b <= start for a, b in intervals)


def _validate_union(
    result: "IntervalSet", left: "IntervalSet", right: "IntervalSet"
) -> None:
    _check_canonical("union", result._intervals)
    for start, stop in left._intervals + right._intervals:
        if not _covered_by(start, stop, result._intervals):
            raise ContractViolation(
                f"union lost the input interval [{start}, {stop})"
            )
    if len(result) > len(left) + len(right):
        raise ContractViolation(
            f"union size {len(result)} exceeds |A| + |B| = "
            f"{len(left) + len(right)}"
        )


def _validate_intersection(
    result: "IntervalSet", left: "IntervalSet", right: "IntervalSet"
) -> None:
    _check_canonical("intersection", result._intervals)
    for start, stop in result._intervals:
        if not _covered_by(start, stop, left._intervals) or not _covered_by(
            start, stop, right._intervals
        ):
            raise ContractViolation(
                f"intersection produced [{start}, {stop}) outside an input"
            )
    if len(result) > min(len(left), len(right)):
        raise ContractViolation(
            f"intersection size {len(result)} exceeds min(|A|, |B|) = "
            f"{min(len(left), len(right))}"
        )


def _validate_difference(
    result: "IntervalSet", left: "IntervalSet", right: "IntervalSet"
) -> None:
    _check_canonical("difference", result._intervals)
    for start, stop in result._intervals:
        if not _covered_by(start, stop, left._intervals):
            raise ContractViolation(
                f"difference produced [{start}, {stop}) outside the left set"
            )
        if not _disjoint_from(start, stop, right._intervals):
            raise ContractViolation(
                f"difference kept [{start}, {stop}) overlapping the "
                f"subtracted set"
            )


class IntervalSet:
    """A set of non-negative integers stored as disjoint half-open intervals.

    The canonical form keeps intervals sorted, non-overlapping and
    non-adjacent, so equality, size and iteration are all well-defined and
    cheap.

    Examples
    --------
    >>> si = IntervalSet([(0, 4), (2, 6)])
    >>> si.intervals
    [(0, 6)]
    >>> len(si)
    6
    >>> 5 in si, 6 in si
    (True, False)
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[tuple[int, int]] = ()) -> None:
        cleaned = []
        for start, stop in intervals:
            start = int(start)
            stop = int(stop)
            if start < 0:
                raise ValueError(f"interval start must be >= 0, got {start}")
            if stop <= start:
                continue  # empty interval
            cleaned.append((start, stop))
        self._intervals = self._normalise(cleaned)

    @staticmethod
    def _normalise(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
        if not intervals:
            return []
        ordered = sorted(intervals)
        merged = [ordered[0]]
        for start, stop in ordered[1:]:
            last_start, last_stop = merged[-1]
            if start <= last_stop:  # overlapping or adjacent: coalesce
                merged[-1] = (last_start, max(last_stop, stop))
            else:
                merged.append((start, stop))
        return merged

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[int]) -> "IntervalSet":
        """Build from individual point offsets (runs are coalesced)."""
        return cls((int(p), int(p) + 1) for p in points)

    @classmethod
    def full(cls, length: int) -> "IntervalSet":
        """The complete interval ``[0, length)``."""
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        return cls([(0, length)] if length else [])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def intervals(self) -> list[tuple[int, int]]:
        """The canonical sorted disjoint ``[start, stop)`` intervals."""
        return list(self._intervals)

    def __len__(self) -> int:
        return sum(stop - start for start, stop in self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __iter__(self) -> Iterator[int]:
        for start, stop in self._intervals:
            yield from range(start, stop)

    def __contains__(self, point: int) -> bool:
        point = int(point)
        for start, stop in self._intervals:
            if start <= point < stop:
                return True
            if start > point:
                return False
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(tuple(self._intervals))

    def __repr__(self) -> str:
        spans = ", ".join(f"[{a}, {b})" for a, b in self._intervals)
        return f"IntervalSet({spans})"

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    @lower_bounds(_validate_union, label="interval union invariants")
    def union(self, other: "IntervalSet") -> "IntervalSet":
        """The union of the two point sets."""
        return IntervalSet(self._intervals + other._intervals)

    __or__ = union

    def add(self, start: int, stop: int) -> "IntervalSet":
        """This set plus one extra ``[start, stop)`` interval."""
        return IntervalSet(self._intervals + [(int(start), int(stop))])

    @lower_bounds(
        _validate_intersection, label="interval intersection invariants"
    )
    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """The intersection of the two point sets (two-pointer sweep)."""
        result = []
        mine = self._intervals
        theirs = other._intervals
        i = j = 0
        while i < len(mine) and j < len(theirs):
            lo = max(mine[i][0], theirs[j][0])
            hi = min(mine[i][1], theirs[j][1])
            if lo < hi:
                result.append((lo, hi))
            if mine[i][1] <= theirs[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    __and__ = intersection

    def intersection_size(self, other: "IntervalSet") -> int:
        """``len(self & other)`` without materialising the intervals twice."""
        return len(self.intersection(other))

    @lower_bounds(_validate_difference, label="interval difference invariants")
    def difference(self, other: "IntervalSet") -> "IntervalSet":
        """Points of this set not in ``other``."""
        result = []
        theirs = other._intervals
        for start, stop in self._intervals:
            cursor = start
            for t_start, t_stop in theirs:
                if t_stop <= cursor:
                    continue
                if t_start >= stop:
                    break
                if t_start > cursor:
                    result.append((cursor, min(t_start, stop)))
                cursor = max(cursor, t_stop)
                if cursor >= stop:
                    break
            if cursor < stop:
                result.append((cursor, stop))
        return IntervalSet(result)

    __sub__ = difference

    def issubset(self, other: "IntervalSet") -> bool:
        """Whether every point of this set lies in ``other``."""
        return len(self - other) == 0

    def coverage(self, length: int) -> float:
        """Fraction of ``[0, length)`` covered by this set."""
        if length <= 0:
            raise ValueError(f"length must be > 0, got {length}")
        return len(self) / length
