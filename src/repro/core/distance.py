"""Distance metrics of the paper (Definitions 2-5).

Four levels of distance are defined over the normalised space ``[0,1]^n``:

``point_distance``
    Euclidean distance ``d`` between two n-dimensional points.
``mean_distance`` (``Dmean``, Definition 2)
    The distance between two *equal-length* sequences: the arithmetic mean of
    the pointwise Euclidean distances.  A mean (not a sum) is used so that a
    long pair of nearby sequences is not judged farther apart than a short
    pair of distant ones (the paper's Figure 1 / Example 1).
``sequence_distance`` (``D``, Definition 3)
    For different-length sequences the shorter one is slid along the longer
    one and the minimum ``Dmean`` over all alignments is taken.
``mbr_min_distance`` (``Dmbr``, Definition 4)
    The minimum Euclidean distance between two hyper-rectangles.  Lemma 1:
    the minimum ``Dmbr`` over all (query MBR, data MBR) pairs lower-bounds
    ``D(Q, S)``, so ``Dmbr``-pruning has no false dismissals.
``normalized_distance`` (``Dnorm``, Definition 5)
    A point-count-aware refinement of ``Dmbr``: when the target data MBR
    holds fewer points than the query MBR, neighbouring data MBRs join the
    computation (a contiguous window with one partially-weighted *marginal*
    MBR at either end — the paper's ``LD``/``RD`` forms) and the per-MBR
    ``Dmbr`` values are averaged weighted by point counts.  Lemmas 2-3:
    ``min Dmbr <= min Dnorm <= D(Q, S)`` — a tighter lower bound that still
    never causes a false dismissal when selecting sequences.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.contracts import BOUND_TOLERANCE, ContractViolation, lower_bounds
from repro.core.mbr import MBR
from repro.core.sequence import MultidimensionalSequence

if TYPE_CHECKING:
    import numpy.typing as npt

    from repro.core.partitioning import PartitionedSequence

    SequenceLike = MultidimensionalSequence | npt.ArrayLike
    MbrsLike = Sequence[MBR]
    CountsLike = "Sequence[int] | npt.NDArray[np.int64]"

INFINITY = float("inf")

__all__ = [
    "DnormWindow",
    "INFINITY",
    "NormalizedDistance",
    "mbr_min_distance",
    "mean_distance",
    "min_normalized_distance",
    "normalized_distance",
    "normalized_distance_row",
    "point_distance",
    "sequence_distance",
    "sliding_mean_distances",
]


def _as_points(seq: SequenceLike) -> np.ndarray:
    """Accept an MDS or a raw array and return the ``(m, n)`` point matrix."""
    if isinstance(seq, MultidimensionalSequence):
        return seq.points
    arr = np.asarray(seq, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2 or arr.shape[0] == 0:
        raise ValueError(f"expected a non-empty (m, n) point array, got {arr.shape}")
    return arr


def point_distance(p: npt.ArrayLike, q: npt.ArrayLike) -> float:
    """Euclidean distance ``d(p, q)`` between two n-dimensional points."""
    a = np.asarray(p, dtype=np.float64).reshape(-1)
    b = np.asarray(q, dtype=np.float64).reshape(-1)
    if a.shape != b.shape:
        raise ValueError(f"point dimension mismatch: {a.shape} vs {b.shape}")
    return float(np.sqrt(np.sum((a - b) ** 2)))


def mean_distance(s1: SequenceLike, s2: SequenceLike) -> float:
    """``Dmean`` (Definition 2): mean pointwise distance of equal-length sequences.

    Parameters
    ----------
    s1, s2:
        Two sequences (or raw point arrays) of the same length and dimension.

    Raises
    ------
    ValueError
        If the lengths or dimensions differ.
    """
    a = _as_points(s1)
    b = _as_points(s2)
    if a.shape != b.shape:
        raise ValueError(
            f"Dmean requires equal-length sequences of equal dimension; got "
            f"shapes {a.shape} and {b.shape}"
        )
    return float(np.mean(np.sqrt(np.sum((a - b) ** 2, axis=1))))


def sliding_mean_distances(short: SequenceLike, long: SequenceLike) -> np.ndarray:
    """``Dmean`` of ``short`` against every alignment inside ``long``.

    Returns an array of length ``len(long) - len(short) + 1`` whose entry
    ``j`` is ``Dmean(short, long[j : j + len(short)])`` (zero-based ``j``).
    This enumerates the alignments minimised over in Definition 3 and is the
    kernel of the sequential-scan baseline.
    """
    a = _as_points(short)
    b = _as_points(long)
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}"
        )
    k, m = a.shape[0], b.shape[0]
    if k > m:
        raise ValueError(
            f"short sequence (length {k}) is longer than long sequence "
            f"(length {m})"
        )
    # windows[j, t, :] = long[j + t, :]; per-alignment mean of point norms.
    windows = np.lib.stride_tricks.sliding_window_view(b, (k, b.shape[1]))
    windows = windows.reshape(m - k + 1, k, b.shape[1])
    diffs = windows - a[None, :, :]
    return np.mean(np.sqrt(np.sum(diffs * diffs, axis=2)), axis=1)


def sequence_distance(s1: SequenceLike, s2: SequenceLike) -> float:
    """``D`` (Definitions 2-3): the sliding minimum mean distance.

    Equal-length sequences compare point by point (Definition 2); otherwise
    the shorter is slid along the longer and the minimum ``Dmean`` over all
    alignments is returned (Definition 3).  The operation is symmetric.
    """
    a = _as_points(s1)
    b = _as_points(s2)
    if a.shape[1] != b.shape[1]:
        raise ValueError(f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}")
    if a.shape[0] > b.shape[0]:
        a, b = b, a
    return float(np.min(sliding_mean_distances(a, b)))


def mbr_min_distance(a: MBR, b: MBR) -> float:
    """``Dmbr`` (Definition 4): minimum distance between two hyper-rectangles."""
    return a.min_distance(b)


# ----------------------------------------------------------------------
# Dnorm (Definition 5)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NormalizedDistance:
    """The value of one ``Dnorm`` computation plus its participating window.

    The window is what Section 3.3 turns into an approximate solution
    interval: every point of the fully-weighted MBRs plus the
    ``marginal_count`` points of the partially-weighted marginal MBR taken
    from the side adjacent to the window.

    Attributes
    ----------
    value:
        The ``Dnorm`` distance.
    target_index:
        Zero-based index of the data MBR the computation was anchored at.
    window:
        Inclusive zero-based ``(first, last)`` data-MBR index range involved.
    marginal_index:
        Index of the single partially-weighted MBR, or ``None`` when every
        involved MBR was fully weighted (target alone, or whole-sequence
        fallback).
    marginal_count:
        Number of points used from the marginal MBR (0 when none).
    marginal_side:
        ``"right"`` for an ``LD`` window (marginal at the right end, its
        *first* points used), ``"left"`` for ``RD`` (marginal at the left
        end, its *last* points used), ``"none"`` otherwise.
    """

    value: float
    target_index: int
    window: tuple[int, int]
    marginal_index: int | None
    marginal_count: int
    marginal_side: str

    def involved_points(self, counts: CountsLike) -> list[tuple[int, int, int]]:
        """Expand the window into per-MBR point spans.

        Parameters
        ----------
        counts:
            Point count of every data MBR of the sequence (same array the
            distance was computed with).

        Returns
        -------
        list of (mbr_index, first_point, last_point)
            Zero-based point offsets *within each MBR*, inclusive on both
            ends, for every MBR contributing points.
        """
        spans = []
        first, last = self.window
        for t in range(first, last + 1):
            if t == self.marginal_index:
                if self.marginal_count == 0:
                    continue
                if self.marginal_side == "right":
                    spans.append((t, 0, self.marginal_count - 1))
                else:
                    spans.append((t, counts[t] - self.marginal_count, counts[t] - 1))
            else:
                spans.append((t, 0, counts[t] - 1))
        return spans


def _weighted_window_value(
    dmbr: np.ndarray,
    counts: np.ndarray,
    first: int,
    last: int,
    marginal_index: int,
    marginal_count: int,
    query_count: int,
) -> float:
    """Weighted mean of ``dmbr`` over window ``[first, last]`` / ``query_count``."""
    total = 0.0
    for t in range(first, last + 1):
        weight = marginal_count if t == marginal_index else int(counts[t])
        total += dmbr[t] * weight
    return total / query_count


def _window_min_dmbr(
    query_mbr: MBR, data_mbrs: Sequence[MBR], window: tuple[int, int]
) -> float:
    """``min Dmbr`` over a window, recomputed from the MBRs themselves.

    Contract validators deliberately ignore any caller-supplied
    ``dmbr_row`` so that a corrupted precomputed row is caught too.
    """
    first, last = window
    return min(
        query_mbr.min_distance(data_mbrs[t]) for t in range(first, last + 1)
    )


def _check_dnorm_result(
    result: NormalizedDistance, query_mbr: MBR, data_mbrs: Sequence[MBR]
) -> None:
    """Lemma 2 at one anchor: ``Dnorm`` is a convex combination of the
    window's ``Dmbr`` values, so it can never fall below their minimum."""
    bound = _window_min_dmbr(query_mbr, data_mbrs, result.window)
    if result.value < bound - BOUND_TOLERANCE:
        raise ContractViolation(
            f"Dnorm contract violated: value {result.value!r} falls below "
            f"the window's minimum Dmbr {bound!r} (anchor "
            f"{result.target_index}, window {result.window}) — Lemma 2 no "
            f"longer holds"
        )


def _validate_normalized_distance(
    result: NormalizedDistance,
    query_mbr: MBR,
    query_count: int,
    data_mbrs: MbrsLike,
    data_counts: CountsLike,
    target_index: int,
    *,
    dmbr_row: np.ndarray | None = None,
) -> None:
    _check_dnorm_result(result, query_mbr, list(data_mbrs))


def _validate_normalized_distance_row(
    result: list[NormalizedDistance],
    query_mbr: MBR,
    query_count: int,
    data_mbrs: MbrsLike,
    data_counts: CountsLike,
    *,
    dmbr_row: np.ndarray | None = None,
    only_below: float | None = None,
) -> None:
    mbr_list = list(data_mbrs)
    for entry in result:
        _check_dnorm_result(entry, query_mbr, mbr_list)


def _validate_min_normalized_distance(
    result: float,
    query_partition: PartitionedSequence,
    data_partition: PartitionedSequence,
) -> None:
    """The full Lemma 2-3 chain: ``min Dmbr <= min Dnorm <= D(Q, S)``."""
    min_dmbr = min(
        float(data_partition.mbr_distance_row(segment.mbr).min())
        for segment in query_partition
    )
    if result < min_dmbr - BOUND_TOLERANCE:
        raise ContractViolation(
            f"min Dnorm {result!r} falls below min Dmbr {min_dmbr!r} — "
            f"Lemma 2 violated"
        )
    exact = sequence_distance(
        query_partition.sequence, data_partition.sequence
    )
    if result > exact + BOUND_TOLERANCE:
        raise ContractViolation(
            f"min Dnorm {result!r} exceeds the exact distance {exact!r} — "
            f"Lemma 3 violated (false dismissals possible)"
        )


@lower_bounds(_validate_normalized_distance, label="Dnorm >= window min Dmbr")
def normalized_distance(
    query_mbr: MBR,
    query_count: int,
    data_mbrs: MbrsLike,
    data_counts: CountsLike,
    target_index: int,
    *,
    dmbr_row: np.ndarray | None = None,
) -> NormalizedDistance:
    """``Dnorm`` (Definition 5) between a query MBR and one data MBR.

    Parameters
    ----------
    query_mbr:
        The MBR of the query subsequence (the paper's ``mbr_i(Q)``).
    query_count:
        Number of query points inside ``query_mbr`` (``|q_i|``).
    data_mbrs:
        The ordered MBRs of the data sequence (``mbr_1(S) .. mbr_r(S)``).
    data_counts:
        Point count of each data MBR (``|m_j|``), same order.
    target_index:
        Zero-based index ``j`` of the anchor data MBR.
    dmbr_row:
        Optional precomputed array of ``Dmbr(query_mbr, data_mbrs[t])`` for
        every ``t`` — Phase 3 of the search computes each row once per
        (query MBR, sequence) pair and reuses it across anchors.

    Returns
    -------
    NormalizedDistance
        Value plus the participating window (for solution intervals).

    Notes
    -----
    Three regimes, following Definition 5 and the Lemma 3 proof:

    * ``|m_j| >= |q_i|``: the target MBR alone suffices and
      ``Dnorm = Dmbr(mbr_i(Q), mbr_j(S))``.
    * Otherwise all valid ``LD`` windows (fully weighted MBRs ``k..l-1``,
      marginal ``l`` strictly right of ``j``) and ``RD`` windows (marginal
      ``p`` strictly left of ``j``) are enumerated and the minimum weighted
      mean is returned.
    * When the whole data sequence holds fewer points than ``|q_i|`` no
      window satisfies the count constraint; we then weight every MBR fully
      and normalise by the participating point total.  Each ``Dmbr`` term
      lower-bounds every point-pair distance, so this fallback preserves the
      lower-bounding property of Lemma 3.
    """
    counts = np.asarray(data_counts, dtype=np.int64)
    mbr_list = list(data_mbrs)
    r = len(mbr_list)
    if counts.shape != (r,):
        raise ValueError(
            f"data_counts must have one entry per data MBR; got {counts.shape} "
            f"for {r} MBRs"
        )
    if r == 0:
        raise ValueError("data sequence has no MBRs")
    if np.any(counts < 1):
        raise ValueError("every data MBR must contain at least one point")
    if query_count < 1:
        raise ValueError(f"query_count must be >= 1, got {query_count}")
    if not 0 <= target_index < r:
        raise IndexError(f"target_index {target_index} outside [0, {r})")

    if dmbr_row is None:
        dmbr_row = np.array(
            [query_mbr.min_distance(m) for m in mbr_list], dtype=np.float64
        )
    else:
        dmbr_row = np.asarray(dmbr_row, dtype=np.float64)
        if dmbr_row.shape != (r,):
            raise ValueError(
                f"dmbr_row must have one entry per data MBR; got {dmbr_row.shape}"
            )

    j = target_index
    if counts[j] >= query_count:
        return NormalizedDistance(
            value=float(dmbr_row[j]),
            target_index=j,
            window=(j, j),
            marginal_index=None,
            marginal_count=0,
            marginal_side="none",
        )

    prefix = np.concatenate([[0], np.cumsum(counts)])  # prefix[i] = sum counts[:i]

    def window_sum(first: int, last: int) -> int:
        return int(prefix[last + 1] - prefix[first])

    best: NormalizedDistance | None = None

    # LD windows: fully weighted k..l-1, marginal l with l > j, k <= j.
    # For a fixed k the marginal index l is unique (counts are positive, so
    # prefix sums are strictly increasing): the smallest l with
    # sum(counts[k..l]) >= query_count.  Binary-search it on the prefix sums.
    for k in range(j, -1, -1):
        # Smallest l such that prefix[l + 1] >= prefix[k] + query_count.
        l = int(np.searchsorted(prefix, prefix[k] + query_count, side="left")) - 1
        if l >= r:
            continue  # not enough points to the right of k
        if l <= j:
            # The count constraint is met at or before the anchor, so the
            # marginal cannot lie strictly right of j; shrinking k further
            # only moves l left, so no smaller k is valid either.
            break
        marginal_count = query_count - window_sum(k, l - 1)
        value = _weighted_window_value(
            dmbr_row, counts, k, l, l, marginal_count, query_count
        )
        candidate = NormalizedDistance(
            value=value,
            target_index=j,
            window=(k, l),
            marginal_index=l,
            marginal_count=marginal_count,
            marginal_side="right",
        )
        if best is None or candidate.value < best.value:
            best = candidate

    # RD windows: marginal p with p < j, fully weighted p+1..q_end, q_end >= j.
    # For a fixed q_end the marginal index p is unique: the largest p with
    # sum(counts[p..q_end]) >= query_count, i.e. the largest p whose prefix
    # satisfies prefix[p] <= prefix[q_end + 1] - query_count.
    for q_end in range(j, r):
        threshold = prefix[q_end + 1] - query_count
        if threshold < 0:
            continue  # not enough points to the left of q_end
        p = int(np.searchsorted(prefix, threshold, side="right")) - 1
        if p >= j:
            # Marginal would sit at or right of the anchor; growing q_end
            # only moves p further right, so stop.
            break
        marginal_count = query_count - window_sum(p + 1, q_end)
        value = _weighted_window_value(
            dmbr_row, counts, p, q_end, p, marginal_count, query_count
        )
        candidate = NormalizedDistance(
            value=value,
            target_index=j,
            window=(p, q_end),
            marginal_index=p,
            marginal_count=marginal_count,
            marginal_side="left",
        )
        if best is None or candidate.value < best.value:
            best = candidate

    if best is not None:
        return best

    # Fallback: the whole sequence holds fewer points than the query MBR.
    total = window_sum(0, r - 1)
    value = float(np.sum(dmbr_row * counts) / total)
    return NormalizedDistance(
        value=value,
        target_index=j,
        window=(0, r - 1),
        marginal_index=None,
        marginal_count=0,
        marginal_side="none",
    )


@dataclass(frozen=True)
class DnormWindow:
    """One candidate ``Dnorm`` window shared by a run of anchors.

    A window's value and membership do not depend on the anchor — only its
    *validity* does (the anchor must lie among the fully-weighted MBRs).
    ``normalized_distance_row`` therefore enumerates each window once and
    lets every anchor in ``[anchor_first, anchor_last]`` consider it.
    """

    value: float
    first: int
    last: int
    marginal_index: int | None
    marginal_count: int
    marginal_side: str
    anchor_first: int
    anchor_last: int

    def as_result(self, anchor: int) -> NormalizedDistance:
        """This window viewed as the result for one anchor."""
        return NormalizedDistance(
            value=self.value,
            target_index=anchor,
            window=(self.first, self.last),
            marginal_index=self.marginal_index,
            marginal_count=self.marginal_count,
            marginal_side=self.marginal_side,
        )


@lower_bounds(
    _validate_normalized_distance_row, label="Dnorm row >= window min Dmbr"
)
def normalized_distance_row(
    query_mbr: MBR,
    query_count: int,
    data_mbrs: MbrsLike,
    data_counts: CountsLike,
    *,
    dmbr_row: np.ndarray | None = None,
    only_below: float | None = None,
) -> list[NormalizedDistance]:
    """``Dnorm`` against *every* anchor of a data sequence at once.

    Semantically identical to calling :func:`normalized_distance` for each
    ``target_index`` (a property test asserts this), but O(r) instead of
    O(r^2): every candidate window is enumerated once via prefix sums of
    the point counts and of ``Dmbr * count``, and each anchor then takes
    the minimum over the windows whose fully-weighted span covers it.

    Parameters
    ----------
    only_below:
        When given, only the anchors whose ``Dnorm`` is at most this value
        are materialised (the search's Phase 3 only acts on sub-threshold
        anchors); ``None`` returns every anchor, in order.

    Returns
    -------
    list of NormalizedDistance
        One entry per anchor (filtered and still anchor-ordered when
        ``only_below`` is given).
    """
    counts = np.asarray(data_counts, dtype=np.int64)
    mbr_list = list(data_mbrs)
    r = len(mbr_list)
    if counts.shape != (r,):
        raise ValueError(
            f"data_counts must have one entry per data MBR; got {counts.shape} "
            f"for {r} MBRs"
        )
    if r == 0:
        raise ValueError("data sequence has no MBRs")
    if np.any(counts < 1):
        raise ValueError("every data MBR must contain at least one point")
    if query_count < 1:
        raise ValueError(f"query_count must be >= 1, got {query_count}")
    if dmbr_row is None:
        dmbr_row = np.array(
            [query_mbr.min_distance(m) for m in mbr_list], dtype=np.float64
        )
    else:
        dmbr_row = np.asarray(dmbr_row, dtype=np.float64)
        if dmbr_row.shape != (r,):
            raise ValueError(
                f"dmbr_row must have one entry per data MBR; got {dmbr_row.shape}"
            )

    # The remainder runs in plain Python: the per-sequence segment counts
    # this operates on are tiny (typically < 100), where list arithmetic
    # and bisect beat numpy's per-call overhead by an order of magnitude.
    count_list = counts.tolist()
    row_list = dmbr_row.tolist()
    prefix = [0] * (r + 1)
    weighted_prefix = [0.0] * (r + 1)
    for index in range(r):
        prefix[index + 1] = prefix[index] + count_list[index]
        weighted_prefix[index + 1] = (
            weighted_prefix[index] + row_list[index] * count_list[index]
        )
    total = prefix[-1]

    windows: list[DnormWindow] = []
    # LD windows, one per start k: fully weighted k..l-1, marginal l.
    for k in range(r):
        l = bisect.bisect_left(prefix, prefix[k] + query_count) - 1
        if l >= r or l <= k:
            continue
        marginal = query_count - (prefix[l] - prefix[k])
        value = (
            weighted_prefix[l] - weighted_prefix[k] + row_list[l] * marginal
        ) / query_count
        windows.append(
            DnormWindow(
                value=value,
                first=k,
                last=l,
                marginal_index=l,
                marginal_count=marginal,
                marginal_side="right",
                anchor_first=k,
                anchor_last=l - 1,
            )
        )
    # RD windows, one per end q_end: marginal p, fully weighted p+1..q_end.
    for q_end in range(r):
        threshold = prefix[q_end + 1] - query_count
        if threshold < 0:
            continue
        p = bisect.bisect_right(prefix, threshold) - 1
        if p >= q_end:
            continue
        marginal = query_count - (prefix[q_end + 1] - prefix[p + 1])
        value = (
            weighted_prefix[q_end + 1]
            - weighted_prefix[p + 1]
            + row_list[p] * marginal
        ) / query_count
        windows.append(
            DnormWindow(
                value=value,
                first=p,
                last=q_end,
                marginal_index=p,
                marginal_count=marginal,
                marginal_side="left",
                anchor_first=p + 1,
                anchor_last=q_end,
            )
        )

    fallback_value = weighted_prefix[-1] / total

    # Anchor-wise minimum over covering windows; no result objects are
    # built for anchors the caller will discard.
    values = [
        row_list[anchor] if count_list[anchor] >= query_count else INFINITY
        for anchor in range(r)
    ]
    window_of = [-1] * r
    for window_id, window in enumerate(windows):
        value = window.value
        for anchor in range(window.anchor_first, window.anchor_last + 1):
            if count_list[anchor] < query_count and value < values[anchor]:
                values[anchor] = value
                window_of[anchor] = window_id
    for anchor in range(r):
        if count_list[anchor] < query_count and window_of[anchor] == -1:
            values[anchor] = fallback_value

    def materialise(anchor: int) -> NormalizedDistance:
        if count_list[anchor] >= query_count:
            return NormalizedDistance(
                value=row_list[anchor],
                target_index=anchor,
                window=(anchor, anchor),
                marginal_index=None,
                marginal_count=0,
                marginal_side="none",
            )
        window_id = window_of[anchor]
        if window_id >= 0:
            return windows[window_id].as_result(anchor)
        return NormalizedDistance(
            value=fallback_value,
            target_index=anchor,
            window=(0, r - 1),
            marginal_index=None,
            marginal_count=0,
            marginal_side="none",
        )

    if only_below is None:
        return [materialise(anchor) for anchor in range(r)]
    return [
        materialise(anchor)
        for anchor in range(r)
        if values[anchor] <= only_below
    ]


@lower_bounds(
    _validate_min_normalized_distance, label="min Dmbr <= min Dnorm <= D(Q,S)"
)
def min_normalized_distance(
    query_partition: PartitionedSequence, data_partition: PartitionedSequence
) -> float:
    """The pruning bound of Phase 3: ``min Dnorm`` over all MBR pairs.

    Lemmas 2-3 prove ``min Dnorm <= D(Q, S)`` when the query is no longer
    than the data sequence (Definition 3 slides the shorter sequence).  In
    the paper's *long query* case the roles reverse — the data sequence
    slides inside the query — and applying ``Dnorm`` naively can exceed
    ``D(Q, S)`` (the query-side point weights then overcount points that a
    best alignment never matches).  This helper therefore swaps the two
    partitions whenever the query holds more points, which restores the
    lemma with ``Q`` and ``S`` exchanged; the result is a sound lower bound
    of ``D(Q, S)`` in *both* directions.

    Parameters
    ----------
    query_partition, data_partition:
        :class:`~repro.core.partitioning.PartitionedSequence` instances
        (anything exposing ``mbrs``, ``counts`` and ``mbr_distance_row``).

    Returns
    -------
    float
        ``min over (i, j) of Dnorm(mbr_i(shorter), mbr_j(longer))``.
    """
    if int(np.sum(query_partition.counts)) > int(np.sum(data_partition.counts)):
        query_partition, data_partition = data_partition, query_partition
    data_mbrs = data_partition.mbrs
    counts = data_partition.counts
    best = np.inf
    for segment in query_partition:
        row = data_partition.mbr_distance_row(segment.mbr)
        results = normalized_distance_row(
            segment.mbr, int(segment.count), data_mbrs, counts, dmbr_row=row
        )
        best = min(best, min(result.value for result in results))
    return float(best)
