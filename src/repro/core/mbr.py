"""Minimum bounding rectangles (hyper-rectangles) and their geometry.

An MBR ``M = (L, H)`` in the n-dimensional Euclidean space is represented by
the two endpoints of its major diagonal: the low point ``L = (l1, ..., ln)``
and the high point ``H = (h1, ..., hn)`` with ``l_k <= h_k`` for every
dimension (the representation of Definition 4 in the paper, after [11]).

The central operation is :meth:`MBR.min_distance` — the paper's ``Dmbr``
(Definition 4): the minimum Euclidean distance between two hyper-rectangles,
computed per dimension as the gap between the rectangles' projections (zero
when the projections overlap).  Figure 2 of the paper illustrates the three
2-d cases: overlapping rectangles (distance 0), rectangles separated along
one axis, and rectangles separated along both axes (corner-to-corner).

The module also provides the geometric predicates and measures needed by the
R-tree substrate (volume, margin, enlargement, overlap) and by partitioning.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.util.validation import check_threshold

if TYPE_CHECKING:
    from collections.abc import Iterable

    import numpy.typing as npt

__all__ = ["MBR"]


class MBR:
    """An n-dimensional minimum bounding rectangle ``(L, H)``.

    Parameters
    ----------
    low:
        The low endpoint ``L`` of the major diagonal, shape ``(n,)``.
    high:
        The high endpoint ``H``; must satisfy ``low <= high`` element-wise.

    Examples
    --------
    >>> import numpy as np
    >>> a = MBR([0.0, 0.0], [0.2, 0.2])
    >>> b = MBR([0.5, 0.0], [0.7, 0.2])
    >>> round(a.min_distance(b), 3)       # separated along the x axis only
    0.3
    """

    __slots__ = ("_low", "_high", "_low_tuple", "_high_tuple")

    def __init__(self, low: npt.ArrayLike, high: npt.ArrayLike) -> None:
        lo = np.atleast_1d(np.array(low, dtype=np.float64))
        hi = np.atleast_1d(np.array(high, dtype=np.float64))
        if lo.ndim != 1 or hi.ndim != 1 or lo.shape != hi.shape:
            raise ValueError(
                f"low/high must be 1-d arrays of equal shape, got {lo.shape} "
                f"and {hi.shape}"
            )
        if lo.size == 0:
            raise ValueError("an MBR must have dimension >= 1")
        if not (np.all(np.isfinite(lo)) and np.all(np.isfinite(hi))):
            raise ValueError("MBR endpoints must be finite")
        if np.any(lo > hi):
            raise ValueError(f"low must be <= high element-wise: {lo} vs {hi}")
        lo.setflags(write=False)
        hi.setflags(write=False)
        self._low = lo
        self._high = hi
        # Plain-float copies: Dmbr is evaluated millions of times during
        # index traversal, where scalar arithmetic beats numpy by ~10x for
        # the low dimensionalities (2-8) this library works in.
        self._low_tuple = tuple(lo.tolist())
        self._high_tuple = tuple(hi.tolist())

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def of_points(cls, points: npt.ArrayLike) -> "MBR":
        """The tightest MBR enclosing a non-empty ``(m, n)`` point array."""
        arr = np.asarray(points, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2 or arr.shape[0] == 0:
            raise ValueError(
                f"points must be a non-empty (m, n) array, got shape {arr.shape}"
            )
        return cls(arr.min(axis=0), arr.max(axis=0))

    @classmethod
    def of_point(cls, point: npt.ArrayLike) -> "MBR":
        """The degenerate MBR of a single point (``L == H``)."""
        arr = np.atleast_1d(np.asarray(point, dtype=np.float64))
        return cls(arr, arr.copy())

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def low(self) -> np.ndarray:
        """The low endpoint ``L`` (read-only)."""
        return self._low

    @property
    def high(self) -> np.ndarray:
        """The high endpoint ``H`` (read-only)."""
        return self._high

    @property
    def dimension(self) -> int:
        """Dimensionality ``n`` of the space."""
        return self._low.shape[0]

    @property
    def sides(self) -> np.ndarray:
        """Side lengths ``(h_k - l_k)`` per dimension (the paper's ``L_k``)."""
        return self._high - self._low

    @property
    def center(self) -> np.ndarray:
        """The geometric centre ``(L + H) / 2``."""
        return (self._low + self._high) / 2.0

    def volume(self) -> float:
        """The hyper-volume ``prod(h_k - l_k)``."""
        return float(np.prod(self.sides))

    def margin(self) -> float:
        """The margin (sum of side lengths) used by R*-tree split heuristics."""
        return float(np.sum(self.sides))

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: npt.ArrayLike) -> bool:
        """Whether ``point`` lies inside (or on the boundary of) this MBR."""
        p = np.asarray(point, dtype=np.float64)
        self._check_compatible_shape(p)
        return bool(np.all(self._low <= p) and np.all(p <= self._high))

    def contains(self, other: "MBR") -> bool:
        """Whether ``other`` is entirely inside this MBR."""
        self._check_compatible(other)
        return bool(
            np.all(self._low <= other._low) and np.all(other._high <= self._high)
        )

    def intersects(self, other: "MBR") -> bool:
        """Whether the two rectangles share at least a boundary point."""
        self._check_compatible(other)
        for a_low, a_high, b_low, b_high in zip(
            self._low_tuple, self._high_tuple, other._low_tuple, other._high_tuple
        ):
            if b_low > a_high or a_low > b_high:
                return False
        return True

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def union(self, other: "MBR") -> "MBR":
        """The smallest MBR covering both rectangles."""
        self._check_compatible(other)
        return MBR(
            np.minimum(self._low, other._low), np.maximum(self._high, other._high)
        )

    @staticmethod
    def union_all(mbrs: Iterable["MBR"]) -> "MBR":
        """The smallest MBR covering every rectangle in a non-empty iterable."""
        items = list(mbrs)
        if not items:
            raise ValueError("union_all requires at least one MBR")
        low = np.min([m.low for m in items], axis=0)
        high = np.max([m.high for m in items], axis=0)
        return MBR(low, high)

    def extended_with_point(self, point: npt.ArrayLike) -> "MBR":
        """The smallest MBR covering this rectangle plus one extra point."""
        p = np.asarray(point, dtype=np.float64)
        self._check_compatible_shape(p)
        return MBR(np.minimum(self._low, p), np.maximum(self._high, p))

    def intersection(self, other: "MBR") -> "MBR | None":
        """The overlap rectangle, or ``None`` when disjoint."""
        self._check_compatible(other)
        low = np.maximum(self._low, other._low)
        high = np.minimum(self._high, other._high)
        if np.any(low > high):
            return None
        return MBR(low, high)

    def overlap_volume(self, other: "MBR") -> float:
        """Hyper-volume of the overlap region (0.0 when disjoint)."""
        inter = self.intersection(other)
        return 0.0 if inter is None else inter.volume()

    def enlargement(self, other: "MBR") -> float:
        """Volume growth needed to absorb ``other`` (Guttman's criterion)."""
        return self.union(other).volume() - self.volume()

    def expanded(self, epsilon: float) -> "MBR":
        """This MBR grown by ``epsilon`` on every side (Minkowski sum).

        Range queries with radius ``epsilon`` around a rectangle are
        intersection queries against the expanded rectangle only in the
        L-infinity sense; for Euclidean ``Dmbr`` filtering the expansion is a
        superset filter that is then refined with :meth:`min_distance`.
        """
        epsilon = check_threshold(epsilon)
        return MBR(self._low - epsilon, self._high + epsilon)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def min_distance(self, other: "MBR") -> float:
        """The paper's ``Dmbr`` (Definition 4).

        Per dimension ``k`` the contribution is::

            x_k = l_Bk - h_Ak   if l_Bk > h_Ak     (B entirely to the right)
                  l_Ak - h_Bk   if l_Ak > h_Bk     (B entirely to the left)
                  0             otherwise           (projections overlap)

        and ``Dmbr = sqrt(sum x_k^2)``.  It is the minimum Euclidean distance
        between any pair of points, one in each rectangle (Observation 1),
        and therefore a lower bound of every pointwise distance.
        """
        self._check_compatible(other)
        total = 0.0
        for a_low, a_high, b_low, b_high in zip(
            self._low_tuple, self._high_tuple, other._low_tuple, other._high_tuple
        ):
            if b_low > a_high:
                gap = b_low - a_high
            elif a_low > b_high:
                gap = a_low - b_high
            else:
                continue
            total += gap * gap
        return math.sqrt(total)

    def min_distance_to_point(self, point: npt.ArrayLike) -> float:
        """Minimum Euclidean distance from ``point`` to this rectangle."""
        p = np.asarray(point, dtype=np.float64)
        self._check_compatible_shape(p)
        gaps = np.maximum(0.0, np.maximum(self._low - p, p - self._high))
        return float(np.sqrt(np.sum(gaps * gaps)))

    def max_distance(self, other: "MBR") -> float:
        """Maximum Euclidean distance between any pair of points in the MBRs.

        Not used by the paper's pruning (which needs lower bounds) but
        useful for upper-bound pruning in the k-NN extension.
        """
        self._check_compatible(other)
        spans = np.maximum(
            np.abs(other._high - self._low), np.abs(self._high - other._low)
        )
        return float(np.sqrt(np.sum(spans * spans)))

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return bool(
            np.array_equal(self._low, other._low)
            and np.array_equal(self._high, other._high)
        )

    def __hash__(self) -> int:
        return hash((self._low.tobytes(), self._high.tobytes()))

    def __repr__(self) -> str:
        low = np.array2string(self._low, precision=4, separator=", ")
        high = np.array2string(self._high, precision=4, separator=", ")
        return f"MBR(low={low}, high={high})"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "MBR") -> None:
        if not isinstance(other, MBR):
            raise TypeError(f"expected an MBR, got {type(other).__name__}")
        if len(other._low_tuple) != len(self._low_tuple):
            raise ValueError(
                f"dimension mismatch: {self.dimension} vs {other.dimension}"
            )

    def _check_compatible_shape(self, point: np.ndarray) -> None:
        if point.shape != (self.dimension,):
            raise ValueError(
                f"expected a point of shape ({self.dimension},), got {point.shape}"
            )
