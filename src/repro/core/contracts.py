"""Opt-in runtime verification of the paper's lower-bound contracts.

The correctness of the whole search rests on the inequality chain of
Lemmas 1-3::

    min Dmbr  <=  min Dnorm  <=  D(Q, S)

If any rewrite of the distance kernels breaks one of these bounds, pruning
silently starts to *dismiss relevant sequences* — the worst failure mode a
similarity-search system has, and one no unit test of the rewritten code
alone will catch.  This module provides the machinery to verify the bounds
*at call time* against independently recomputed values:

* :func:`lower_bounds` — a decorator factory attaching a validator to a
  function.  The validator only runs when contract checking is enabled;
  when disabled (the default) the overhead is one dict lookup per call.
* :func:`checking_contracts` — a context manager enabling checking for a
  scope (used by the contract test suite and the analysis audit helpers).
* ``REPRO_CHECK_CONTRACTS=1`` — an environment variable enabling checking
  process-wide (CI runs the tier-1 suite under it).

Violations raise :class:`ContractViolation` (a ``RuntimeError``: the library
itself is in an inconsistent state, not the caller's arguments).

The decorators are applied in :mod:`repro.core.distance`,
:mod:`repro.core.search` and :mod:`repro.core.solution_interval`; the public
analysis-facing surface (including audit helpers) is
:mod:`repro.analysis.contracts`.
"""

from __future__ import annotations

import contextvars
import functools
import os
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import Any, TypeVar

__all__ = [
    "BOUND_TOLERANCE",
    "CONTRACTS_ENV_VAR",
    "ContractViolation",
    "checking_contracts",
    "contracts_enabled",
    "lower_bounds",
]

_F = TypeVar("_F", bound=Callable[..., Any])

#: Environment variable that enables contract checking process-wide.
CONTRACTS_ENV_VAR = "REPRO_CHECK_CONTRACTS"

#: Absolute slack allowed when comparing two independently computed floats.
#: The bounds are exact in real arithmetic; the tolerance only absorbs
#: round-off between different summation orders.
BOUND_TOLERANCE = 1e-9

_TRUTHY = frozenset({"1", "true", "yes", "on"})

_scope_depth: contextvars.ContextVar[int] = contextvars.ContextVar(
    "repro_contract_scope_depth", default=0
)


class ContractViolation(RuntimeError):
    """A verified lower-bound (or structural) contract does not hold.

    Raised only while contract checking is enabled; signals a bug in the
    library's pruning/distance layer, never bad caller input.
    """


def contracts_enabled() -> bool:
    """Whether contract validators run for the current context."""
    if _scope_depth.get() > 0:
        return True
    return os.environ.get(CONTRACTS_ENV_VAR, "").strip().lower() in _TRUTHY


@contextmanager
def checking_contracts() -> Iterator[None]:
    """Enable contract checking for the duration of the ``with`` block.

    Nested uses are allowed; checking stays on until the outermost block
    exits.  The toggle is a :mod:`contextvars` variable, so concurrent
    tasks/threads with separate contexts do not observe each other's scope.
    """
    token = _scope_depth.set(_scope_depth.get() + 1)
    try:
        yield
    finally:
        _scope_depth.reset(token)


def lower_bounds(
    validator: Callable[..., None], *, label: str | None = None
) -> Callable[[_F], _F]:
    """Attach a call-time validator to a function.

    Parameters
    ----------
    validator:
        Called as ``validator(result, *args, **kwargs)`` after every
        invocation of the wrapped function while checking is enabled; must
        raise :class:`ContractViolation` on a broken bound.
    label:
        Optional human-readable contract name (defaults to the validator's
        ``__name__``), exposed as ``__contract_label__`` on the wrapper.

    Notes
    -----
    The wrapped function's behaviour is unchanged: the validator sees the
    result but cannot alter it, and when checking is disabled the only
    cost is one environment lookup.
    """

    def decorate(func: _F) -> _F:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = func(*args, **kwargs)
            if contracts_enabled():
                validator(result, *args, **kwargs)
            return result

        wrapper.__contract_validator__ = validator  # type: ignore[attr-defined]
        wrapper.__contract_label__ = (  # type: ignore[attr-defined]
            label if label is not None else validator.__name__
        )
        return wrapper  # type: ignore[return-value]

    return decorate
