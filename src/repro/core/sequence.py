"""The multidimensional data sequence model (Definition 1 of the paper).

A *multidimensional data sequence* (MDS) ``S = (S[1], S[2], ..., S[k])`` is a
series of component vectors, each composed of ``n`` scalar entries.  The paper
normalises the data space to the unit hyper-cube ``[0,1]^n`` so that the
maximum possible point distance is the cube diagonal ``sqrt(n)``.

One-dimensional time series are the special case ``n = 1``; sliding-window
embeddings of time series (Faloutsos et al. '94) are the case ``n = w``.
Both are supported by :meth:`MultidimensionalSequence.from_time_series`.

The paper indexes sequence entries from 1 (``S[1]`` is the first element and
``S[i:j]`` is inclusive on both ends).  The Python API is zero-based with
half-open slices, as any Python user expects; the paper-style accessors
:meth:`MultidimensionalSequence.entry` and
:meth:`MultidimensionalSequence.subsequence` provide the 1-based inclusive
view used when transcribing formulas from the paper.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    import numpy.typing as npt

__all__ = ["MultidimensionalSequence", "as_sequence"]


class MultidimensionalSequence:
    """An immutable sequence of points in ``[0,1]^n`` (Definition 1).

    Parameters
    ----------
    points:
        Array-like of shape ``(length, dimension)``.  A 1-d array of shape
        ``(length,)`` is promoted to ``(length, 1)``, matching the paper's
        remark that time-series data is the one-dimensional special case.
    sequence_id:
        Optional identifier carried through database insertion and search
        results.  Defaults to ``None`` (anonymous sequence).
    validate_unit_cube:
        When true (default), reject points outside ``[0, 1]^n``.  The paper
        assumes a normalised space; set to ``False`` for raw data that will
        be normalised later with :meth:`normalized`.

    Examples
    --------
    >>> import numpy as np
    >>> seq = MultidimensionalSequence(np.array([[0.1, 0.2], [0.3, 0.4]]))
    >>> len(seq)
    2
    >>> seq.dimension
    2
    >>> seq.entry(1)          # paper-style, 1-based
    array([0.1, 0.2])
    """

    __slots__ = ("_points", "_sequence_id")

    def __init__(
        self,
        points: npt.ArrayLike,
        sequence_id: object = None,
        *,
        validate_unit_cube: bool = True,
    ) -> None:
        arr = np.asarray(points, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.ndim != 2:
            raise ValueError(
                f"points must be a (length, dimension) array, got shape {arr.shape}"
            )
        if arr.shape[0] == 0:
            raise ValueError("a sequence must contain at least one point")
        if arr.shape[1] == 0:
            raise ValueError("a sequence must have dimension >= 1")
        if not np.all(np.isfinite(arr)):
            raise ValueError("sequence points must be finite")
        if validate_unit_cube and (arr.min() < 0.0 or arr.max() > 1.0):
            raise ValueError(
                "points fall outside the unit hyper-cube [0,1]^n; pass "
                "validate_unit_cube=False and call .normalized() for raw data"
            )
        # Copy before freezing so the caller's array is never mutated/frozen.
        arr = np.array(arr, dtype=np.float64, copy=True, order="C")
        arr.setflags(write=False)
        self._points = arr
        self._sequence_id = sequence_id

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_time_series(
        cls,
        values: npt.ArrayLike,
        *,
        window: int = 1,
        sequence_id: object = None,
        validate_unit_cube: bool = True,
    ) -> "MultidimensionalSequence":
        """Build an MDS from a scalar time series.

        With ``window == 1`` this is the paper's one-dimensional special
        case.  With ``window == w > 1`` the series is embedded with a sliding
        window of size ``w`` (the FRM'94 construction the paper's Section 1
        recounts): element ``i`` of the result is
        ``(values[i], ..., values[i + w - 1])``.

        Parameters
        ----------
        values:
            1-d array-like of scalars.
        window:
            Sliding-window width ``w >= 1``.
        """
        series = np.asarray(values, dtype=np.float64).reshape(-1)
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if series.size < window:
            raise ValueError(
                f"series of length {series.size} is shorter than window {window}"
            )
        if window == 1:
            points = series.reshape(-1, 1)
        else:
            count = series.size - window + 1
            points = np.lib.stride_tricks.sliding_window_view(series, window)[:count]
        return cls(
            np.array(points),
            sequence_id=sequence_id,
            validate_unit_cube=validate_unit_cube,
        )

    def normalized(self) -> "MultidimensionalSequence":
        """Return a copy min-max normalised per dimension into ``[0,1]^n``.

        Constant dimensions map to 0.5 (the centre of the unit interval)
        rather than dividing by zero.
        """
        lo = self._points.min(axis=0)
        hi = self._points.max(axis=0)
        span = hi - lo
        safe = np.where(span > 0, span, 1.0)
        scaled = (self._points - lo) / safe
        scaled[:, span == 0] = 0.5
        return MultidimensionalSequence(scaled, sequence_id=self._sequence_id)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """The read-only ``(length, dimension)`` point array."""
        return self._points

    @property
    def sequence_id(self) -> object:
        """Identifier supplied at construction (or ``None``)."""
        return self._sequence_id

    @property
    def dimension(self) -> int:
        """Number of scalar entries per point (the paper's ``n``)."""
        return self._points.shape[1]

    def __len__(self) -> int:
        return self._points.shape[0]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._points)

    def __getitem__(
        self, index: "int | slice"
    ) -> "np.ndarray | MultidimensionalSequence":
        """Zero-based access: a point for an int, a sub-MDS for a slice."""
        if isinstance(index, slice):
            sub = self._points[index]
            if sub.shape[0] == 0:
                raise IndexError(f"empty slice {index} of sequence length {len(self)}")
            return MultidimensionalSequence(sub, sequence_id=self._sequence_id)
        return self._points[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultidimensionalSequence):
            return NotImplemented
        return (
            self._points.shape == other._points.shape
            and bool(np.array_equal(self._points, other._points))
        )

    def __hash__(self) -> int:
        return hash((self._points.shape, self._points.tobytes()))

    def __repr__(self) -> str:
        ident = f" id={self._sequence_id!r}" if self._sequence_id is not None else ""
        return (
            f"MultidimensionalSequence(length={len(self)}, "
            f"dimension={self.dimension}{ident})"
        )

    # ------------------------------------------------------------------
    # Paper-style (1-based, inclusive) accessors
    # ------------------------------------------------------------------
    def entry(self, i: int) -> np.ndarray:
        """Return ``S[i]`` with the paper's 1-based indexing."""
        if not 1 <= i <= len(self):
            raise IndexError(f"entry index {i} outside [1, {len(self)}]")
        return self._points[i - 1]

    def subsequence(self, i: int, j: int) -> "MultidimensionalSequence":
        """Return ``S[i:j]`` — the paper's inclusive, 1-based subsequence."""
        if not 1 <= i <= j <= len(self):
            raise IndexError(
                f"subsequence [{i}:{j}] outside [1, {len(self)}] or reversed"
            )
        return MultidimensionalSequence(
            self._points[i - 1 : j], sequence_id=self._sequence_id
        )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def windows(self, width: int) -> Iterator["MultidimensionalSequence"]:
        """Yield every contiguous subsequence of ``width`` points, in order.

        This enumerates the alignments used by the sliding distance of
        Definition 3 and by the sequential-scan baseline.
        """
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if width > len(self):
            return
        for start in range(len(self) - width + 1):
            yield MultidimensionalSequence(
                self._points[start : start + width], sequence_id=self._sequence_id
            )

    def concatenate(
        self, other: "MultidimensionalSequence"
    ) -> "MultidimensionalSequence":
        """Return the concatenation ``self ++ other`` (dimensions must match)."""
        if other.dimension != self.dimension:
            raise ValueError(
                f"cannot concatenate dimension {self.dimension} with "
                f"{other.dimension}"
            )
        return MultidimensionalSequence(
            np.vstack([self._points, other.points]), sequence_id=self._sequence_id
        )


def as_sequence(
    data: "MultidimensionalSequence | npt.ArrayLike",
    sequence_id: object = None,
) -> MultidimensionalSequence:
    """Coerce arrays or sequences of points into a :class:`MultidimensionalSequence`.

    Existing instances pass through unchanged (the id is *not* overwritten).
    """
    if isinstance(data, MultidimensionalSequence):
        return data
    return MultidimensionalSequence(data, sequence_id=sequence_id)
