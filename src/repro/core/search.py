"""The three-phase similarity search (Section 3.4.2 of the paper).

Algorithm SIMILARITY_SEARCH:

* **Phase 1 — query partitioning.**  The query sequence is partitioned into
  MBRs with the same MCOST algorithm used for data sequences.
* **Phase 2 — first pruning (index search).**  For each query MBR the
  R-tree is probed for data-segment MBRs with ``Dmbr <= eps``; every
  sequence owning at least one such segment becomes a candidate
  (``AS_mbr``).  Lemma 1 guarantees no false dismissals.
* **Phase 3 — second pruning and solution intervals.**  For each candidate
  sequence and each query MBR, ``Dnorm`` is evaluated against every data
  segment; sequences with some ``Dnorm <= eps`` survive (``AS_norm``,
  Lemmas 2-3: still no false dismissals for sequence selection) and the
  points participating in each sub-threshold ``Dnorm`` computation are
  accumulated into the sequence's approximate solution interval (§3.3).

A k-nearest-sequences extension (:meth:`SimilaritySearch.knn`) implements
the optimal multi-step algorithm of Seidl & Kriegel over the same ``Dmbr``
lower bound — not part of the paper, but the natural follow-up query its
metrics enable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.contracts import BOUND_TOLERANCE, ContractViolation, lower_bounds
from repro.core.database import SequenceDatabase
from repro.core.distance import (
    NormalizedDistance,
    normalized_distance_row,
    sequence_distance,
    sliding_mean_distances,
)
from repro.core.partitioning import PartitionedSequence, partition_sequence
from repro.core.sequence import MultidimensionalSequence
from repro.core.solution_interval import IntervalSet
from repro.util.budget import checkpoint
from repro.util.validation import check_threshold

if TYPE_CHECKING:
    import numpy.typing as npt

    SequenceLike = MultidimensionalSequence | npt.ArrayLike

__all__ = [
    "MatchExplanation",
    "SearchResult",
    "SearchStats",
    "SimilaritySearch",
    "SubsequenceHit",
]


@dataclass(frozen=True)
class SubsequenceHit:
    """One ranked subsequence match: where, and at what exact distance."""

    distance: float
    sequence_id: object
    offset: int
    length: int


@dataclass(frozen=True)
class MatchExplanation:
    """The full bound chain for one (query, sequence, epsilon) triple.

    Produced by :meth:`SimilaritySearch.explain`.  The invariant
    ``min_dmbr <= min_dnorm <= exact_distance`` always holds (Lemmas 1-3),
    so ``survives_phase2 >= survives_phase3 >= truly_relevant`` as booleans
    — a sequence pruned despite being relevant would be a correctness bug.
    """

    sequence_id: object
    epsilon: float
    #: Whether the long-query direction (roles swapped) was used.
    long_query: bool
    query_segments: int
    data_segments: int
    min_dmbr: float
    min_dnorm: float
    exact_distance: float
    survives_phase2: bool
    survives_phase3: bool
    truly_relevant: bool
    #: Probe segment (query MBR index, or data MBR index for long queries)
    #: achieving the best Dnorm.
    best_probe_segment: int
    best_anchor: int
    best_window: tuple[int, int]

    def verdict(self) -> str:
        """One-line human-readable summary."""
        if self.truly_relevant:
            status = "relevant, retrieved"
        elif self.survives_phase3:
            status = "false hit (passes both bounds, fails exact)"
        elif self.survives_phase2:
            status = "pruned by Dnorm (Phase 3)"
        else:
            status = "pruned by Dmbr (Phase 2)"
        return (
            f"{self.sequence_id!r} @ eps={self.epsilon}: {status} "
            f"[Dmbr {self.min_dmbr:.4f} <= Dnorm {self.min_dnorm:.4f} "
            f"<= D {self.exact_distance:.4f}]"
        )


@dataclass
class SearchStats:
    """Work and time accounting for one search call."""

    #: Wall-clock seconds per phase.
    phase1_seconds: float = 0.0
    phase2_seconds: float = 0.0
    phase3_seconds: float = 0.0
    #: Index node accesses performed during Phase 2.
    node_accesses: int = 0
    #: Number of query MBRs produced by Phase 1.
    query_segments: int = 0
    #: Sequences surviving Phase 2 / Phase 3.
    candidates_after_dmbr: int = 0
    answers_after_dnorm: int = 0
    #: ``Dnorm`` evaluations actually performed (after fast-path skips).
    dnorm_evaluations: int = 0
    #: ``Dmbr`` rows computed (one per surviving query-MBR x sequence pair).
    dmbr_rows: int = 0

    @property
    def total_seconds(self) -> float:
        """End-to-end search time."""
        return self.phase1_seconds + self.phase2_seconds + self.phase3_seconds


@dataclass
class SearchResult:
    """Everything one range search produces.

    Attributes
    ----------
    epsilon:
        The threshold searched with.
    query_partition:
        Phase 1's partition of the query sequence.
    candidates:
        Sequence ids surviving Phase 2 (the paper's ``AS_mbr``), in database
        insertion order.
    answers:
        Sequence ids surviving Phase 3 (``AS_norm``), in database order.
    solution_intervals:
        Approximate solution interval per answer sequence (only populated
        when the search was asked to find intervals).
    stats:
        Work/time accounting.
    """

    epsilon: float
    query_partition: PartitionedSequence
    candidates: list[object]
    answers: list[object]
    solution_intervals: dict[object, IntervalSet] = field(default_factory=dict)
    stats: SearchStats = field(default_factory=SearchStats)

    def __contains__(self, sequence_id: object) -> bool:
        return sequence_id in set(self.answers)


def _validate_search_no_false_dismissals(
    result: SearchResult,
    engine: "SimilaritySearch",
    query: SequenceLike,
    epsilon: float,
    *,
    find_intervals: bool = True,
) -> None:
    """Lemmas 1-3 end to end: no stored sequence with ``D(Q, S)`` inside
    the threshold may be missing from the answer set.

    This recomputes the exact sliding distance against *every* stored
    sequence, so it is a full sequential scan per search — the price of
    certainty, paid only while contract checking is enabled.
    """
    query_sequence = result.query_partition.sequence
    answers = set(result.answers)
    candidates = set(result.candidates)
    for sequence_id, partition in engine.database.partitions():
        exact = sequence_distance(query_sequence, partition.sequence)
        if exact >= epsilon - BOUND_TOLERANCE:
            continue
        if sequence_id not in candidates:
            raise ContractViolation(
                f"false dismissal in Phase 2: sequence {sequence_id!r} has "
                f"exact distance {exact!r} <= epsilon {epsilon!r} but was "
                f"pruned by the Dmbr index probe — Lemma 1 violated"
            )
        if sequence_id not in answers:
            raise ContractViolation(
                f"false dismissal in Phase 3: sequence {sequence_id!r} has "
                f"exact distance {exact!r} <= epsilon {epsilon!r} but was "
                f"pruned by Dnorm — Lemmas 2-3 violated"
            )


def _validate_explanation(
    result: "MatchExplanation",
    engine: "SimilaritySearch",
    query: SequenceLike,
    epsilon: float,
    sequence_id: object,
) -> None:
    """The reported bound chain must be ordered: Dmbr <= Dnorm <= D."""
    if result.min_dmbr > result.min_dnorm + BOUND_TOLERANCE:
        raise ContractViolation(
            f"explain({sequence_id!r}): min Dmbr {result.min_dmbr!r} exceeds "
            f"min Dnorm {result.min_dnorm!r} — Lemma 2 violated"
        )
    if result.min_dnorm > result.exact_distance + BOUND_TOLERANCE:
        raise ContractViolation(
            f"explain({sequence_id!r}): min Dnorm {result.min_dnorm!r} "
            f"exceeds the exact distance {result.exact_distance!r} — "
            f"Lemma 3 violated"
        )


class SimilaritySearch:
    """Range and k-NN similarity search over a :class:`SequenceDatabase`."""

    def __init__(self, database: SequenceDatabase) -> None:
        if not isinstance(database, SequenceDatabase):
            raise TypeError(
                f"expected a SequenceDatabase, got {type(database).__name__}"
            )
        self.database = database

    # ------------------------------------------------------------------
    # Range search (the paper's algorithm)
    # ------------------------------------------------------------------
    @lower_bounds(
        _validate_search_no_false_dismissals, label="no false dismissals"
    )
    def search(
        self,
        query: SequenceLike,
        epsilon: float,
        *,
        find_intervals: bool = True,
    ) -> SearchResult:
        """Run SIMILARITY_SEARCH for one query sequence and threshold.

        Parameters
        ----------
        query:
            The query sequence (any length; both shorter and longer than
            data sequences is allowed, per the paper's "long query" case).
        epsilon:
            Similarity threshold in the normalised space.
        find_intervals:
            When true (default), Phase 3 also assembles the approximate
            solution interval of every answer sequence.

        Returns
        -------
        SearchResult
        """
        epsilon = check_threshold(epsilon)
        if not isinstance(query, MultidimensionalSequence):
            query = MultidimensionalSequence(query)
        if query.dimension != self.database.dimension:
            raise ValueError(
                f"query dimension {query.dimension} != database dimension "
                f"{self.database.dimension}"
            )

        stats = SearchStats()

        # Phase 1: partition the query sequence.
        started = time.perf_counter()
        query_partition = partition_sequence(
            query,
            cost_constant=self.database.cost_constant,
            max_points=self.database.max_points,
        )
        stats.phase1_seconds = time.perf_counter() - started
        stats.query_segments = len(query_partition)

        # Phase 2: first pruning via the Dmbr index probe.
        started = time.perf_counter()
        index = self.database.index
        accesses_before = index.stats.node_accesses
        candidate_ids: set[object] = set()
        for segment in query_partition:
            checkpoint("search.phase2")
            for entry in index.search_within(segment.mbr, epsilon):
                candidate_ids.add(entry.payload.sequence_id)
        stats.node_accesses = index.stats.node_accesses - accesses_before
        candidates = [sid for sid in self.database.ids() if sid in candidate_ids]
        stats.phase2_seconds = time.perf_counter() - started
        stats.candidates_after_dmbr = len(candidates)

        # Phase 3: second pruning with Dnorm + solution intervals.
        started = time.perf_counter()
        answers: list[object] = []
        intervals: dict[object, IntervalSet] = {}
        for sequence_id in candidates:
            checkpoint("search.phase3")
            partition = self.database.partition(sequence_id)
            matched, interval = self._examine_candidate(
                query_partition,
                partition,
                epsilon,
                find_intervals=find_intervals,
                stats=stats,
            )
            if matched:
                answers.append(sequence_id)
                if find_intervals:
                    intervals[sequence_id] = interval
        stats.phase3_seconds = time.perf_counter() - started
        stats.answers_after_dnorm = len(answers)

        return SearchResult(
            epsilon=epsilon,
            query_partition=query_partition,
            candidates=candidates,
            answers=answers,
            solution_intervals=intervals,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Single-candidate building blocks (reused by the serving cache)
    # ------------------------------------------------------------------
    def candidate_lower_bound(
        self, query_partition: PartitionedSequence, sequence_id: object
    ) -> float:
        """The Phase-2 bound ``min Dmbr`` for one stored sequence.

        The minimum over all (query segment, data segment) MBR pairs —
        exactly the quantity the index probe thresholds, so a sequence is
        a Phase-2 candidate at ``eps`` iff this value is ``<= eps``.
        ``Dmbr`` is symmetric in its two rectangles, so the result is
        independent of the long-query role swap.
        """
        partition = self.database.partition(sequence_id)
        return min(
            float(partition.mbr_distance_row(segment.mbr).min())
            for segment in query_partition
        )

    def candidate_within(
        self,
        query_partition: PartitionedSequence,
        sequence_id: object,
        epsilon: float,
    ) -> bool:
        """Whether one stored sequence is a Phase-2 candidate at ``epsilon``.

        Equivalent to ``candidate_lower_bound(...) <= epsilon`` but stops
        at the first query segment whose ``Dmbr`` row already reaches the
        threshold — membership needs an existence witness, not the exact
        minimum.  The ε-aware result cache uses this to re-derive the
        Phase-2 verdict for cached candidates without an index probe.
        """
        epsilon = check_threshold(epsilon)
        partition = self.database.partition(sequence_id)
        return any(
            float(partition.mbr_distance_row(segment.mbr).min()) <= epsilon
            for segment in query_partition
        )

    def match_candidate(
        self,
        query_partition: PartitionedSequence,
        sequence_id: object,
        epsilon: float,
        *,
        find_intervals: bool = True,
    ) -> tuple[bool, IntervalSet]:
        """Run Phase 3 for a single stored sequence.

        Evaluates ``Dnorm`` between the pre-partitioned query and the
        stored sequence exactly as :meth:`search` does for each Phase-2
        survivor, returning whether the sequence matches at ``epsilon``
        and (when requested) its approximate solution interval.  The
        ε-aware result cache of :mod:`repro.service` uses this to refine a
        cached wider-threshold result down to a tighter one — sound by
        the monotonicity of Lemmas 2-3 — without re-running Phases 1-2.
        """
        epsilon = check_threshold(epsilon)
        partition = self.database.partition(sequence_id)
        return self._examine_candidate(
            query_partition,
            partition,
            epsilon,
            find_intervals=find_intervals,
            stats=SearchStats(),
        )

    def _examine_candidate(
        self,
        query_partition: PartitionedSequence,
        partition: PartitionedSequence,
        epsilon: float,
        *,
        find_intervals: bool,
        stats: SearchStats,
    ) -> tuple[bool, IntervalSet]:
        """Phase 3 for one candidate: any ``Dnorm <= eps``?  Collect spans.

        In the paper's long-query case (query holds more points than the
        data sequence) the roles of the two partitions are swapped before
        applying ``Dnorm`` — Lemmas 2-3 assume the query is the shorter
        sequence, and the swap keeps the bound sound (see
        :func:`repro.core.distance.min_normalized_distance`).  A match then
        contributes the matching *data* segment's full point span to the
        solution interval, since the whole data segment aligns inside the
        query.
        """
        query_points = len(query_partition.sequence)
        data_points = len(partition.sequence)
        if query_points > data_points:
            return self._examine_candidate_long_query(
                query_partition,
                partition,
                epsilon,
                find_intervals=find_intervals,
                stats=stats,
            )
        counts = partition.counts
        segments = partition.segments
        matched = False
        spans: list[tuple[int, int]] = []
        for query_segment in query_partition:
            checkpoint("search.phase3.candidate")
            row = partition.mbr_distance_row(query_segment.mbr)
            stats.dmbr_rows += 1
            if float(row.min()) > epsilon:
                # Dnorm is a weighted mean of row values, so it cannot fall
                # below the row minimum: no anchor of this pair can match.
                continue
            matches = normalized_distance_row(
                query_segment.mbr,
                int(query_segment.count),
                partition.mbrs,
                counts,
                dmbr_row=row,
                only_below=epsilon,
            )
            stats.dnorm_evaluations += len(counts)
            if matches:
                matched = True
                if not find_intervals:
                    return True, IntervalSet()
                for result in matches:
                    for t, first, last in result.involved_points(counts):
                        base = segments[t].start
                        spans.append((base + first, base + last + 1))
        return matched, IntervalSet(spans)

    def _examine_candidate_long_query(
        self,
        query_partition: PartitionedSequence,
        partition: PartitionedSequence,
        epsilon: float,
        *,
        find_intervals: bool,
        stats: SearchStats,
    ) -> tuple[bool, IntervalSet]:
        """Phase 3 with swapped roles: data segments probe the query MBRs."""
        query_mbrs = query_partition.mbrs
        query_counts = query_partition.counts
        matched = False
        spans: list[tuple[int, int]] = []
        for data_segment in partition:
            checkpoint("search.phase3.long-query")
            row = query_partition.mbr_distance_row(data_segment.mbr)
            stats.dmbr_rows += 1
            if float(row.min()) > epsilon:
                continue
            matches = normalized_distance_row(
                data_segment.mbr,
                int(data_segment.count),
                query_mbrs,
                query_counts,
                dmbr_row=row,
                only_below=epsilon,
            )
            stats.dnorm_evaluations += len(query_counts)
            if matches:
                matched = True
                if not find_intervals:
                    return True, IntervalSet()
                spans.append((data_segment.start, data_segment.stop))
        return matched, IntervalSet(spans)

    # ------------------------------------------------------------------
    # k-nearest sequences (extension)
    # ------------------------------------------------------------------
    def knn(self, query: SequenceLike, k: int) -> list[tuple[float, object]]:
        """The ``k`` database sequences nearest to ``query`` under ``D``.

        Optimal multi-step k-NN (Seidl & Kriegel '98): sequences are ranked
        by their ``Dmbr`` lower bound (Lemma 1) and refined with the exact
        sliding distance in ascending bound order; refinement stops as soon
        as the next lower bound exceeds the current k-th exact distance,
        which guarantees an exact answer with the fewest refinements.

        Returns
        -------
        list of (distance, sequence_id)
            The exact distances, ascending; fewer than ``k`` when the
            database is smaller than ``k``.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not isinstance(query, MultidimensionalSequence):
            query = MultidimensionalSequence(query)
        if query.dimension != self.database.dimension:
            raise ValueError(
                f"query dimension {query.dimension} != database dimension "
                f"{self.database.dimension}"
            )
        query_partition = partition_sequence(
            query,
            cost_constant=self.database.cost_constant,
            max_points=self.database.max_points,
        )

        bounds: list[tuple[float, object]] = []
        for sequence_id, partition in self.database.partitions():
            checkpoint("knn.bounds")
            lower = min(
                float(partition.mbr_distance_row(segment.mbr).min())
                for segment in query_partition
            )
            bounds.append((lower, sequence_id))
        bounds.sort(key=lambda pair: pair[0])

        exact: list[tuple[float, object]] = []
        for lower, sequence_id in bounds:
            checkpoint("knn.refine")
            if len(exact) >= k and lower > exact[k - 1][0]:
                break
            distance = sequence_distance(
                query, self.database.sequence(sequence_id)
            )
            exact.append((distance, sequence_id))
            exact.sort(key=lambda pair: pair[0])
        return exact[:k]

    def knn_subsequences(
        self, query: SequenceLike, k: int, *, exclude_overlapping: bool = True
    ) -> list[SubsequenceHit]:
        """The ``k`` best *subsequence* matches across the database.

        Where :meth:`knn` ranks whole sequences by ``D(Q, S)``, this ranks
        individual alignments — "the five best scenes anywhere in the
        archive".  Sequences are refined in ascending order of their
        Lemma-1 lower bound (``min Dmbr``), evaluating the exact sliding
        ``Dmean`` at every alignment; refinement stops when the next
        sequence's bound exceeds the current k-th best alignment.

        Parameters
        ----------
        query:
            The query sequence; must be no longer than the sequences it is
            to be found in (longer sequences are skipped).
        k:
            Number of hits to return.
        exclude_overlapping:
            When true (default), at most one hit per overlapping run of
            alignments is kept (the local minimum), so the k hits are k
            genuinely different places rather than one place k times.

        Returns
        -------
        list of SubsequenceHit
            Ascending by exact distance; fewer than ``k`` when the corpus
            has fewer eligible alignments.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not isinstance(query, MultidimensionalSequence):
            query = MultidimensionalSequence(query)
        if query.dimension != self.database.dimension:
            raise ValueError(
                f"query dimension {query.dimension} != database dimension "
                f"{self.database.dimension}"
            )
        query_partition = partition_sequence(
            query,
            cost_constant=self.database.cost_constant,
            max_points=self.database.max_points,
        )
        length = len(query)

        bounds: list[tuple[float, object]] = []
        for sequence_id, partition in self.database.partitions():
            if len(partition.sequence) < length:
                continue  # no alignment of the full query exists
            lower = min(
                float(partition.mbr_distance_row(segment.mbr).min())
                for segment in query_partition
            )
            bounds.append((lower, sequence_id))
        bounds.sort(key=lambda pair: pair[0])

        hits: list[SubsequenceHit] = []
        for lower, sequence_id in bounds:
            if len(hits) >= k and lower > hits[k - 1].distance:
                break
            sequence = self.database.sequence(sequence_id)
            distances = sliding_mean_distances(query, sequence)
            offsets = self._candidate_offsets(distances, exclude_overlapping)
            for offset in offsets:
                hits.append(
                    SubsequenceHit(
                        distance=float(distances[offset]),
                        sequence_id=sequence_id,
                        offset=int(offset),
                        length=length,
                    )
                )
            hits.sort(key=lambda hit: hit.distance)
            del hits[max(k, 0) * 4 :]  # keep a slack buffer while refining
        return hits[:k]

    # ------------------------------------------------------------------
    # Explanation (debugging / teaching aid)
    # ------------------------------------------------------------------
    @lower_bounds(_validate_explanation, label="Dmbr <= Dnorm <= D chain")
    def explain(
        self, query: SequenceLike, epsilon: float, sequence_id: object
    ) -> MatchExplanation:
        """Why does (or doesn't) one sequence match this query?

        Runs the two pruning levels against a single stored sequence and
        reports every bound involved: the minimum ``Dmbr`` per query MBR,
        the minimum ``Dnorm`` with its winning anchor/window, and the exact
        sliding distance — the chain
        ``min Dmbr <= min Dnorm <= D(Q, S)`` made visible.

        Returns
        -------
        MatchExplanation
        """
        epsilon = check_threshold(epsilon)
        if not isinstance(query, MultidimensionalSequence):
            query = MultidimensionalSequence(query)
        if query.dimension != self.database.dimension:
            raise ValueError(
                f"query dimension {query.dimension} != database dimension "
                f"{self.database.dimension}"
            )
        partition = self.database.partition(sequence_id)
        query_partition = partition_sequence(
            query,
            cost_constant=self.database.cost_constant,
            max_points=self.database.max_points,
        )

        long_query = len(query) > len(partition.sequence)
        if long_query:
            probe_partition, target_partition = partition, query_partition
        else:
            probe_partition, target_partition = query_partition, partition

        per_probe_dmbr: list[float] = []
        best_dnorm: tuple[int, NormalizedDistance] | None = None
        for segment in probe_partition:
            row = target_partition.mbr_distance_row(segment.mbr)
            per_probe_dmbr.append(float(row.min()))
            for result in normalized_distance_row(
                segment.mbr,
                int(segment.count),
                target_partition.mbrs,
                target_partition.counts,
                dmbr_row=row,
            ):
                if best_dnorm is None or result.value < best_dnorm[1].value:
                    best_dnorm = (segment.index, result)

        exact = sequence_distance(query, partition.sequence)
        min_dmbr = min(per_probe_dmbr)
        if best_dnorm is None:
            raise RuntimeError(
                "explain() found no Dnorm result — empty partition"
            )
        probe_index, dnorm_result = best_dnorm
        return MatchExplanation(
            sequence_id=sequence_id,
            epsilon=epsilon,
            long_query=long_query,
            query_segments=len(query_partition),
            data_segments=len(partition),
            min_dmbr=min_dmbr,
            min_dnorm=float(dnorm_result.value),
            exact_distance=float(exact),
            survives_phase2=min_dmbr <= epsilon,
            survives_phase3=dnorm_result.value <= epsilon,
            truly_relevant=exact <= epsilon,
            best_probe_segment=probe_index,
            best_anchor=dnorm_result.target_index,
            best_window=dnorm_result.window,
        )

    @staticmethod
    def _candidate_offsets(
        distances: np.ndarray, exclude_overlapping: bool
    ) -> np.ndarray:
        if not exclude_overlapping:
            return np.arange(distances.shape[0])
        if distances.shape[0] == 1:
            return np.array([0])
        # Local minima of the alignment-distance profile: one hit per dip.
        interior = (
            (distances[1:-1] <= distances[:-2])
            & (distances[1:-1] <= distances[2:])
        )
        offsets = [0] if distances[0] <= distances[1] else []
        offsets.extend((np.nonzero(interior)[0] + 1).tolist())
        if distances[-1] < distances[-2]:
            offsets.append(distances.shape[0] - 1)
        return np.array(offsets, dtype=np.int64)
