"""Index-backend registry: dependency inversion between ``core`` and ``index``.

The layered architecture (enforced by ``tools/repro_lint`` rule REP105)
forbids ``core`` from importing ``repro.index`` — the spatial index is a
*plugin* of the data model, not a dependency.  This module is the seam:
``core.database`` asks the registry for an index by name, and
``repro.index`` registers its implementations when it is imported.

For plain library use nothing changes: the registry lazily imports
``repro.index`` (by module *name*, the one sanctioned direction-free
mechanism) the first time an unknown backend is requested, so
``SequenceDatabase(dimension=3)`` keeps working without any explicit
registration.  Third-party backends can register their own factories::

    from repro.core.backends import register_index_backend

    register_index_backend(
        "mytree",
        factory=lambda dimension, max_entries: MyTree(dimension),
    )
"""

from __future__ import annotations

import importlib
import threading
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:
    from repro.core.mbr import MBR

__all__ = [
    "IndexBackend",
    "IndexBackendSpec",
    "IndexEntry",
    "available_backends",
    "bulk_build_index",
    "create_index",
    "deserialize_index",
    "get_backend",
    "register_index_backend",
    "serialize_index",
]

#: Module imported (lazily, by name) to register the default backends.
_DEFAULT_PROVIDER_MODULE = "repro.index"


class IndexEntry(Protocol):
    """One leaf entry returned by an index probe."""

    @property
    def mbr(self) -> MBR: ...

    @property
    def payload(self) -> object: ...


class IndexBackend(Protocol):
    """The structural interface ``core`` requires of a spatial index.

    Any object with these methods can serve as a ``SequenceDatabase``
    index; the R-tree family in :mod:`repro.index` provides the defaults.
    """

    def insert(self, mbr: MBR, payload: object) -> None: ...

    def delete(self, mbr: MBR, payload: object) -> bool: ...

    def search_within(
        self, query_mbr: MBR, epsilon: float
    ) -> Iterator[IndexEntry]: ...

    def __len__(self) -> int: ...


#: ``factory(dimension, max_entries) -> IndexBackend``
Factory = Callable[[int, int], IndexBackend]
#: ``bulk_factory(items, dimension, max_entries) -> IndexBackend``
BulkFactory = Callable[
    [Sequence[tuple["MBR", object]], int, int], IndexBackend
]
#: ``dumps(index) -> bytes`` — flat persistence of a built index.
Dumps = Callable[[IndexBackend], bytes]
#: ``loads(data) -> IndexBackend`` — inverse of ``Dumps``.
Loads = Callable[[bytes], IndexBackend]


@dataclass(frozen=True)
class IndexBackendSpec:
    """How to build one kind of index.

    Attributes
    ----------
    name:
        Registry key (the database's ``index_kind``).
    factory:
        Builds an empty, incrementally-updatable index; ``None`` for
        bulk-only backends.
    bulk_factory:
        Builds a packed index from all items at once; ``None`` falls back
        to ``factory`` plus an insert loop.
    incremental:
        Whether the backend supports in-place insert/delete.  Bulk-only
        backends (STR packing) are rebuilt lazily by the database instead.
    dumps / loads:
        Optional flat-serialisation pair: ``dumps`` turns a built index
        into bytes and ``loads`` restores it with identical layout.  When
        present, :meth:`~repro.core.database.SequenceDatabase.save` embeds
        the serialised tree so :meth:`~SequenceDatabase.load` can skip
        index construction entirely (the startup path of ``repro serve``).
    """

    name: str
    factory: Factory | None
    bulk_factory: BulkFactory | None = None
    incremental: bool = True
    dumps: Dumps | None = None
    loads: Loads | None = None

    def __post_init__(self) -> None:
        if self.factory is None and self.bulk_factory is None:
            raise ValueError(
                f"backend {self.name!r} needs a factory or a bulk_factory"
            )
        if self.incremental and self.factory is None:
            raise ValueError(
                f"incremental backend {self.name!r} needs a factory"
            )
        if (self.dumps is None) != (self.loads is None):
            raise ValueError(
                f"backend {self.name!r} must provide dumps and loads "
                f"together (or neither)"
            )


_REGISTRY: dict[str, IndexBackendSpec] = {}
_REGISTRY_LOCK = threading.Lock()
_DEFAULTS_LOADED = False


def register_index_backend(
    name: str,
    factory: Factory | None = None,
    *,
    bulk_factory: BulkFactory | None = None,
    incremental: bool = True,
    dumps: Dumps | None = None,
    loads: Loads | None = None,
) -> IndexBackendSpec:
    """Register (or replace) an index backend under ``name``."""
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    spec = IndexBackendSpec(
        name=name,
        factory=factory,
        bulk_factory=bulk_factory,
        incremental=incremental,
        dumps=dumps,
        loads=loads,
    )
    with _REGISTRY_LOCK:
        _REGISTRY[name] = spec
    return spec


def _ensure_default_backends() -> None:
    """Import the default provider module once so it can self-register."""
    global _DEFAULTS_LOADED
    if _DEFAULTS_LOADED:
        return
    with _REGISTRY_LOCK:
        if _DEFAULTS_LOADED:
            return
        _DEFAULTS_LOADED = True
    importlib.import_module(_DEFAULT_PROVIDER_MODULE)


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    _ensure_default_backends()
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> IndexBackendSpec:
    """The spec registered under ``name``; raises ``ValueError`` if absent."""
    _ensure_default_backends()
    with _REGISTRY_LOCK:
        spec = _REGISTRY.get(name)
    if spec is None:
        raise ValueError(
            f"index_kind must be one of {available_backends()}, got {name!r}"
        )
    return spec


def create_index(
    name: str, dimension: int, *, max_entries: int
) -> IndexBackend:
    """Build an empty incremental index of the given kind."""
    spec = get_backend(name)
    if spec.factory is None:
        raise ValueError(
            f"backend {name!r} is bulk-only and cannot build an empty "
            f"incremental index"
        )
    return spec.factory(dimension, max_entries)


def bulk_build_index(
    name: str,
    items: Iterable[tuple[MBR, object]],
    dimension: int,
    *,
    max_entries: int,
) -> IndexBackend:
    """Build an index of the given kind holding ``items``.

    Uses the backend's bulk loader when it has one; otherwise creates an
    empty index and inserts item by item.
    """
    spec = get_backend(name)
    materialised = list(items)
    if spec.bulk_factory is not None:
        return spec.bulk_factory(materialised, dimension, max_entries)
    index = create_index(name, dimension, max_entries=max_entries)
    for mbr, payload in materialised:
        index.insert(mbr, payload)
    return index


def serialize_index(name: str, index: IndexBackend) -> bytes | None:
    """Flat-serialise a built index, or ``None`` if the backend can't.

    The bytes round-trip through :func:`deserialize_index` with identical
    node layout, so query results and node-access counts are preserved.
    """
    spec = get_backend(name)
    if spec.dumps is None:
        return None
    return spec.dumps(index)


def deserialize_index(name: str, data: bytes) -> IndexBackend:
    """Restore an index serialised by :func:`serialize_index`."""
    spec = get_backend(name)
    if spec.loads is None:
        raise ValueError(
            f"backend {name!r} does not support flat deserialisation"
        )
    return spec.loads(data)
