"""The paper's primary contribution: model, distances, partitioning, search.

Contents map to the paper as follows:

============================  =========================================
Module                        Paper section
============================  =========================================
:mod:`repro.core.sequence`    Definition 1 (the data model)
:mod:`repro.core.mbr`         Definition 4 substrate (hyper-rectangles)
:mod:`repro.core.distance`    Definitions 2-5, Lemmas 1-3
:mod:`repro.core.partitioning`  Section 3.4.3 (MCOST partitioning)
:mod:`repro.core.database`    Section 3.4.1 (index construction)
:mod:`repro.core.search`      Section 3.4.2 (SIMILARITY_SEARCH)
:mod:`repro.core.solution_interval`  Definition 6, Section 3.3
============================  =========================================
"""

from repro.core.database import SegmentKey, SequenceDatabase
from repro.core.distance import (
    NormalizedDistance,
    mbr_min_distance,
    mean_distance,
    min_normalized_distance,
    normalized_distance,
    point_distance,
    sequence_distance,
    sliding_mean_distances,
)
from repro.core.mbr import MBR
from repro.core.partitioning import (
    DEFAULT_COST_CONSTANT,
    PartitionedSequence,
    SequenceSegment,
    marginal_cost,
    partition_sequence,
)
from repro.core.search import (
    MatchExplanation,
    SearchResult,
    SearchStats,
    SimilaritySearch,
    SubsequenceHit,
)
from repro.core.sequence import MultidimensionalSequence, as_sequence
from repro.core.solution_interval import IntervalSet

__all__ = [
    "DEFAULT_COST_CONSTANT",
    "IntervalSet",
    "MBR",
    "MatchExplanation",
    "MultidimensionalSequence",
    "NormalizedDistance",
    "PartitionedSequence",
    "SearchResult",
    "SearchStats",
    "SegmentKey",
    "SequenceDatabase",
    "SequenceSegment",
    "SimilaritySearch",
    "SubsequenceHit",
    "as_sequence",
    "marginal_cost",
    "mbr_min_distance",
    "mean_distance",
    "min_normalized_distance",
    "normalized_distance",
    "partition_sequence",
    "point_distance",
    "sequence_distance",
    "sliding_mean_distances",
]
