"""The sequence database: partitioned sequences plus their MBR index.

Index construction (§3.4.1 of the paper) is pre-processing: each
multidimensional sequence is partitioned into subsequences with the MCOST
algorithm, each subsequence's MBR becomes one leaf entry of an R-tree (or a
variant), keyed by ``(sequence id, segment index)``.  The database owns both
halves — the partitions (needed by ``Dnorm`` and solution intervals, which
require point counts and offsets) and the spatial index (needed by the
Phase-2 ``Dmbr`` probe).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.backends import (
    IndexBackend,
    bulk_build_index,
    create_index,
    deserialize_index,
    get_backend,
    serialize_index,
)
from repro.core.partitioning import (
    DEFAULT_COST_CONSTANT,
    DEFAULT_MAX_POINTS,
    PartitionedSequence,
    partition_sequence,
)
from repro.core.sequence import MultidimensionalSequence

if TYPE_CHECKING:
    import os

    import numpy.typing as npt

    SequenceLike = MultidimensionalSequence | npt.ArrayLike
    PathLike = "str | os.PathLike[str]"

__all__ = ["SegmentKey", "SequenceDatabase"]


@dataclass(frozen=True)
class SegmentKey:
    """Payload of one index leaf entry: which segment of which sequence."""

    sequence_id: object
    segment_index: int


class SequenceDatabase:
    """A collection of partitioned, indexed multidimensional sequences.

    Parameters
    ----------
    dimension:
        Dimensionality ``n`` of every stored sequence.
    cost_constant:
        MCOST constant ``Q_k + eps`` used when partitioning (paper: 0.3).
    max_points:
        Cap on points per segment MBR (``None`` disables).
    index_kind:
        ``"rtree"`` (Guttman, default), ``"rstar"`` (R*-tree) or ``"str"``
        (STR bulk loading — the index is packed lazily on first use and
        repacked after later insertions).
    max_entries:
        R-tree node capacity.

    Examples
    --------
    >>> import numpy as np
    >>> db = SequenceDatabase(dimension=2)
    >>> db.add(np.random.default_rng(0).random((50, 2)), sequence_id="clip-0")
    'clip-0'
    >>> len(db), db.segment_count > 0
    (1, True)
    """

    def __init__(
        self,
        dimension: int,
        *,
        cost_constant: float = DEFAULT_COST_CONSTANT,
        max_points: int | None = DEFAULT_MAX_POINTS,
        index_kind: str = "rtree",
        max_entries: int = 16,
    ) -> None:
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        backend = get_backend(index_kind)  # raises ValueError for unknown kinds
        self.dimension = dimension
        self.cost_constant = cost_constant
        self.max_points = max_points
        self.index_kind = index_kind
        self.max_entries = max_entries
        self._incremental = backend.incremental
        self._partitions: dict[object, PartitionedSequence] = {}
        self._index: IndexBackend | None = (
            self._new_dynamic_index() if backend.incremental else None
        )
        self._index_dirty = False

    def _new_dynamic_index(self) -> IndexBackend:
        return create_index(
            self.index_kind, self.dimension, max_entries=self.max_entries
        )

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add(
        self, sequence: SequenceLike, sequence_id: object = None
    ) -> object:
        """Partition, store and index one sequence; returns its id.

        Parameters
        ----------
        sequence:
            A :class:`~repro.core.sequence.MultidimensionalSequence` or raw
            point array of the database's dimensionality.
        sequence_id:
            Explicit id; defaults to the sequence's own id, falling back to
            the insertion ordinal.  Duplicate ids are rejected.
        """
        if not isinstance(sequence, MultidimensionalSequence):
            sequence = MultidimensionalSequence(sequence)
        if sequence.dimension != self.dimension:
            raise ValueError(
                f"sequence dimension {sequence.dimension} != database "
                f"dimension {self.dimension}"
            )
        if sequence_id is None:
            sequence_id = sequence.sequence_id
        if sequence_id is None:
            sequence_id = len(self._partitions)
        if sequence_id in self._partitions:
            raise KeyError(f"sequence id {sequence_id!r} already stored")

        partition = partition_sequence(
            sequence,
            cost_constant=self.cost_constant,
            max_points=self.max_points,
        )
        self._partitions[sequence_id] = partition
        if not self._incremental:
            # Packed backends (STR) have no insertion order: repack lazily.
            self._index_dirty = True
        else:
            index = self._live_index()
            for segment in partition:
                index.insert(
                    segment.mbr, SegmentKey(sequence_id, segment.index)
                )
        return sequence_id

    def add_all(self, sequences: Iterable[SequenceLike]) -> list[object]:
        """Add many sequences; returns their ids in order."""
        return [self.add(sequence) for sequence in sequences]

    def append_points(
        self, sequence_id: object, points: npt.ArrayLike
    ) -> None:
        """Extend a stored sequence with new points (streaming ingestion).

        A growing video stream keeps its already-closed segments; only the
        *last* segment can change (the greedy MCOST partitioner never
        revisits earlier ones), so that segment is re-partitioned together
        with the new points and the index is patched incrementally.
        """
        import numpy as np

        old_partition = self.partition(sequence_id)  # raises on unknown id
        new_block = np.asarray(points, dtype=np.float64)
        if new_block.ndim == 1:
            new_block = new_block.reshape(-1, 1)
        if new_block.shape[0] == 0:
            return
        if new_block.shape[1] != self.dimension:
            raise ValueError(
                f"points dimension {new_block.shape[1]} != database "
                f"dimension {self.dimension}"
            )

        old_sequence = old_partition.sequence
        extended = MultidimensionalSequence(
            np.vstack([old_sequence.points, new_block]),
            sequence_id=sequence_id,
        )
        new_partition = partition_sequence(
            extended,
            cost_constant=self.cost_constant,
            max_points=self.max_points,
        )

        if not self._incremental:
            self._partitions[sequence_id] = new_partition
            self._index_dirty = True
            return

        # Patch the index: drop every old segment from the first segment
        # whose (start, count, mbr) changed onwards, insert the new tail.
        index = self._live_index()
        old_segments = old_partition.segments
        new_segments = new_partition.segments
        stable = 0
        for old_segment, new_segment in zip(old_segments, new_segments):
            if (
                old_segment.start == new_segment.start
                and old_segment.count == new_segment.count
                and old_segment.mbr == new_segment.mbr
            ):
                stable += 1
            else:
                break
        for segment in old_segments[stable:]:
            removed = index.delete(
                segment.mbr, SegmentKey(sequence_id, segment.index)
            )
            if not removed:
                raise RuntimeError(
                    f"index entry for {sequence_id!r} segment "
                    f"{segment.index} was missing during append"
                )
        for segment in new_segments[stable:]:
            index.insert(
                segment.mbr, SegmentKey(sequence_id, segment.index)
            )
        self._partitions[sequence_id] = new_partition

    def clone(self) -> "SequenceDatabase":
        """A copy-on-write snapshot copy: mutations never cross over.

        The partition objects (immutable) are shared between the original
        and the copy; the index is structurally cloned when the backend
        supports it (the R-tree family does, via ``clone()``), otherwise
        the copy rebuilds its index lazily on first use.  This is the
        primitive :class:`repro.service.engine.QueryEngine` uses to give
        writers a private tree while in-flight readers finish on the old
        snapshot.
        """
        twin = SequenceDatabase(
            dimension=self.dimension,
            cost_constant=self.cost_constant,
            max_points=self.max_points,
            index_kind=self.index_kind,
            max_entries=self.max_entries,
        )
        twin._partitions = dict(self._partitions)
        if self._index is not None and not self._index_dirty:
            cloner = getattr(self._index, "clone", None)
            if callable(cloner):
                twin._index = cloner()
                twin._index_dirty = False
                return twin
        twin._index_dirty = len(twin._partitions) > 0
        return twin

    def remove(self, sequence_id: object) -> None:
        """Remove a sequence and its index entries.

        Raises ``KeyError`` for unknown ids.  Packed (non-incremental)
        backends simply mark the tree stale and repack it on next use.
        """
        partition = self.partition(sequence_id)  # raises on unknown id
        if not self._incremental:
            self._index_dirty = True
        else:
            index = self._live_index()
            for segment in partition:
                removed = index.delete(
                    segment.mbr, SegmentKey(sequence_id, segment.index)
                )
                if not removed:
                    raise RuntimeError(
                        f"index entry for {sequence_id!r} segment "
                        f"{segment.index} was missing"
                    )
        del self._partitions[sequence_id]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._partitions)

    def __contains__(self, sequence_id: object) -> bool:
        return sequence_id in self._partitions

    def __iter__(self) -> Iterator[object]:
        return iter(self._partitions)

    def ids(self) -> list[object]:
        """All stored sequence ids, in insertion order."""
        return list(self._partitions)

    def partition(self, sequence_id: object) -> PartitionedSequence:
        """The stored partition of one sequence."""
        try:
            return self._partitions[sequence_id]
        except KeyError:
            raise KeyError(f"unknown sequence id {sequence_id!r}") from None

    def sequence(self, sequence_id: object) -> MultidimensionalSequence:
        """The stored sequence itself."""
        return self.partition(sequence_id).sequence

    def partitions(self) -> Iterator[tuple[object, PartitionedSequence]]:
        """Iterate over ``(sequence_id, partition)`` pairs."""
        return iter(self._partitions.items())

    @property
    def segment_count(self) -> int:
        """Total number of segment MBRs across all sequences."""
        return sum(len(p) for p in self._partitions.values())

    @property
    def point_count(self) -> int:
        """Total number of stored points across all sequences."""
        return sum(len(p.sequence) for p in self._partitions.values())

    # ------------------------------------------------------------------
    # Index
    # ------------------------------------------------------------------
    @property
    def index(self) -> IndexBackend:
        """The MBR index, (re)built lazily for packed backends."""
        return self._live_index()

    def _live_index(self) -> IndexBackend:
        if self._index is None or self._index_dirty:
            self._rebuild_index()
        index = self._index
        if index is None:
            raise RuntimeError("index rebuild produced no index")
        return index

    def _rebuild_index(self) -> None:
        items = [
            (segment.mbr, SegmentKey(sequence_id, segment.index))
            for sequence_id, partition in self._partitions.items()
            for segment in partition
        ]
        self._index = bulk_build_index(
            self.index_kind, items, self.dimension, max_entries=self.max_entries
        )
        self._index_dirty = False

    def __repr__(self) -> str:
        return (
            f"SequenceDatabase(dimension={self.dimension}, "
            f"sequences={len(self)}, segments={self.segment_count}, "
            f"index_kind={self.index_kind!r})"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike, *, include_index: bool = True) -> None:
        """Persist the database to an ``.npz`` archive, crash-safely.

        Stored: the configuration and every sequence's points and id, and —
        when the backend supports flat serialisation and ``include_index``
        is true — the index tree itself (via the
        :func:`repro.core.backends.serialize_index` seam).  :meth:`load`
        then restores the tree instead of re-running index construction,
        which is the startup-latency path ``repro serve`` depends on.
        Archives without the embedded tree remain loadable (the index is
        rebuilt from the sequences).  Sequence ids are stored via ``repr``
        round-tripping for the common id types (str, int); exotic id
        objects are rejected.

        The archive is written to a temporary file in the target
        directory, fsynced, and atomically renamed into place
        (``os.replace``) — a crash at any point during a save leaves
        either the old archive or the new one, never a torn file.  This
        is what lets the serving layer's checkpoint overwrite its
        snapshot in place (:mod:`repro.service.wal`).
        """
        import json

        import numpy as np

        ids = list(self._partitions)
        for sequence_id in ids:
            if not isinstance(sequence_id, (str, int)):
                raise TypeError(
                    f"only str/int sequence ids can be persisted, got "
                    f"{type(sequence_id).__name__}"
                )
        meta = {
            "dimension": self.dimension,
            "cost_constant": self.cost_constant,
            "max_points": self.max_points,
            "index_kind": self.index_kind,
            "max_entries": self.max_entries,
            "ids": [[type(i).__name__, str(i)] for i in ids],
        }
        arrays = {
            f"sequence_{ordinal}": self._partitions[sequence_id].sequence.points
            for ordinal, sequence_id in enumerate(ids)
        }
        if include_index:
            blob = serialize_index(self.index_kind, self._live_index())
            if blob is not None:
                arrays["_index"] = np.frombuffer(blob, dtype=np.uint8)
        arrays["_meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        self._write_archive_atomically(path, arrays)

    @staticmethod
    def _write_archive_atomically(
        path: PathLike, arrays: dict[str, Any]
    ) -> None:
        """Write ``arrays`` as an npz at ``path`` via temp file + replace."""
        import os
        from pathlib import Path as _Path

        import numpy as np

        from repro.util.faults import inject

        target = _Path(os.fspath(path))
        if target.suffix != ".npz":
            # np.savez appends the suffix itself; mirror that so the
            # temp-file rename lands on the name load() will be given.
            target = target.with_name(target.name + ".npz")
        temp = target.with_name(f".{target.name}.tmp-{os.getpid()}")
        try:
            with open(temp, "wb") as handle:
                np.savez_compressed(handle, **arrays)
                handle.flush()
                os.fsync(handle.fileno())
            inject("database.save.replace")
            os.replace(temp, target)
        except BaseException:
            try:
                temp.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - cleanup best effort
                pass
            raise
        try:
            directory_fd = os.open(target.parent, os.O_RDONLY)
            try:
                os.fsync(directory_fd)
            finally:
                os.close(directory_fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass

    @classmethod
    def load(cls, path: PathLike) -> "SequenceDatabase":
        """Rebuild a database saved with :meth:`save`.

        When the archive embeds the flat index tree, the tree is restored
        directly (identical node layout, hence identical query results and
        node-access counts) and only the partitions — which ``Dnorm`` and
        solution intervals need — are recomputed.  Older archives without
        the tree fall back to full reconstruction.
        """
        import json

        import numpy as np

        with np.load(path) as archive:
            meta = json.loads(bytes(archive["_meta"]).decode())
            database = cls(
                dimension=int(meta["dimension"]),
                cost_constant=float(meta["cost_constant"]),
                max_points=(
                    None if meta["max_points"] is None else int(meta["max_points"])
                ),
                index_kind=meta["index_kind"],
                max_entries=int(meta["max_entries"]),
            )
            index_blob = (
                archive["_index"].tobytes()
                if "_index" in archive.files
                else None
            )
            if index_blob is None:
                for ordinal, (type_name, raw) in enumerate(meta["ids"]):
                    sequence_id = int(raw) if type_name == "int" else raw
                    database.add(
                        archive[f"sequence_{ordinal}"], sequence_id=sequence_id
                    )
                return database
            for ordinal, (type_name, raw) in enumerate(meta["ids"]):
                sequence_id = int(raw) if type_name == "int" else raw
                sequence = MultidimensionalSequence(
                    archive[f"sequence_{ordinal}"], sequence_id=sequence_id
                )
                database._partitions[sequence_id] = partition_sequence(
                    sequence,
                    cost_constant=database.cost_constant,
                    max_points=database.max_points,
                )
            index = deserialize_index(database.index_kind, index_blob)
            if len(index) != database.segment_count:
                raise ValueError(
                    f"corrupt archive: embedded index holds {len(index)} "
                    f"entries but the partitions produce "
                    f"{database.segment_count} segments"
                )
            database._index = index
            database._index_dirty = False
        return database
