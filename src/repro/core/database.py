"""The sequence database: partitioned sequences plus their MBR index.

Index construction (§3.4.1 of the paper) is pre-processing: each
multidimensional sequence is partitioned into subsequences with the MCOST
algorithm, each subsequence's MBR becomes one leaf entry of an R-tree (or a
variant), keyed by ``(sequence id, segment index)``.  The database owns both
halves — the partitions (needed by ``Dnorm`` and solution intervals, which
require point counts and offsets) and the spatial index (needed by the
Phase-2 ``Dmbr`` probe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.partitioning import (
    DEFAULT_COST_CONSTANT,
    DEFAULT_MAX_POINTS,
    PartitionedSequence,
    partition_sequence,
)
from repro.core.sequence import MultidimensionalSequence
from repro.index.bulk import bulk_load_str
from repro.index.rstar import RStarTree
from repro.index.rtree import RTree

__all__ = ["SegmentKey", "SequenceDatabase"]

_INDEX_KINDS = ("rtree", "rstar", "str")


@dataclass(frozen=True)
class SegmentKey:
    """Payload of one index leaf entry: which segment of which sequence."""

    sequence_id: object
    segment_index: int


class SequenceDatabase:
    """A collection of partitioned, indexed multidimensional sequences.

    Parameters
    ----------
    dimension:
        Dimensionality ``n`` of every stored sequence.
    cost_constant:
        MCOST constant ``Q_k + eps`` used when partitioning (paper: 0.3).
    max_points:
        Cap on points per segment MBR (``None`` disables).
    index_kind:
        ``"rtree"`` (Guttman, default), ``"rstar"`` (R*-tree) or ``"str"``
        (STR bulk loading — the index is packed lazily on first use and
        repacked after later insertions).
    max_entries:
        R-tree node capacity.

    Examples
    --------
    >>> import numpy as np
    >>> db = SequenceDatabase(dimension=2)
    >>> db.add(np.random.default_rng(0).random((50, 2)), sequence_id="clip-0")
    'clip-0'
    >>> len(db), db.segment_count > 0
    (1, True)
    """

    def __init__(
        self,
        dimension: int,
        *,
        cost_constant: float = DEFAULT_COST_CONSTANT,
        max_points: int | None = DEFAULT_MAX_POINTS,
        index_kind: str = "rtree",
        max_entries: int = 16,
    ) -> None:
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        if index_kind not in _INDEX_KINDS:
            raise ValueError(
                f"index_kind must be one of {_INDEX_KINDS}, got {index_kind!r}"
            )
        self.dimension = dimension
        self.cost_constant = cost_constant
        self.max_points = max_points
        self.index_kind = index_kind
        self.max_entries = max_entries
        self._partitions: dict[object, PartitionedSequence] = {}
        self._index = self._new_dynamic_index() if index_kind != "str" else None
        self._index_dirty = False

    def _new_dynamic_index(self):
        if self.index_kind == "rstar":
            return RStarTree(self.dimension, max_entries=self.max_entries)
        return RTree(self.dimension, max_entries=self.max_entries)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add(self, sequence, sequence_id=None):
        """Partition, store and index one sequence; returns its id.

        Parameters
        ----------
        sequence:
            A :class:`~repro.core.sequence.MultidimensionalSequence` or raw
            point array of the database's dimensionality.
        sequence_id:
            Explicit id; defaults to the sequence's own id, falling back to
            the insertion ordinal.  Duplicate ids are rejected.
        """
        if not isinstance(sequence, MultidimensionalSequence):
            sequence = MultidimensionalSequence(sequence)
        if sequence.dimension != self.dimension:
            raise ValueError(
                f"sequence dimension {sequence.dimension} != database "
                f"dimension {self.dimension}"
            )
        if sequence_id is None:
            sequence_id = sequence.sequence_id
        if sequence_id is None:
            sequence_id = len(self._partitions)
        if sequence_id in self._partitions:
            raise KeyError(f"sequence id {sequence_id!r} already stored")

        partition = partition_sequence(
            sequence,
            cost_constant=self.cost_constant,
            max_points=self.max_points,
        )
        self._partitions[sequence_id] = partition
        if self.index_kind == "str":
            # STR is a packing, not an insertion order: repack lazily.
            self._index_dirty = True
        else:
            for segment in partition:
                self._index.insert(
                    segment.mbr, SegmentKey(sequence_id, segment.index)
                )
        return sequence_id

    def add_all(self, sequences) -> list:
        """Add many sequences; returns their ids in order."""
        return [self.add(sequence) for sequence in sequences]

    def append_points(self, sequence_id, points) -> None:
        """Extend a stored sequence with new points (streaming ingestion).

        A growing video stream keeps its already-closed segments; only the
        *last* segment can change (the greedy MCOST partitioner never
        revisits earlier ones), so that segment is re-partitioned together
        with the new points and the index is patched incrementally.
        """
        import numpy as np

        from repro.core.sequence import MultidimensionalSequence

        old_partition = self.partition(sequence_id)  # raises on unknown id
        new_block = np.asarray(points, dtype=np.float64)
        if new_block.ndim == 1:
            new_block = new_block.reshape(-1, 1)
        if new_block.shape[0] == 0:
            return
        if new_block.shape[1] != self.dimension:
            raise ValueError(
                f"points dimension {new_block.shape[1]} != database "
                f"dimension {self.dimension}"
            )

        old_sequence = old_partition.sequence
        extended = MultidimensionalSequence(
            np.vstack([old_sequence.points, new_block]),
            sequence_id=sequence_id,
        )
        new_partition = partition_sequence(
            extended,
            cost_constant=self.cost_constant,
            max_points=self.max_points,
        )

        if self.index_kind == "str":
            self._partitions[sequence_id] = new_partition
            self._index_dirty = True
            return

        # Patch the index: drop every old segment from the first segment
        # whose (start, count, mbr) changed onwards, insert the new tail.
        old_segments = old_partition.segments
        new_segments = new_partition.segments
        stable = 0
        for old_segment, new_segment in zip(old_segments, new_segments):
            if (
                old_segment.start == new_segment.start
                and old_segment.count == new_segment.count
                and old_segment.mbr == new_segment.mbr
            ):
                stable += 1
            else:
                break
        for segment in old_segments[stable:]:
            removed = self._index.delete(
                segment.mbr, SegmentKey(sequence_id, segment.index)
            )
            if not removed:
                raise RuntimeError(
                    f"index entry for {sequence_id!r} segment "
                    f"{segment.index} was missing during append"
                )
        for segment in new_segments[stable:]:
            self._index.insert(
                segment.mbr, SegmentKey(sequence_id, segment.index)
            )
        self._partitions[sequence_id] = new_partition

    def remove(self, sequence_id) -> None:
        """Remove a sequence and its index entries.

        Raises ``KeyError`` for unknown ids.  With the ``str`` index kind
        the packed tree is simply marked stale and repacked on next use.
        """
        partition = self.partition(sequence_id)  # raises on unknown id
        if self.index_kind == "str":
            self._index_dirty = True
        else:
            for segment in partition:
                removed = self._index.delete(
                    segment.mbr, SegmentKey(sequence_id, segment.index)
                )
                if not removed:
                    raise RuntimeError(
                        f"index entry for {sequence_id!r} segment "
                        f"{segment.index} was missing"
                    )
        del self._partitions[sequence_id]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._partitions)

    def __contains__(self, sequence_id) -> bool:
        return sequence_id in self._partitions

    def __iter__(self) -> Iterator:
        return iter(self._partitions)

    def ids(self) -> list:
        """All stored sequence ids, in insertion order."""
        return list(self._partitions)

    def partition(self, sequence_id) -> PartitionedSequence:
        """The stored partition of one sequence."""
        try:
            return self._partitions[sequence_id]
        except KeyError:
            raise KeyError(f"unknown sequence id {sequence_id!r}") from None

    def sequence(self, sequence_id) -> MultidimensionalSequence:
        """The stored sequence itself."""
        return self.partition(sequence_id).sequence

    def partitions(self) -> Iterator[tuple[object, PartitionedSequence]]:
        """Iterate over ``(sequence_id, partition)`` pairs."""
        return iter(self._partitions.items())

    @property
    def segment_count(self) -> int:
        """Total number of segment MBRs across all sequences."""
        return sum(len(p) for p in self._partitions.values())

    @property
    def point_count(self) -> int:
        """Total number of stored points across all sequences."""
        return sum(len(p.sequence) for p in self._partitions.values())

    # ------------------------------------------------------------------
    # Index
    # ------------------------------------------------------------------
    @property
    def index(self):
        """The MBR index, (re)built lazily for the ``str`` kind."""
        if self._index is None or self._index_dirty:
            self._rebuild_index()
        return self._index

    def _rebuild_index(self) -> None:
        if self.index_kind == "str":
            items = [
                (segment.mbr, SegmentKey(sequence_id, segment.index))
                for sequence_id, partition in self._partitions.items()
                for segment in partition
            ]
            self._index = bulk_load_str(
                items, self.dimension, max_entries=self.max_entries
            )
        else:
            self._index = self._new_dynamic_index()
            for sequence_id, partition in self._partitions.items():
                for segment in partition:
                    self._index.insert(
                        segment.mbr, SegmentKey(sequence_id, segment.index)
                    )
        self._index_dirty = False

    def __repr__(self) -> str:
        return (
            f"SequenceDatabase(dimension={self.dimension}, "
            f"sequences={len(self)}, segments={self.segment_count}, "
            f"index_kind={self.index_kind!r})"
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist the database to an ``.npz`` archive.

        Stored: the configuration and every sequence's points and id.  The
        partitions and the index are deterministic functions of those, so
        :meth:`load` rebuilds them instead of serialising tree structure.
        Sequence ids are stored via ``repr`` round-tripping for the common
        id types (str, int); exotic id objects are rejected.
        """
        import json

        import numpy as np

        ids = list(self._partitions)
        for sequence_id in ids:
            if not isinstance(sequence_id, (str, int)):
                raise TypeError(
                    f"only str/int sequence ids can be persisted, got "
                    f"{type(sequence_id).__name__}"
                )
        meta = {
            "dimension": self.dimension,
            "cost_constant": self.cost_constant,
            "max_points": self.max_points,
            "index_kind": self.index_kind,
            "max_entries": self.max_entries,
            "ids": [[type(i).__name__, str(i)] for i in ids],
        }
        arrays = {
            f"sequence_{ordinal}": self._partitions[sequence_id].sequence.points
            for ordinal, sequence_id in enumerate(ids)
        }
        np.savez_compressed(
            path, _meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            **arrays,
        )

    @classmethod
    def load(cls, path) -> "SequenceDatabase":
        """Rebuild a database saved with :meth:`save`."""
        import json

        import numpy as np

        with np.load(path) as archive:
            meta = json.loads(bytes(archive["_meta"]).decode())
            database = cls(
                dimension=int(meta["dimension"]),
                cost_constant=float(meta["cost_constant"]),
                max_points=(
                    None if meta["max_points"] is None else int(meta["max_points"])
                ),
                index_kind=meta["index_kind"],
                max_entries=int(meta["max_entries"]),
            )
            for ordinal, (type_name, raw) in enumerate(meta["ids"]):
                sequence_id = int(raw) if type_name == "int" else raw
                database.add(
                    archive[f"sequence_{ordinal}"], sequence_id=sequence_id
                )
        return database
