"""Partitioning a sequence into MBR-bounded subsequences (Section 3.4.3).

The paper adopts the greedy marginal-cost partitioning of Faloutsos et
al. '94 with a modified cost function.  For an n-dimensional subsequence of
``m`` points whose enclosing MBR has sides ``L = (L1, ..., Ln)``, the
*marginal cost* of a point is the estimated number of disk accesses of the
MBR divided by the number of points it amortises over::

    MCOST = prod_k (L_k + Q_k + eps) / m

where ``Q_k`` are the sides of a (typical) query MBR and ``eps`` the search
threshold.  ``prod_k (L_k + Q_k + eps)`` is the probability that a query
rectangle expanded by ``eps`` intersects the MBR in the unit data space —
i.e. the expected access count.  The paper fixes the combined constant
``Q_k + eps = 0.3`` "since it demonstrates the best partitioning by an
extensive experiment"; :data:`DEFAULT_COST_CONSTANT` records that choice and
``benchmarks/bench_ablation_mcost.py`` re-verifies it.

Grouping is greedy and order-preserving: a subsequence grows point by point
while adding the next point does not increase MCOST; when it would (or when
the configured maximum MBR population is hit), the current MBR is closed and
a new one starts at that point.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.mbr import MBR
from repro.core.sequence import MultidimensionalSequence
from repro.util.freeze import freeze

if TYPE_CHECKING:
    import numpy.typing as npt

__all__ = [
    "DEFAULT_COST_CONSTANT",
    "PartitionedSequence",
    "SequenceSegment",
    "marginal_cost",
    "partition_sequence",
]

#: The paper's adopted value for ``Q_k + eps`` in the MCOST formula.
DEFAULT_COST_CONSTANT = 0.3

#: Default cap on points per MBR (the paper's ``max``; value not reported,
#: chosen here so that even a monotone drift cannot produce one giant MBR).
DEFAULT_MAX_POINTS = 64


def marginal_cost(
    sides: npt.ArrayLike,
    point_count: int,
    cost_constant: float = DEFAULT_COST_CONSTANT,
) -> float:
    """The MCOST of an MBR with the given side lengths and population.

    Parameters
    ----------
    sides:
        Side lengths ``(L1, ..., Ln)`` of the MBR.
    point_count:
        Number of sequence points the MBR encloses (``m >= 1``).
    cost_constant:
        The combined ``Q_k + eps`` constant (paper default 0.3).
    """
    if point_count < 1:
        raise ValueError(f"point_count must be >= 1, got {point_count}")
    if cost_constant <= 0:
        raise ValueError(f"cost_constant must be > 0, got {cost_constant}")
    arr = np.asarray(sides, dtype=np.float64)
    if np.any(arr < 0):
        raise ValueError("side lengths must be non-negative")
    return float(np.prod(arr + cost_constant) / point_count)


@dataclass(frozen=True)
class SequenceSegment:
    """One partition cell: a contiguous run of points and its bounding MBR.

    Attributes
    ----------
    index:
        Zero-based position of this segment among the sequence's segments
        (the paper's MBR subscript, minus one).
    start:
        Zero-based offset of the segment's first point in the sequence.
    count:
        Number of points in the segment.
    mbr:
        The minimum bounding rectangle of those points.
    """

    index: int
    start: int
    count: int
    mbr: MBR

    @property
    def stop(self) -> int:
        """One past the zero-based offset of the segment's last point."""
        return self.start + self.count

    def point_range(self) -> range:
        """The range of zero-based sequence offsets this segment covers."""
        return range(self.start, self.stop)


class PartitionedSequence:
    """A sequence together with its ordered MBR partition.

    Built by :func:`partition_sequence`; consumed by the database (which
    indexes the MBRs), by ``Dnorm`` (which needs MBRs *and* point counts) and
    by solution-interval assembly (which needs point offsets).
    """

    __slots__ = (
        "_sequence",
        "_segments",
        "_counts",
        "_cost_constant",
        "_low_matrix",
        "_high_matrix",
    )

    def __init__(
        self,
        sequence: MultidimensionalSequence,
        segments: list[SequenceSegment],
        cost_constant: float = DEFAULT_COST_CONSTANT,
    ) -> None:
        if not segments:
            raise ValueError("a partitioned sequence needs at least one segment")
        expected_start = 0
        for position, segment in enumerate(segments):
            if segment.index != position:
                raise ValueError(
                    f"segment {position} carries index {segment.index}"
                )
            if segment.start != expected_start:
                raise ValueError(
                    f"segment {position} starts at {segment.start}, expected "
                    f"{expected_start} (segments must tile the sequence)"
                )
            if segment.count < 1:
                raise ValueError(f"segment {position} is empty")
            expected_start = segment.stop
        if expected_start != len(sequence):
            raise ValueError(
                f"segments cover {expected_start} points but the sequence has "
                f"{len(sequence)}"
            )
        self._sequence = sequence
        self._segments = list(segments)
        # The matrices are shared by reference across engine snapshots and
        # cache entries, so they are frozen at construction: an in-place
        # write here would corrupt Dmbr for every concurrent reader.
        self._counts = freeze(
            np.array([s.count for s in segments], dtype=np.int64)
        )
        self._cost_constant = cost_constant
        self._low_matrix = freeze(np.vstack([s.mbr.low for s in segments]))
        self._high_matrix = freeze(np.vstack([s.mbr.high for s in segments]))

    @property
    def sequence(self) -> MultidimensionalSequence:
        """The underlying sequence."""
        return self._sequence

    @property
    def segments(self) -> list[SequenceSegment]:
        """The ordered partition cells (copy-safe list)."""
        return list(self._segments)

    @property
    def counts(self) -> np.ndarray:
        """Point count per segment, in order (frozen; writes raise)."""
        return self._counts

    @property
    def mbrs(self) -> list[MBR]:
        """The segment MBRs, in order."""
        return [s.mbr for s in self._segments]

    @property
    def cost_constant(self) -> float:
        """The MCOST constant the partition was built with."""
        return self._cost_constant

    def mbr_distance_row(self, query_mbr: MBR) -> np.ndarray:
        """``Dmbr(query_mbr, segment t)`` for every segment, vectorised.

        Phase 3 of the search computes one row per (query MBR, sequence)
        pair and reuses it across all ``Dnorm`` anchors, so this is the hot
        kernel of the second pruning step.
        """
        gaps = np.maximum(
            0.0,
            np.maximum(
                self._low_matrix - query_mbr.high,
                query_mbr.low - self._high_matrix,
            ),
        )
        return np.sqrt(np.sum(gaps * gaps, axis=1))

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[SequenceSegment]:
        return iter(self._segments)

    def __getitem__(self, index: int) -> SequenceSegment:
        return self._segments[index]

    def __repr__(self) -> str:
        return (
            f"PartitionedSequence(length={len(self._sequence)}, "
            f"segments={len(self._segments)})"
        )

    def segment_points(self, index: int) -> np.ndarray:
        """The ``(count, n)`` point block of segment ``index``."""
        segment = self._segments[index]
        return self._sequence.points[segment.start : segment.stop]

    def segment_of_point(self, offset: int) -> SequenceSegment:
        """The segment containing the sequence point at ``offset``."""
        if not 0 <= offset < len(self._sequence):
            raise IndexError(
                f"offset {offset} outside [0, {len(self._sequence)})"
            )
        starts = [s.start for s in self._segments]
        position = int(np.searchsorted(starts, offset, side="right")) - 1
        return self._segments[position]

    def total_cost(self) -> float:
        """Sum of per-segment MCOST·count — the estimated total access count."""
        return float(
            sum(
                marginal_cost(s.mbr.sides, s.count, self._cost_constant) * s.count
                for s in self._segments
            )
        )


def partition_sequence(
    sequence: MultidimensionalSequence | npt.ArrayLike,
    *,
    cost_constant: float = DEFAULT_COST_CONSTANT,
    max_points: int | None = DEFAULT_MAX_POINTS,
) -> PartitionedSequence:
    """Greedy MCOST partitioning (the paper's PARTITIONING_SEQUENCE).

    Parameters
    ----------
    sequence:
        A :class:`~repro.core.sequence.MultidimensionalSequence` (or raw
        point array) to partition.
    cost_constant:
        The ``Q_k + eps`` constant of the MCOST formula (paper default 0.3).
    max_points:
        Maximum points per MBR; ``None`` disables the cap.

    Returns
    -------
    PartitionedSequence
        An exact ordered tiling of the sequence into MBR-bounded segments.
    """
    if not isinstance(sequence, MultidimensionalSequence):
        sequence = MultidimensionalSequence(sequence)
    if cost_constant <= 0:
        raise ValueError(f"cost_constant must be > 0, got {cost_constant}")
    if max_points is not None and max_points < 1:
        raise ValueError(f"max_points must be >= 1 or None, got {max_points}")

    points = sequence.points
    segments: list[SequenceSegment] = []
    start = 0
    low = points[0].copy()
    high = points[0].copy()
    count = 1
    current_cost = marginal_cost(high - low, count, cost_constant)

    def close_segment() -> None:
        segments.append(
            SequenceSegment(
                index=len(segments),
                start=start,
                count=count,
                mbr=MBR(low, high),
            )
        )

    for offset in range(1, len(points)):
        point = points[offset]
        new_low = np.minimum(low, point)
        new_high = np.maximum(high, point)
        new_cost = marginal_cost(new_high - new_low, count + 1, cost_constant)
        at_capacity = max_points is not None and count >= max_points
        if new_cost > current_cost or at_capacity:
            close_segment()
            start = offset
            low = point.copy()
            high = point.copy()
            count = 1
            current_cost = marginal_cost(high - low, count, cost_constant)
        else:
            low = new_low
            high = new_high
            count += 1
            current_cost = new_cost
    close_segment()

    return PartitionedSequence(sequence, segments, cost_constant)
