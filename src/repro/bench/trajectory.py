"""Reading, writing, validating and diffing ``BENCH_<suite>.json`` files.

A trajectory file is one suite's measurement at one point in the repo's
history.  The schema is versioned and deliberately small::

    {
      "schema_version": 1,
      "suite": "service",
      "profile": "quick",
      "machine": "runner-host",
      "git_sha": "7c40dae...",
      "timestamp": "2026-08-08T12:00:00+00:00",
      "seed": 2000,
      "scenarios": {
        "end_to_end": {"metrics": {"qps": 41.0, "p99_ms": 88.2},
                        "meta": {"operations": 120}}
      }
    }

``machine``, ``git_sha`` and ``timestamp`` are **passed in by the
caller, never sampled here** — the writer stays a pure function of its
arguments, so tests can produce byte-identical files and the resume/
replay machinery upstream never sees a hidden clock.  The CLI samples
them once at its entry point (:func:`detect_machine`,
:func:`detect_git_sha` are the helpers it uses).

:func:`diff_trajectories` compares two files metric-by-metric with a
relative threshold, classifying each change by the metric's direction
convention (``*_ms``-style metrics regress upward, ``*qps``-style
metrics regress downward) so a perf PR can gate on "no metric moved the
wrong way by more than X%".
"""

from __future__ import annotations

import json
import platform
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.bench.result import BenchResult
from repro.util.validation import check_positive

__all__ = [
    "SCHEMA_VERSION",
    "Regression",
    "detect_git_sha",
    "detect_machine",
    "diff_trajectories",
    "load_trajectory",
    "metric_direction",
    "trajectory_filename",
    "trajectory_payload",
    "validate_trajectory",
    "write_trajectory",
]

#: Bumped whenever the trajectory JSON shape changes incompatibly.
SCHEMA_VERSION = 1

_REQUIRED_KEYS = (
    "schema_version",
    "suite",
    "profile",
    "machine",
    "git_sha",
    "timestamp",
    "seed",
    "scenarios",
)

# Metric-name tokens that mark a value as higher-is-better; everything
# ending in "_ms" or carrying a lower-is-better token regresses upward.
_HIGHER_BETTER_TOKENS = frozenset(
    {"qps", "ratio", "hits", "refines", "throughput", "recall", "sequences"}
)
_LOWER_BETTER_TOKENS = frozenset(
    {"latency", "recovery", "errors", "misses", "failovers"}
)


def metric_direction(name: str) -> str:
    """``"higher"`` or ``"lower"`` — which way the metric improves.

    Unknown names default to ``"higher"`` (the common case for counts);
    suffix ``_ms`` always means lower-is-better.
    """
    tokens = set(name.lower().split("_"))
    if name.endswith("_ms") or tokens & _LOWER_BETTER_TOKENS:
        return "lower"
    if tokens & _HIGHER_BETTER_TOKENS:
        return "higher"
    return "higher"


def trajectory_filename(suite: str) -> str:
    """The canonical file name for a suite's trajectory point."""
    return f"BENCH_{suite}.json"


def trajectory_payload(
    suite: str,
    results: Sequence[BenchResult],
    *,
    machine: str,
    git_sha: str,
    timestamp: str,
    profile: str,
    seed: int,
) -> dict[str, Any]:
    """Assemble (and validate) the JSON payload for one suite."""
    if not results:
        raise ValueError(f"suite {suite!r} produced no results to write")
    scenarios: dict[str, Any] = {}
    for result in results:
        if result.suite != suite:
            raise ValueError(
                f"result {result.suite}/{result.scenario} does not belong "
                f"to suite {suite!r}"
            )
        if result.scenario in scenarios:
            raise ValueError(
                f"duplicate scenario {suite}/{result.scenario}"
            )
        scenarios[result.scenario] = result.to_payload()
    payload = {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "profile": profile,
        "machine": machine,
        "git_sha": git_sha,
        "timestamp": timestamp,
        "seed": int(seed),
        "scenarios": scenarios,
    }
    validate_trajectory(payload)
    return payload


def write_trajectory(
    directory: str | Path,
    suite: str,
    results: Sequence[BenchResult],
    *,
    machine: str,
    git_sha: str,
    timestamp: str,
    profile: str,
    seed: int,
) -> Path:
    """Write ``BENCH_<suite>.json`` into ``directory`` and return its path.

    The provenance fields are caller-supplied on purpose; see the module
    docstring.
    """
    payload = trajectory_payload(
        suite,
        results,
        machine=machine,
        git_sha=git_sha,
        timestamp=timestamp,
        profile=profile,
        seed=seed,
    )
    target = Path(directory) / trajectory_filename(suite)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return target


def validate_trajectory(payload: Mapping[str, Any]) -> None:
    """Raise :class:`ValueError` unless ``payload`` matches the schema."""
    missing = [key for key in _REQUIRED_KEYS if key not in payload]
    if missing:
        raise ValueError(
            f"trajectory payload missing keys: {', '.join(missing)}"
        )
    version = payload["schema_version"]
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trajectory schema_version {version!r} "
            f"(this build reads {SCHEMA_VERSION})"
        )
    suite = payload["suite"]
    if not isinstance(suite, str) or not suite:
        raise ValueError("trajectory suite must be a non-empty string")
    for key in ("profile", "machine", "git_sha", "timestamp"):
        if not isinstance(payload[key], str) or not payload[key]:
            raise ValueError(f"trajectory {key} must be a non-empty string")
    if not isinstance(payload["seed"], int) or isinstance(
        payload["seed"], bool
    ):
        raise ValueError("trajectory seed must be an integer")
    scenarios = payload["scenarios"]
    if not isinstance(scenarios, Mapping) or not scenarios:
        raise ValueError("trajectory scenarios must be a non-empty mapping")
    for name, block in scenarios.items():
        # Construction re-runs the finite-metric checks.
        BenchResult.from_payload(suite, str(name), block)


def load_trajectory(path: str | Path) -> dict[str, Any]:
    """Read and validate one trajectory file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: not valid JSON ({error})") from error
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: trajectory root must be an object")
    validate_trajectory(payload)
    return payload


@dataclass(frozen=True)
class Regression:
    """One metric that moved the wrong way beyond tolerance."""

    suite: str
    scenario: str
    metric: str
    baseline: float
    current: float
    change: float
    direction: str

    def describe(self) -> str:
        """A one-line human rendering for CLI output."""
        arrow = "↓" if self.current < self.baseline else "↑"
        return (
            f"{self.suite}/{self.scenario}:{self.metric} "
            f"{self.baseline:.4g} -> {self.current:.4g} {arrow} "
            f"({self.change:+.1%}, {self.direction}-is-better)"
        )


def diff_trajectories(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    *,
    tolerance: float = 0.25,
) -> list[Regression]:
    """Metrics in ``current`` that regressed beyond ``tolerance``.

    Only metrics present in both files are compared (a new metric has no
    baseline; a deleted one has no current value — neither is a
    regression).  Metrics whose baseline is ``<= 0`` are skipped: a
    relative change from zero is undefined, and the bench metrics that
    matter (QPS, quantile latencies, ratios) are positive when healthy.
    """
    check_positive("tolerance", tolerance)
    if baseline.get("suite") != current.get("suite"):
        raise ValueError(
            f"cannot diff different suites: {baseline.get('suite')!r} vs "
            f"{current.get('suite')!r}"
        )
    suite = str(current.get("suite"))
    regressions: list[Regression] = []
    baseline_scenarios = baseline.get("scenarios", {})
    for name, block in current.get("scenarios", {}).items():
        before = baseline_scenarios.get(name)
        if before is None:
            continue
        before_metrics = before.get("metrics", {})
        for metric, value in block.get("metrics", {}).items():
            if metric not in before_metrics:
                continue
            old = float(before_metrics[metric])
            new = float(value)
            if old <= 0:
                continue
            change = (new - old) / old
            direction = metric_direction(metric)
            regressed = (
                change < -tolerance
                if direction == "higher"
                else change > tolerance
            )
            if regressed:
                regressions.append(
                    Regression(
                        suite=suite,
                        scenario=str(name),
                        metric=str(metric),
                        baseline=old,
                        current=new,
                        change=change,
                        direction=direction,
                    )
                )
    return regressions


def detect_machine() -> str:
    """A best-effort machine label for CLI callers (never raises)."""
    return platform.node() or "unknown"


def detect_git_sha(repo_root: str | Path = ".") -> str:
    """The current git commit for CLI callers; ``"unknown"`` off-repo."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root),
            capture_output=True,
            text=True,
            timeout=10.0,
            check=False,
        )
    except OSError:
        return "unknown"
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else "unknown"
