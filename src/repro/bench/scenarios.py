"""The canonical benchmark scenarios.

Importing this module populates the registry in
:mod:`repro.bench.registry`.  Seven scenarios cover the stack bottom-up,
one per architectural capability the ROADMAP's perf items will move:

========  ==================  ========================================
suite     scenario            what it measures
========  ==================  ========================================
engine    single_query        raw three-phase search latency/QPS
service   end_to_end          QueryEngine under a mixed closed loop
service   cache_hit_ratio     ε-aware cache hits under Zipf-skewed reads
service   wal_recovery        cold-start replay time of a dirty WAL
service   overload_goodput    goodput, shed rate, and wasted work under
                              an open-loop ~2x-capacity read storm
cluster   scatter_gather      fan-out latency, healthy and one-dead
cluster   replica_catchup     log-shipping catch-up time for a cold
                              follower behind by a full leader WAL
========  ==================  ========================================

Every scenario is a pure function of ``(profile, seed)``: corpora,
queries, and operation streams all derive from the seed through
``repro.util.rng``, so a trajectory point is reproducible from its
recorded inputs.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np
import numpy.typing as npt

from repro.bench.registry import BenchProfile, register_scenario
from repro.bench.result import BenchResult
from repro.bench.workload import (
    OperationMix,
    WorkloadSpec,
    generate_operations,
    nearest_rank_quantile,
    run_closed_loop,
    run_open_loop,
)
from repro.cluster.backends import LocalBackend
from repro.cluster.coordinator import ClusterCoordinator
from repro.core.database import SequenceDatabase
from repro.core.search import SimilaritySearch
from repro.core.sequence import MultidimensionalSequence
from repro.datagen.queries import generate_queries
from repro.datagen.video import generate_video_corpus
from repro.service.engine import QueryEngine
from repro.service.follower import WalFollower
from repro.service.wal import DurabilityConfig
from repro.util.faults import FaultRule, fault_plan
from repro.util.validation import check_threshold

__all__: list[str] = []

#: Video streams are 3-dimensional (the paper's running example).
_DIMENSION = 3


def _build_corpus(
    profile: BenchProfile, seed: int
) -> list[MultidimensionalSequence]:
    return list(
        generate_video_corpus(
            profile.corpus_sequences,
            length_range=profile.sequence_length,
            seed=seed,
        )
    )


def _build_database(
    corpus: list[MultidimensionalSequence],
) -> SequenceDatabase:
    database = SequenceDatabase(dimension=_DIMENSION)
    for stream in corpus:
        database.add(stream)
    return database


def _build_queries(
    corpus: list[MultidimensionalSequence], profile: BenchProfile, seed: int
) -> list[npt.NDArray[np.float64]]:
    workload = generate_queries(
        corpus,
        profile.query_count,
        length_range=profile.query_length,
        seed=seed + 1,
    )
    return [np.asarray(query.points, dtype=np.float64) for query in workload]


@register_scenario(
    "engine",
    "single_query",
    "single-threaded three-phase search latency and QPS",
)
def _engine_single_query(profile: BenchProfile, seed: int) -> BenchResult:
    corpus = _build_corpus(profile, seed)
    database = _build_database(corpus)
    queries = _build_queries(corpus, profile, seed)
    searcher = SimilaritySearch(database)
    latencies_ms: list[float] = []
    answers = 0
    started = time.perf_counter()
    for index, query in enumerate(queries):
        threshold = profile.epsilons[index % len(profile.epsilons)]
        t0 = time.perf_counter()
        result = searcher.search(query, threshold, find_intervals=False)
        latencies_ms.append((time.perf_counter() - t0) * 1000.0)
        answers += len(result.answers)
    elapsed = time.perf_counter() - started
    return BenchResult(
        suite="engine",
        scenario="single_query",
        metrics={
            "qps": len(queries) / elapsed if elapsed > 0 else 0.0,
            "p50_ms": nearest_rank_quantile(latencies_ms, 0.50),
            "p95_ms": nearest_rank_quantile(latencies_ms, 0.95),
            "p99_ms": nearest_rank_quantile(latencies_ms, 0.99),
        },
        meta={
            "corpus_sequences": profile.corpus_sequences,
            "queries": len(queries),
            "epsilons": list(profile.epsilons),
            "answers": answers,
        },
    )


@register_scenario(
    "service",
    "end_to_end",
    "QueryEngine QPS and latency quantiles under a mixed closed loop",
)
def _service_end_to_end(profile: BenchProfile, seed: int) -> BenchResult:
    corpus = _build_corpus(profile, seed)
    queries = _build_queries(corpus, profile, seed)
    existing = [str(stream.sequence_id) for stream in corpus]
    spec = WorkloadSpec(
        operations=profile.operations,
        query_pool=len(queries),
        dimension=_DIMENSION,
        mix=OperationMix(search=0.8, insert=0.1, append=0.1),
        epsilons=profile.epsilons,
    )
    operations = generate_operations(spec, seed=seed + 2, existing_ids=existing)
    with QueryEngine(
        _build_database(corpus),
        workers=profile.engine_workers,
        cache_size=256,
    ) as engine:
        report = run_closed_loop(
            engine,
            operations,
            queries=queries,
            dimension=_DIMENSION,
            concurrency=profile.concurrency,
            seed=seed + 3,
        )
        stats = engine.stats()
    metrics = report.metrics()
    return BenchResult(
        suite="service",
        scenario="end_to_end",
        metrics=metrics,
        meta={
            "operations": report.total,
            "completed": report.completed,
            "errors": report.errors,
            "mix": spec.mix.as_dict(),
            "concurrency": profile.concurrency,
            "workers": profile.engine_workers,
            "snapshot_version": stats.get("snapshot_version"),
        },
    )


@register_scenario(
    "service",
    "cache_hit_ratio",
    "ε-aware cache effectiveness under a Zipf-skewed read-only stream",
)
def _service_cache_hit_ratio(profile: BenchProfile, seed: int) -> BenchResult:
    corpus = _build_corpus(profile, seed)
    queries = _build_queries(corpus, profile, seed)
    spec = WorkloadSpec(
        operations=profile.operations,
        query_pool=len(queries),
        dimension=_DIMENSION,
        mix=OperationMix(search=1.0),
        epsilons=profile.epsilons,
        zipf_s=1.5,
    )
    operations = generate_operations(spec, seed=seed + 2)
    with QueryEngine(
        _build_database(corpus),
        workers=profile.engine_workers,
        cache_size=256,
    ) as engine:
        report = run_closed_loop(
            engine,
            operations,
            queries=queries,
            dimension=_DIMENSION,
            concurrency=profile.concurrency,
            seed=seed + 3,
        )
        cache = dict(engine.stats()["cache"])
    hits = float(cache.get("hits", 0) or 0)
    refines = float(cache.get("refines", 0) or 0)
    misses = float(cache.get("misses", 0) or 0)
    lookups = hits + refines + misses
    return BenchResult(
        suite="service",
        scenario="cache_hit_ratio",
        metrics={
            "hit_ratio": (hits + refines) / lookups if lookups else 0.0,
            "hits": hits,
            "refines": refines,
            "misses": misses,
            "qps": report.metrics()["qps"],
        },
        meta={
            "zipf_s": spec.zipf_s,
            "operations": report.total,
            "errors": report.errors,
        },
    )


@register_scenario(
    "service",
    "wal_recovery",
    "cold-start recovery time from a dirty WAL (no closing checkpoint)",
)
def _service_wal_recovery(profile: BenchProfile, seed: int) -> BenchResult:
    rng = np.random.default_rng(seed)
    with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as directory:
        config = DurabilityConfig(
            directory, fsync=False, checkpoint_on_close=False
        )
        with QueryEngine(
            SequenceDatabase(dimension=_DIMENSION),
            workers=1,
            durability=config,
        ) as engine:
            for index in range(profile.wal_inserts):
                engine.insert(
                    rng.random((32, _DIMENSION)),
                    sequence_id=f"wal-{index}",
                )
            wal_records = int(engine.wal_records)
        started = time.perf_counter()
        with QueryEngine(None, workers=1, durability=config) as recovered:
            recovery_ms = (time.perf_counter() - started) * 1000.0
            recovered_sequences = len(recovered.sequence_ids())
    return BenchResult(
        suite="service",
        scenario="wal_recovery",
        metrics={
            "recovery_ms": recovery_ms,
            "wal_records": float(wal_records),
            "recovered_sequences": float(recovered_sequences),
        },
        meta={"inserts": profile.wal_inserts, "fsync": False},
    )


class _DeadlineTarget:
    """A ``WorkloadTarget`` stamping every search with one deadline.

    The workload drivers' ``search(query, epsilon)`` protocol has no
    timeout parameter; this adapter is where the overload scenario's
    per-request budget enters the engine.
    """

    def __init__(self, engine: QueryEngine, timeout: float) -> None:
        self._engine = engine
        self._timeout = timeout

    def search(self, query: object, epsilon: float) -> object:
        epsilon = check_threshold(epsilon)
        return self._engine.search(
            query, epsilon, find_intervals=False, timeout=self._timeout
        )

    def insert(self, points: object, sequence_id: object = None) -> object:
        return self._engine.insert(points, sequence_id=sequence_id)

    def append(self, sequence_id: object, points: object) -> object:
        return self._engine.append(sequence_id, points)


@register_scenario(
    "service",
    "overload_goodput",
    "goodput, shed rate, and wasted work under ~2x open-loop overload",
)
def _service_overload_goodput(profile: BenchProfile, seed: int) -> BenchResult:
    corpus = _build_corpus(profile, seed)
    queries = _build_queries(corpus, profile, seed)
    spec = WorkloadSpec(
        operations=profile.overload_operations,
        query_pool=len(queries),
        dimension=_DIMENSION,
        mix=OperationMix(search=1.0),
        epsilons=profile.epsilons,
    )
    operations = generate_operations(spec, seed=seed + 2)
    calibration = operations[: profile.overload_calibration_ops]
    # Pin per-request service time with a sleep fault so capacity is
    # engine_workers / overload_service_s on any host — "2x capacity"
    # stays a real overload whether CI is fast or slow.
    slow_worker = FaultRule(
        "engine.worker",
        action="sleep",
        seconds=profile.overload_service_s,
        times=None,
    )
    with QueryEngine(
        _build_database(corpus),
        workers=profile.engine_workers,
        queue_cap=profile.overload_queue_cap,
        queue_target_s=profile.overload_queue_target_s,
    ) as engine:
        target = _DeadlineTarget(engine, profile.overload_deadline_s)
        with fault_plan(slow_worker):
            # Healthy-load capacity: a closed loop at exactly the worker
            # count — saturated but never queued, the goodput baseline.
            healthy = run_closed_loop(
                target,
                calibration,
                queries=queries,
                dimension=_DIMENSION,
                concurrency=profile.engine_workers,
                seed=seed + 3,
            )
            healthy_qps = healthy.metrics()["qps"]
            offered_rate = 2.0 * healthy_qps
            report = run_open_loop(
                target,
                operations,
                queries=queries,
                dimension=_DIMENSION,
                rate=offered_rate,
                workers=profile.overload_clients,
                seed=seed + 4,
            )
        stats = engine.stats()
    admission = stats["admission"]
    deadline_ms = profile.overload_deadline_s * 1000.0
    # Goodput counts only completions whose latency from *intended
    # arrival* beat the deadline: an answer the caller already gave up
    # on is work, not goodput.
    good = sum(1 for lat in report.latencies_ms if lat <= deadline_ms)
    goodput_qps = good / report.elapsed_s if report.elapsed_s > 0 else 0.0
    completed = int(stats["completed"])
    wasted = int(stats["wasted_work"])
    return BenchResult(
        suite="service",
        scenario="overload_goodput",
        metrics={
            "healthy_qps": healthy_qps,
            "offered_rate": offered_rate,
            "goodput_qps": goodput_qps,
            "goodput_ratio": (
                goodput_qps / healthy_qps if healthy_qps > 0 else 0.0
            ),
            "shed_ratio": report.errors / report.total if report.total else 0.0,
            "wasted_work_ratio": wasted / completed if completed else 0.0,
            "queue_wait_p95_ms": float(admission["queue_wait_ms"]["p95"]),
            "admission_limit": float(admission["limit"]),
            "p95_ms": nearest_rank_quantile(report.latencies_ms, 0.95),
        },
        meta={
            "operations": report.total,
            "completed_in_deadline": good,
            "deadline_s": profile.overload_deadline_s,
            "queue_target_s": profile.overload_queue_target_s,
            "service_s": profile.overload_service_s,
            "queue_cap": profile.overload_queue_cap,
            "clients": profile.overload_clients,
            "rejected_overload": stats["rejected_overload"],
            "deadline_exceeded": stats["deadline_exceeded"],
            "cancelled": stats["cancelled"],
            "shed_by_priority": dict(admission["shed_by_priority"]),
        },
    )


@register_scenario(
    "cluster",
    "scatter_gather",
    "coordinator fan-out latency, healthy and with one backend killed",
)
def _cluster_scatter_gather(profile: BenchProfile, seed: int) -> BenchResult:
    corpus = _build_corpus(profile, seed)
    queries = _build_queries(corpus, profile, seed)
    engines = [
        QueryEngine(SequenceDatabase(dimension=_DIMENSION), workers=2)
        for _ in range(profile.cluster_backends)
    ]
    backends = [
        LocalBackend(engine, name=f"bench-{index}")
        for index, engine in enumerate(engines)
    ]
    try:
        with ClusterCoordinator(
            list(backends),
            replication=profile.cluster_replication,
            hedge=None,
            probe_interval=3600.0,
        ) as coordinator:
            for stream in corpus:
                coordinator.insert(
                    stream.points, sequence_id=str(stream.sequence_id)
                )

            def sweep(count: int) -> tuple[list[float], int]:
                latencies: list[float] = []
                complete = 0
                for index in range(count):
                    query = queries[index % len(queries)]
                    threshold = profile.epsilons[index % len(profile.epsilons)]
                    t0 = time.perf_counter()
                    result = coordinator.search(
                        query, threshold, find_intervals=False
                    )
                    latencies.append((time.perf_counter() - t0) * 1000.0)
                    if result.complete:
                        complete += 1
                return latencies, complete

            healthy_ms, _ = sweep(profile.cluster_queries)
            kill_backend_zero = FaultRule(
                "cluster.backend.0.request", action="raise", times=None
            )
            with fault_plan(kill_backend_zero):
                killed_ms, killed_complete = sweep(profile.cluster_queries)
            stats = coordinator.stats()
    finally:
        for engine in engines:
            engine.close()
    return BenchResult(
        suite="cluster",
        scenario="scatter_gather",
        metrics={
            "p50_ms": nearest_rank_quantile(healthy_ms, 0.50),
            "p95_ms": nearest_rank_quantile(healthy_ms, 0.95),
            "killed_p50_ms": nearest_rank_quantile(killed_ms, 0.50),
            "killed_p95_ms": nearest_rank_quantile(killed_ms, 0.95),
            "complete_ratio": (
                killed_complete / profile.cluster_queries
            ),
            "failovers": float(stats.get("failovers", 0)),
        },
        meta={
            "backends": profile.cluster_backends,
            "replication": profile.cluster_replication,
            "queries_per_sweep": profile.cluster_queries,
            "killed_backend": 0,
        },
    )


@register_scenario(
    "cluster",
    "replica_catchup",
    "log-shipping catch-up seconds for a fresh follower behind a full WAL",
)
def _cluster_replica_catchup(profile: BenchProfile, seed: int) -> BenchResult:
    rng = np.random.default_rng(seed)
    batch_limit = 512
    with tempfile.TemporaryDirectory(prefix="repro-bench-ship-") as root:
        base = Path(root)
        leader_config = DurabilityConfig(
            base / "leader", fsync=False, checkpoint_on_close=False
        )
        replica_config = DurabilityConfig(
            base / "replica", fsync=False, checkpoint_on_close=False
        )
        with QueryEngine(
            SequenceDatabase(dimension=_DIMENSION),
            workers=1,
            durability=leader_config,
        ) as leader:
            # Build the backlog first: every record below is already in the
            # leader's WAL before the follower takes its first poll, so the
            # timing isolates pure catch-up (tail + CRC + replay), not
            # leader ingest.
            for index in range(profile.catchup_records):
                leader.insert(
                    rng.random((8, _DIMENSION)),
                    sequence_id=f"ship-{index}",
                )
            with QueryEngine(
                SequenceDatabase(dimension=_DIMENSION),
                workers=1,
                durability=replica_config,
            ) as replica:
                follower = WalFollower(
                    replica,
                    leader,
                    cursor_path=base / "cursor.json",
                    batch_limit=batch_limit,
                )
                started = time.perf_counter()
                while True:
                    summary = follower.poll()
                    if summary["lag"] == 0:
                        break
                catchup_s = time.perf_counter() - started
                status = follower.status()
                if len(replica.sequence_ids()) != len(leader.sequence_ids()):
                    raise RuntimeError(
                        "replica_catchup follower did not reach leader "
                        f"parity: {len(replica.sequence_ids())} of "
                        f"{len(leader.sequence_ids())} sequences"
                    )
    return BenchResult(
        suite="cluster",
        scenario="replica_catchup",
        metrics={
            "catchup_s": catchup_s,
            "records_per_s": (
                profile.catchup_records / catchup_s if catchup_s > 0 else 0.0
            ),
            "applied_records": float(status["applied_records"]),
            "batches": float(status["batches"]),
        },
        meta={
            "records": profile.catchup_records,
            "batch_limit": batch_limit,
            "resyncs": status["resyncs"],
            "fsync": False,
        },
    )
