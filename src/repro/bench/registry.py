"""The canonical-scenario registry and run profiles.

Scenarios register themselves by name under a suite; the runner and the
CLI discover them here rather than hard-coding a list, so a later perf
PR adds its benchmark by writing one decorated function.  Registration
is import-time (importing :mod:`repro.bench.scenarios` populates the
registry), mirroring how pytest collects tests.

:class:`BenchProfile` carries every size knob a scenario needs, in one
frozen object, so ``--quick`` versus the full profile is a single choice
made once at the entry point instead of scattered flags.  The quick
profile is sized for CI: the whole suite must finish in well under two
minutes on a cold runner.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass

from repro.bench.result import BenchResult
from repro.util.validation import check_positive

__all__ = [
    "BenchProfile",
    "Scenario",
    "iter_scenarios",
    "register_scenario",
    "scenario_names",
    "suite_names",
]

#: A scenario body: profile + seed in, one result out.
ScenarioRunner = Callable[["BenchProfile", int], BenchResult]


@dataclass(frozen=True)
class BenchProfile:
    """Size knobs shared by every scenario.

    Parameters mirror the repository's data model: corpora come from
    :func:`repro.datagen.video.generate_video_corpus` (dimension 3),
    queries from :func:`repro.datagen.queries.generate_queries`.
    """

    name: str
    corpus_sequences: int
    sequence_length: tuple[int, int]
    query_count: int
    query_length: tuple[int, int]
    epsilons: tuple[float, ...]
    operations: int
    concurrency: int
    engine_workers: int
    wal_inserts: int
    cluster_backends: int
    cluster_replication: int
    cluster_queries: int
    catchup_records: int = 200
    #: Operations offered during the overload_goodput open-loop phase.
    overload_operations: int = 320
    #: Closed-loop operations used to measure healthy-load capacity.
    overload_calibration_ops: int = 80
    #: End-to-end deadline each overload search carries, seconds.
    overload_deadline_s: float = 0.75
    #: AIMD queue-wait target handed to the engine, seconds.
    overload_queue_target_s: float = 0.1
    #: Injected per-request service time (``engine.worker`` sleep) —
    #: pins capacity at ``engine_workers / overload_service_s`` so the
    #: 2x offered rate is a real overload regardless of host speed.
    overload_service_s: float = 0.02
    #: Queue slots for the overload engine (smaller than the serving
    #: default so the run reaches admission pressure quickly).
    overload_queue_cap: int = 16
    #: Open-loop client threads (must outnumber what the offered rate
    #: needs, or generator lag would masquerade as server latency).
    overload_clients: int = 48

    def __post_init__(self) -> None:
        check_positive("corpus_sequences", self.corpus_sequences)
        check_positive("query_count", self.query_count)
        check_positive("operations", self.operations)
        check_positive("concurrency", self.concurrency)
        check_positive("engine_workers", self.engine_workers)
        check_positive("wal_inserts", self.wal_inserts)
        check_positive("cluster_backends", self.cluster_backends)
        check_positive("cluster_replication", self.cluster_replication)
        check_positive("cluster_queries", self.cluster_queries)
        check_positive("catchup_records", self.catchup_records)
        check_positive("overload_operations", self.overload_operations)
        check_positive(
            "overload_calibration_ops", self.overload_calibration_ops
        )
        check_positive("overload_deadline_s", self.overload_deadline_s)
        check_positive(
            "overload_queue_target_s", self.overload_queue_target_s
        )
        check_positive("overload_service_s", self.overload_service_s)
        check_positive("overload_queue_cap", self.overload_queue_cap)
        check_positive("overload_clients", self.overload_clients)
        if self.cluster_replication > self.cluster_backends:
            raise ValueError(
                "cluster_replication cannot exceed cluster_backends"
            )

    @classmethod
    def quick(cls) -> "BenchProfile":
        """The CI-sized profile: whole suite well under two minutes."""
        return cls(
            name="quick",
            corpus_sequences=32,
            sequence_length=(48, 96),
            query_count=24,
            query_length=(24, 48),
            epsilons=(0.05, 0.10, 0.15),
            operations=120,
            concurrency=4,
            engine_workers=4,
            wal_inserts=12,
            cluster_backends=3,
            cluster_replication=2,
            cluster_queries=12,
            catchup_records=200,
            overload_operations=320,
            overload_calibration_ops=80,
            overload_clients=48,
        )

    @classmethod
    def full(cls) -> "BenchProfile":
        """The trajectory-quality profile (fig10-scale workload)."""
        return cls(
            name="full",
            corpus_sequences=128,
            sequence_length=(56, 256),
            query_count=96,
            query_length=(24, 96),
            epsilons=(0.05, 0.10, 0.15, 0.20),
            operations=600,
            concurrency=8,
            engine_workers=8,
            wal_inserts=64,
            cluster_backends=4,
            cluster_replication=2,
            cluster_queries=48,
            catchup_records=5000,
            overload_operations=1200,
            overload_calibration_ops=200,
            overload_clients=96,
        )


@dataclass(frozen=True)
class Scenario:
    """One registered benchmark: identity, description, and body."""

    suite: str
    name: str
    summary: str
    runner: ScenarioRunner

    def run(self, profile: BenchProfile, seed: int) -> BenchResult:
        """Execute the scenario and validate its result identity."""
        result = self.runner(profile, seed)
        if result.suite != self.suite or result.scenario != self.name:
            raise RuntimeError(
                f"scenario {self.suite}/{self.name} returned a result "
                f"labelled {result.suite}/{result.scenario}"
            )
        return result


# Keyed by (suite, name); insertion order is execution order.
_REGISTRY: dict[tuple[str, str], Scenario] = {}


def register_scenario(
    suite: str, name: str, summary: str
) -> Callable[[ScenarioRunner], ScenarioRunner]:
    """Class-free scenario registration: decorate the runner function."""

    def decorate(runner: ScenarioRunner) -> ScenarioRunner:
        key = (suite, name)
        if key in _REGISTRY:
            raise ValueError(
                f"scenario {suite}/{name} is already registered"
            )
        _REGISTRY[key] = Scenario(
            suite=suite, name=name, summary=summary, runner=runner
        )
        return runner

    return decorate


def _ensure_loaded() -> None:
    # Importing the scenarios module populates the registry; done lazily
    # so registry consumers (tests, the differ) need not pay for the
    # scenario bodies' heavier imports.
    import repro.bench.scenarios  # noqa: F401


def iter_scenarios(suite: str | None = None) -> Iterator[Scenario]:
    """All registered scenarios, optionally restricted to one suite."""
    _ensure_loaded()
    for (scenario_suite, _), scenario in _REGISTRY.items():
        if suite is None or scenario_suite == suite:
            yield scenario


def suite_names() -> tuple[str, ...]:
    """The distinct suites, in registration order."""
    _ensure_loaded()
    seen: dict[str, None] = {}
    for suite, _ in _REGISTRY:
        seen.setdefault(suite)
    return tuple(seen)


def scenario_names(suite: str | None = None) -> tuple[str, ...]:
    """``suite/name`` identifiers, in registration order."""
    return tuple(
        f"{scenario.suite}/{scenario.name}"
        for scenario in iter_scenarios(suite)
    )
