"""Orchestration: run registered scenarios, write trajectories, gate SLOs.

This is the piece the CLI (``repro bench``) and CI (``bench-gate``)
call.  It owns no policy of its own: scenarios come from the registry,
sizes from the profile, bounds from the SLO rules, and provenance
(machine / git SHA / timestamp) from the caller — so the whole run is a
pure function of its :class:`BenchRunConfig`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.bench.registry import BenchProfile, iter_scenarios
from repro.bench.result import BenchResult
from repro.bench.slo import DEFAULT_SLO_RULES, SloRule, SloViolation, check_slos
from repro.bench.trajectory import write_trajectory

__all__ = ["BenchRunConfig", "BenchRunOutcome", "run_bench"]


@dataclass(frozen=True)
class BenchRunConfig:
    """Everything one ``repro bench`` invocation needs."""

    profile: BenchProfile
    out_dir: str | Path = "."
    suites: tuple[str, ...] = ()
    seed: int = 2000
    machine: str = "unknown"
    git_sha: str = "unknown"
    timestamp: str = "unknown"
    slo_rules: tuple[SloRule, ...] = DEFAULT_SLO_RULES
    write_files: bool = True


@dataclass(frozen=True)
class BenchRunOutcome:
    """What a run produced: results, files written, violations found."""

    results: tuple[BenchResult, ...]
    written: tuple[Path, ...]
    violations: tuple[SloViolation, ...]

    def by_suite(self) -> dict[str, list[BenchResult]]:
        """Results grouped by suite, in execution order."""
        grouped: dict[str, list[BenchResult]] = {}
        for result in self.results:
            grouped.setdefault(result.suite, []).append(result)
        return grouped


def _silent(message: str) -> None:
    return None


def run_bench(
    config: BenchRunConfig,
    *,
    progress: Callable[[str], None] | None = None,
) -> BenchRunOutcome:
    """Run the selected scenarios and return the full outcome.

    Scenarios execute in registration order; after they complete, each
    measured suite's results are written to ``BENCH_<suite>.json`` in
    ``config.out_dir``.  SLO evaluation runs over everything that was
    measured; violations are *returned*, not raised — exiting non-zero
    is the caller's decision.
    """
    report = progress if progress is not None else _silent
    selected = list(iter_scenarios())
    if config.suites:
        selected = [s for s in selected if s.suite in config.suites]
        known = {s.suite for s in iter_scenarios()}
        unknown = [s for s in config.suites if s not in known]
        if unknown:
            raise ValueError(
                f"unknown suite(s): {', '.join(unknown)}; "
                f"available: {', '.join(sorted(known))}"
            )
    if not selected:
        raise ValueError("no scenarios selected")
    results: list[BenchResult] = []
    for scenario in selected:
        report(f"running {scenario.suite}/{scenario.name} ...")
        results.append(scenario.run(config.profile, config.seed))
    written: list[Path] = []
    if config.write_files:
        outcome_by_suite: dict[str, list[BenchResult]] = {}
        for result in results:
            outcome_by_suite.setdefault(result.suite, []).append(result)
        for suite, suite_results in outcome_by_suite.items():
            path = write_trajectory(
                config.out_dir,
                suite,
                suite_results,
                machine=config.machine,
                git_sha=config.git_sha,
                timestamp=config.timestamp,
                profile=config.profile.name,
                seed=config.seed,
            )
            written.append(path)
            report(f"wrote {path}")
    violations = check_slos(results, config.slo_rules)
    return BenchRunOutcome(
        results=tuple(results),
        written=tuple(written),
        violations=tuple(violations),
    )
