"""The typed record every benchmark scenario produces.

A benchmark number that cannot be compared across runs is a print
statement, not a measurement.  :class:`BenchResult` is the one shape all
measurement flows through: the canonical scenarios (:mod:`repro.bench.
scenarios`), the legacy ``benchmarks/bench_*.py`` modules, and any future
perf PR all emit these records, and the trajectory writer
(:mod:`repro.bench.trajectory`) serialises them into the schema-versioned
``BENCH_<suite>.json`` files the SLO gate and the regression differ read.

``metrics`` carries only finite numbers — a NaN throughput would silently
poison every downstream comparison, so it is rejected at construction —
while ``meta`` carries free-form context (corpus size, workload shape,
serving state such as the snapshot version the run was stamped against).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["BenchResult"]


@dataclass(frozen=True)
class BenchResult:
    """One scenario's measurement: identity, metrics, and context.

    Parameters
    ----------
    suite:
        The trajectory file this joins (``BENCH_<suite>.json``), e.g.
        ``"engine"``, ``"service"``, ``"cluster"``.
    scenario:
        The scenario name, unique within its suite.
    metrics:
        Finite numbers only — throughputs, quantile latencies, ratios.
        Keys follow the direction conventions of
        :func:`repro.bench.trajectory.metric_direction` (``*_ms`` is
        lower-is-better, ``*qps``/``*_ratio`` higher-is-better).
    meta:
        JSON-serialisable context that is *not* compared across runs:
        corpus size, workload shape, snapshot version, uptime.
    """

    suite: str
    scenario: str
    metrics: dict[str, float]
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.suite or not self.suite.replace("_", "").isalnum():
            raise ValueError(
                f"suite must be a non-empty [a-z0-9_] token, got {self.suite!r}"
            )
        if not self.scenario:
            raise ValueError("scenario must be a non-empty string")
        if not self.metrics:
            raise ValueError(
                f"{self.suite}/{self.scenario}: metrics must not be empty"
            )
        cleaned: dict[str, float] = {}
        for name, value in self.metrics.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"metric names must be strings, got {name!r}")
            number = float(value)
            if not math.isfinite(number):
                raise ValueError(
                    f"{self.suite}/{self.scenario}: metric {name!r} is "
                    f"non-finite ({value!r})"
                )
            cleaned[name] = number
        # Normalise every value to float so payloads round-trip via JSON.
        object.__setattr__(self, "metrics", cleaned)

    def to_payload(self) -> dict[str, Any]:
        """The JSON shape stored under ``scenarios.<name>`` in a trajectory."""
        return {"metrics": dict(self.metrics), "meta": dict(self.meta)}

    @classmethod
    def from_payload(
        cls, suite: str, scenario: str, payload: Mapping[str, Any]
    ) -> "BenchResult":
        """Rebuild a result from a trajectory file's scenario block."""
        metrics = payload.get("metrics")
        if not isinstance(metrics, Mapping):
            raise ValueError(
                f"{suite}/{scenario}: scenario block has no metrics mapping"
            )
        meta = payload.get("meta", {})
        if not isinstance(meta, Mapping):
            raise ValueError(f"{suite}/{scenario}: meta must be a mapping")
        return cls(
            suite=suite,
            scenario=scenario,
            metrics={str(k): float(v) for k, v in metrics.items()},
            meta=dict(meta),
        )
